"""Fleet scaling measurement: pkts/s versus worker-shard count.

The tentpole claim of the fleet tier is *near-linear scaling*: because
rendezvous steering spreads flows evenly and shards share nothing,
doubling the shard count should nearly double sustained packet rate
until the per-shard batches get too thin to amortize.

Two rates are reported per shard count:

* **modeled pkts/s** — the cycle-accounted rate on a real CPU spec,
  with one core per shard: total packets over the *hottest* shard's
  cycle demand (the most-loaded queue bounds the fleet, the same
  bottleneck structure as
  :meth:`repro.core.GatewayDatapath.sustainable_throughput_bps`).
  This is the scaling claim's measurement — it is deterministic and
  reflects the parallelism the fleet actually exposes.
* **wall pkts/s** — single-threaded simulation wall-clock, reported
  for regression tracking only.  The simulator executes shards
  serially, so wall time *cannot* show multi-core scaling; do not read
  a trend into it.

Every shard count digests the *identical* pre-materialized city-scale
stream, so the comparison is pure topology.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..core.config import GatewayConfig
from ..cpu import XEON_6554S, CpuSpec
from ..fleet import GatewayFleet
from ..workload import CityScaleProfile, CityScaleWorkload

__all__ = ["FLEET_SCHEMA", "fleet_world_report", "format_fleet_report"]

#: Schema tag stamped into every fleet scaling report.
FLEET_SCHEMA = "repro-fleet-world/1"


def fleet_world_report(
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    quick: bool = False,
    packets: Optional[int] = None,
    spec: CpuSpec = XEON_6554S,
    flow_table_capacity: int = 4096,
    seed: int = 0xC17,
) -> Dict[str, object]:
    """Run the fleet scaling experiment; returns a JSON-friendly report."""
    if packets is None:
        packets = 8_000 if quick else 40_000
    profile = CityScaleProfile(
        total_flows=packets, concurrency=max(100, packets // 40), seed=seed,
    )
    workload = CityScaleWorkload(profile)
    stream = list(workload.packets(packets))
    config = GatewayConfig(flow_table_capacity=flow_table_capacity)

    rows: List[Dict[str, object]] = []
    base_modeled: Optional[float] = None
    for shards in worker_counts:
        fleet = GatewayFleet(config, shards=shards)
        start = time.perf_counter_ns()
        fleet.process_stream(stream)
        elapsed_ns = time.perf_counter_ns() - start
        errors = fleet.conservation_errors()
        if errors:
            raise RuntimeError(f"fleet({shards}) imbalanced: {errors}")
        modeled = fleet.sustainable_throughput_pps(spec)
        if base_modeled is None:
            base_modeled = modeled
        rows.append({
            "shards": shards,
            "packets": len(stream),
            "modeled_pkts_per_sec": modeled,
            "speedup_vs_1": modeled / base_modeled if base_modeled else 0.0,
            "wall_pkts_per_sec": len(stream) * 1e9 / elapsed_ns,
            "balance": fleet.shard_balance(),
            "evictions": sum(
                shard.worker.flows.evictions for shard in fleet.shards
            ),
        })
    return {
        "schema": FLEET_SCHEMA,
        "spec": spec.name,
        "workload": workload.summary(),
        "rows": rows,
    }


def format_fleet_report(report: Dict[str, object]) -> str:
    """Human-readable table of a :func:`fleet_world_report` result."""
    lines = [
        f"fleet_world scaling on {report['spec']} "
        f"({report['rows'][0]['packets']} packets/run)",
        f"{'shards':>6}  {'modeled pkts/s':>16}  {'speedup':>8}  "
        f"{'wall pkts/s':>12}  {'max/mean':>8}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['shards']:>6}  {row['modeled_pkts_per_sec']:>16,.0f}  "
            f"{row['speedup_vs_1']:>7.2f}x  {row['wall_pkts_per_sec']:>12,.0f}  "
            f"{row['balance']['max_over_mean']:>8.3f}"
        )
    return "\n".join(lines)
