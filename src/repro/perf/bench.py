"""Seeded, deterministic microbenchmarks of the datapath fast path.

Each benchmark is a factory: ``prepare(quick)`` builds the workload
(packets, engines, topologies) outside the timed region and returns a
``run()`` closure that processes it once and returns the packet count.
State-bearing benches construct fresh engines inside ``run`` so every
repetition sees identical cold state; the inputs themselves are built
once and reused, which is what makes the measurement about processing
cost, not allocation of the workload.

Timing uses ``time.perf_counter_ns`` with one untimed warmup plus
``reps`` timed repetitions; the reported rate derives from the median
repetition (p95 is kept alongside for noise inspection).  Workload
*content* is fully seeded, so two runs on the same interpreter measure
the same instruction stream.

The report schema (one row per bench)::

    {"bench": str, "pkts_per_sec": float, "ns_per_pkt": float, "reps": int}

plus informational extras (``packets``, ``p95_ns_per_pkt``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "bench_names",
    "format_profile",
    "profile_benchmark",
    "run_benchmarks",
    "write_report",
]

#: Identifier stamped into every report; compare refuses mismatches.
BENCH_SCHEMA = "repro-bench/1"

#: Registry: name -> (prepare(quick) -> (run() -> packet_count)).
_REGISTRY: "Dict[str, Callable[[bool], Callable[[], int]]]" = {}


def _bench(name: str):
    def register(prepare):
        _REGISTRY[name] = prepare
        return prepare

    return register


def bench_names() -> List[str]:
    """All registered benchmark names, in registration order."""
    return list(_REGISTRY)


@dataclass
class BenchResult:
    """One benchmark's measurement."""

    bench: str
    pkts_per_sec: float
    ns_per_pkt: float
    reps: int
    packets: int
    p95_ns_per_pkt: float

    def row(self) -> dict:
        return {
            "bench": self.bench,
            "pkts_per_sec": self.pkts_per_sec,
            "ns_per_pkt": self.ns_per_pkt,
            "reps": self.reps,
            "packets": self.packets,
            "p95_ns_per_pkt": self.p95_ns_per_pkt,
        }


# ----------------------------------------------------------------------
# Workload builders
# ----------------------------------------------------------------------
def _mixed_packets(rng: random.Random, count: int) -> list:
    """A seeded mix of TCP (with options), UDP, and ICMP packets."""
    from ..packet import ICMPMessage, TCPOption, build_icmp, build_tcp, build_udp

    packets = []
    for index in range(count):
        kind = index % 4
        src = f"10.0.{index % 200}.{1 + index % 250}"
        dst = f"198.51.{index % 100}.{1 + index % 250}"
        if kind in (0, 1):
            payload = bytes(rng.randrange(256) for _ in range(rng.choice([512, 1448, 1449])))
            packet = build_tcp(src, dst, 40000 + index % 1000, 80,
                               payload=payload, seq=index * 1448)
            if kind == 0:
                packet.tcp.options = [TCPOption.timestamp(index, index // 2)]
        elif kind == 2:
            payload = bytes(rng.randrange(256) for _ in range(rng.choice([200, 1200, 1201])))
            packet = build_udp(src, dst, 30000 + index % 1000, 4000, payload=payload)
        else:
            packet = build_icmp(src, dst, ICMPMessage.echo_request(index & 0xFFFF, index, b"ping"))
        packets.append(packet)
    return packets


@_bench("packet_parse")
def _prepare_packet_parse(quick: bool) -> Callable[[], int]:
    from ..packet import Packet

    count = 400 if quick else 2000
    rng = random.Random(0xBEEF)
    wires = [p.to_bytes() for p in _mixed_packets(rng, count)]

    def run() -> int:
        from_bytes = Packet.from_bytes
        for wire in wires:
            from_bytes(wire)
        return len(wires)

    return run


@_bench("packet_serialize")
def _prepare_packet_serialize(quick: bool) -> Callable[[], int]:
    count = 400 if quick else 2000
    rng = random.Random(0xF00D)
    packets = _mixed_packets(rng, count)

    def run() -> int:
        for packet in packets:
            packet.to_bytes()
        return len(packets)

    return run


@_bench("checksum")
def _prepare_checksum(quick: bool) -> Callable[[], int]:
    from ..packet.checksum import internet_checksum

    count = 200 if quick else 1000
    rng = random.Random(0xC0DE)
    sizes = [64, 65, 576, 1447, 1448, 8948, 8949]
    buffers = [bytes(rng.randrange(256) for _ in range(sizes[i % len(sizes)]))
               for i in range(count)]

    def run() -> int:
        for buffer in buffers:
            internet_checksum(buffer)
        return len(buffers)

    return run


@_bench("merge_split")
def _prepare_merge_split(quick: bool) -> Callable[[], int]:
    from ..core.tcp_merge import TcpMergeEngine
    from ..core.tcp_split import TcpSplitEngine
    from ..workload import interleave, make_tcp_sources

    count = 800 if quick else 4000
    sources = make_tcp_sources(16, 1448)
    rng = random.Random(0x5EED)
    stream = [packet for packet, _bound in interleave(sources, count, rng, mean_run=8.0)]

    def run() -> int:
        merge = TcpMergeEngine(8948)
        split = TcpSplitEngine(1500)
        for packet in stream:
            for jumbo in merge.feed(packet):
                split.process(jumbo)
        for jumbo in merge.flush():
            split.process(jumbo)
        return len(stream)

    return run


@_bench("caravan")
def _prepare_caravan(quick: bool) -> Callable[[], int]:
    from ..core.caravan import CaravanMergeEngine, CaravanSplitEngine
    from ..workload import interleave, make_udp_sources

    count = 800 if quick else 4000
    sources = make_udp_sources(8, 1200)
    rng = random.Random(0xCAFE)
    stream = [packet for packet, _bound in interleave(sources, count, rng, mean_run=6.0)]

    def run() -> int:
        merge = CaravanMergeEngine(8972)
        split = CaravanSplitEngine()
        for packet in stream:
            for out in merge.feed(packet):
                split.process(out)
        for out in merge.flush():
            split.process(out)
        return len(stream)

    return run


@_bench("caravan_open_close")
def _prepare_caravan_open_close(quick: bool) -> Callable[[], int]:
    """encode/decode cost alone: one caravan opened and rebuilt per row."""
    from ..core.caravan import decode_caravan, encode_caravan
    from ..packet import build_udp

    bundles = 30 if quick else 150
    records = 6
    inner: List[list] = []
    for bundle in range(bundles):
        inner.append([
            build_udp("10.0.0.1", "198.51.100.9", 31000 + bundle, 4000,
                      payload=bytes(1200), ip_id=(bundle * records + i) & 0xFFFF)
            for i in range(records)
        ])

    def run() -> int:
        for packets in inner:
            decode_caravan(encode_caravan(packets))
        return bundles * records

    return run


@_bench("upf_pipeline")
def _prepare_upf(quick: bool) -> Callable[[], int]:
    from ..packet import build_udp, str_to_ip
    from ..upf import Upf

    flows = 64
    count = 600 if quick else 3000
    dn = str_to_ip("93.184.216.34")
    ue_base = str_to_ip("172.16.0.1")
    downlink = [build_udp(dn, ue_base + (i % flows), 80, 4000, payload=bytes(1400))
                for i in range(count)]

    def run() -> int:
        upf = Upf(n3_address=str_to_ip("10.100.0.1"))
        for index in range(flows):
            upf.sessions.create_session(
                seid=index, ue_ip=ue_base + index, uplink_teid=10_000 + index,
                gnb_teid=20_000 + index, gnb_ip=str_to_ip("10.100.0.2"),
            )
        processed = 0
        for packet in downlink:
            processed += 1
            for encapsulated in upf.process(packet):
                # Reflect the gNB-bound packet back through the uplink
                # path so decap is exercised too.
                processed += 1
                upf.process(encapsulated)
        return processed

    return run


def _run_gateway_world(download: int, upload: int, observed: bool = False) -> int:
    """One border-world pass; ``observed`` attaches per-packet spans.

    The observed variant measures the *datapath* tracking cost (span
    opens/closes and FIFO mirroring on every packet).  Timeline scrapes
    are periodic control-plane work whose cost is interval-bound, not
    packet-bound, so they stay out of this per-packet figure.
    """
    from ..core import GatewayConfig, PXGateway
    from ..net import Topology
    from ..tcpstack import TCPConnection, TCPListener

    topo = Topology(seed=7)
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    gateway = PXGateway(topo.sim, "pxgw", config=GatewayConfig(imtu=9000, emtu=1500))
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=9000, delay=5e-5)
    topo.link(gateway, outside, mtu=1500, delay=5e-5)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])
    spans = None
    if observed:
        from ..obs import Observability, SpanTracker

        spans = SpanTracker()
        gateway.attach_observability(Observability(spans=spans))

    down_server = TCPListener(outside, 80, mss=1460)
    up_server = TCPListener(inside, 81, mss=8960)
    down = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
    up = TCPConnection(outside, 40001, inside.ip, 81, mss=1460)
    down.connect()
    up.connect()
    topo.run(until=0.2)
    down_server.connections[0].send_bulk(download)
    up_server.connections[0].send_bulk(upload)
    topo.run(until=30.0)
    if spans is not None:
        assert spans.balanced and spans.anomalies == 0, "span balance broke"
        assert spans.opened > 0, "observed gateway world tracked nothing"
    stats = gateway.stats
    assert down.bytes_delivered == download, "gateway world lost download bytes"
    assert up.bytes_delivered == upload, "gateway world lost upload bytes"
    return stats.rx_packets + stats.tx_packets


@_bench("gateway_world")
def _prepare_gateway_world(quick: bool) -> Callable[[], int]:
    """End-to-end: a PXGW border world moving bulk TCP both directions.

    This is the headline packets/sec number — it exercises the
    simulator engine, links, routers, the TCP stack, and the full
    gateway worker pipeline (merge inbound, split outbound) exactly as
    the figure experiments do.
    """
    download = 300_000 if quick else 1_500_000
    upload = 150_000 if quick else 750_000

    def run() -> int:
        return _run_gateway_world(download, upload)

    return run


@_bench("gateway_world_observed")
def _prepare_gateway_world_observed(quick: bool) -> Callable[[], int]:
    """The same border world with the observability stack attached.

    Spans track every packet and an in-sim timeline scrapes the
    registry; the CI span-overhead guard compares this against the
    plain ``gateway_world`` to keep the tracking cost within budget.
    """
    download = 300_000 if quick else 1_500_000
    upload = 150_000 if quick else 750_000

    def run() -> int:
        return _run_gateway_world(download, upload, observed=True)

    return run


def _stream_workload(quick: bool) -> list:
    """A seeded Figure-5-style (packet, bound) stream for the datapath."""
    from ..core.config import Bound
    from ..workload import interleave, make_tcp_sources

    count = 6_000 if quick else 30_000
    down = make_tcp_sources(48, 1448, tag=Bound.INBOUND)
    up = make_tcp_sources(48, 8948, tag=Bound.OUTBOUND, base_port=30000,
                          client_net="10.1.0", server_net="198.51.100")
    rng = random.Random(0xBA7C)
    return list(interleave(down * 2 + up, count, rng, mean_run=16.0))


def _run_datapath_stream(stream: list, batched: bool) -> int:
    from ..core import GatewayConfig, GatewayDatapath

    datapath = GatewayDatapath(GatewayConfig())
    datapath.process_stream(stream, batched=batched)
    return len(stream)


@_bench("gateway_stream")
def _prepare_gateway_stream(quick: bool) -> Callable[[], int]:
    """The offline datapath (Figure-5 entry point), packet at a time.

    The scalar twin of ``gateway_world_batched``: identical workload,
    identical configuration, per-packet dispatch — the pair's ratio is
    the measured batching speedup at the dispatch layer.
    """
    stream = _stream_workload(quick)

    def run() -> int:
        return _run_datapath_stream(stream, batched=False)

    return run


@_bench("gateway_world_batched")
def _prepare_gateway_world_batched(quick: bool) -> Callable[[], int]:
    """The offline datapath with batch-vectorized dispatch.

    Each poll batch is RSS-sharded once and runs through
    ``GatewayWorker.process_batch`` — one mode/observability/flow-table
    prologue per flow group instead of per packet.
    """
    stream = _stream_workload(quick)

    def run() -> int:
        return _run_datapath_stream(stream, batched=True)

    return run


@_bench("event_wheel")
def _prepare_event_wheel(quick: bool) -> Callable[[], int]:
    """Scheduler churn: the bucketed event wheel under timer pressure.

    The workload mirrors what a busy simulation does to the engine:
    a dense mass of non-cancellable data events (``schedule_fast``),
    a population of cancellable timers half of which are cancelled
    before firing (retransmit-timer churn), and a reschedule chain
    that inserts into the bucket currently being drained.
    """
    from ..sim import Simulator

    count = 30_000 if quick else 150_000
    rng = random.Random(0x3E11)
    plan = [
        (rng.uniform(1e-6, 2e-3), rng.random() < 0.4, rng.random() < 0.5)
        for _ in range(count)
    ]

    def run() -> int:
        sim = Simulator()
        schedule = sim.schedule
        schedule_fast = sim.schedule_fast

        def nop() -> None:
            pass

        doomed = []
        for delay, cancellable, cancel in plan:
            if cancellable:
                handle = schedule(delay, nop)
                if cancel:
                    doomed.append(handle)
            else:
                schedule_fast(delay, nop)
        for handle in doomed:
            handle.cancel()
        remaining = [count // 10]

        def chain() -> None:
            if remaining[0] > 0:
                remaining[0] -= 1
                schedule_fast(7.3e-5, chain)

        schedule_fast(0.0, chain)
        sim.run()
        return count

    return run


@_bench("fleet_world")
def _prepare_fleet_world(quick: bool) -> Callable[[], int]:
    """A 4-shard gateway fleet digesting a city-scale flow mix.

    Steering (rendezvous hash per flow) plus per-shard batched
    processing over a churning elephant/mice population with bounded
    flow tables — the fleet tier's end-to-end cost per packet.  The
    stream is materialized once outside the timed region; each rep
    builds a fresh fleet so flow tables and merge engines start cold.
    """
    from ..core import GatewayConfig
    from ..fleet import GatewayFleet
    from ..workload import CityScaleProfile, CityScaleWorkload

    count = 6_000 if quick else 30_000
    profile = CityScaleProfile(
        total_flows=count, concurrency=800, seed=0xC17,
    )
    stream = list(CityScaleWorkload(profile).packets(count))

    def run() -> int:
        fleet = GatewayFleet(GatewayConfig(flow_table_capacity=4096), shards=4)
        fleet.process_stream(stream)
        return len(stream)

    return run


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _measure(run: Callable[[], int], reps: int) -> Tuple[List[int], int]:
    """Time *reps* repetitions (after one warmup); returns (ns, packets)."""
    packets = run()  # warmup, also yields the per-rep packet count
    timings: List[int] = []
    for _ in range(reps):
        start = time.perf_counter_ns()
        count = run()
        timings.append(time.perf_counter_ns() - start)
        if count != packets:
            raise RuntimeError("non-deterministic benchmark packet count")
    return timings, packets


def _median(values: List[int]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _p95(values: List[int]) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(0.95 * (len(ordered) - 1)))
    return float(ordered[index])


def run_benchmarks(
    quick: bool = False,
    reps: Optional[int] = None,
    only: Optional[List[str]] = None,
    registry=None,
) -> dict:
    """Run the suite and return the report dict (see :data:`BENCH_SCHEMA`).

    When *registry* (a :class:`repro.obs.MetricsRegistry`) is given, the
    report rows are mirrored into it as ``px_bench_*`` gauges, so bench
    results export alongside datapath metrics and two runs can be
    compared with ``MetricsRegistry.diff``.
    """
    if reps is None:
        reps = 3 if quick else 5
    if reps < 1:
        raise ValueError("reps must be >= 1")
    selected = bench_names() if only is None else list(only)
    unknown = [name for name in selected if name not in _REGISTRY]
    if unknown:
        raise ValueError(f"unknown benchmarks {unknown} (have {bench_names()})")

    results: List[BenchResult] = []
    for name in selected:
        run = _REGISTRY[name](quick)
        timings, packets = _measure(run, reps)
        median_ns = _median(timings)
        results.append(
            BenchResult(
                bench=name,
                pkts_per_sec=packets / (median_ns / 1e9),
                ns_per_pkt=median_ns / packets,
                reps=reps,
                packets=packets,
                p95_ns_per_pkt=_p95(timings) / packets,
            )
        )
    report = {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "results": [result.row() for result in results],
    }
    if registry is not None:
        from ..obs import record_bench_report

        record_bench_report(registry, report)
    return report


def write_report(report: dict, path: str) -> None:
    """Write a bench report as stable, diff-friendly JSON."""
    import json

    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def profile_benchmark(name: str, quick: bool = False, top: int = 25) -> dict:
    """Run one benchmark under cProfile; return a deterministic summary.

    The benchmark runs once untimed (warmup — so lazy imports and
    caches do not dominate the profile) and once under the profiler.
    Rows are the top-*top* functions by cumulative time, tie-broken by
    qualified name so the *ordering* (and, because the workloads are
    seeded, every call count) is deterministic across runs; the time
    columns naturally vary with the machine.

    Returns ``{"bench", "packets", "total_calls", "rows"}`` where each
    row is ``{"ncalls", "tottime", "cumtime", "function"}``.
    """
    import cProfile
    import os

    if name not in _REGISTRY:
        raise ValueError(f"unknown benchmark {name!r} (have {bench_names()})")
    run = _REGISTRY[name](quick)
    run()  # warmup
    profiler = cProfile.Profile()
    profiler.enable()
    packets = run()
    profiler.disable()
    profiler.create_stats()

    rows = []
    total_calls = 0
    for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in profiler.stats.items():
        total_calls += nc
        where = f"{os.path.basename(filename)}:{lineno}({funcname})"
        rows.append({"ncalls": nc, "tottime": tt, "cumtime": ct, "function": where})
    rows.sort(key=lambda row: (-row["cumtime"], row["function"]))
    return {
        "bench": name,
        "packets": packets,
        "total_calls": total_calls,
        "rows": rows[:top],
    }


def format_profile(summary: dict) -> str:
    """Render a :func:`profile_benchmark` summary as an aligned table."""
    lines = [
        f"profile: {summary['bench']}  "
        f"({summary['packets']} packets, {summary['total_calls']} calls)",
        f"{'ncalls':>10s} {'tottime':>10s} {'cumtime':>10s}  function",
    ]
    for row in summary["rows"]:
        lines.append(
            f"{row['ncalls']:>10d} {row['tottime']:>10.4f} "
            f"{row['cumtime']:>10.4f}  {row['function']}"
        )
    return "\n".join(lines)
