"""Diff two bench reports and gate on regressions.

CI runs ``repro bench --quick`` on every push and compares the fresh
numbers against the committed baseline with a generous threshold
(runner noise on shared VMs easily reaches tens of percent — the gate
exists to catch order-of-magnitude fast-path regressions, not 5 %
jitter).  Usable standalone::

    python -m repro.perf.compare BENCH_old.json BENCH_new.json --threshold 0.3
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional

from .bench import BENCH_SCHEMA

__all__ = [
    "CompareResult",
    "compare_reports",
    "load_report",
    "speedup_table",
    "validate_report",
    "main",
]

#: Keys every result row must carry, with their required types.
_ROW_KEYS = {
    "bench": str,
    "pkts_per_sec": (int, float),
    "ns_per_pkt": (int, float),
    "reps": int,
}


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless *report* matches the bench schema."""
    if not isinstance(report, dict):
        raise ValueError("bench report must be a JSON object")
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unsupported bench schema {report.get('schema')!r} (want {BENCH_SCHEMA!r})"
        )
    rows = report.get("results")
    if not isinstance(rows, list) or not rows:
        raise ValueError("bench report carries no results")
    seen = set()
    for row in rows:
        if not isinstance(row, dict):
            raise ValueError("bench result row must be an object")
        for key, types in _ROW_KEYS.items():
            if key not in row:
                raise ValueError(f"bench row missing {key!r}: {row}")
            if not isinstance(row[key], types):
                raise ValueError(f"bench row field {key!r} has wrong type: {row}")
        if row["pkts_per_sec"] <= 0 or row["ns_per_pkt"] <= 0 or row["reps"] < 1:
            raise ValueError(f"bench row values out of range: {row}")
        if row["bench"] in seen:
            raise ValueError(f"duplicate bench {row['bench']!r}")
        seen.add(row["bench"])


def load_report(path: str) -> dict:
    """Load and validate a bench report from *path*."""
    with open(path) as handle:
        report = json.load(handle)
    validate_report(report)
    return report


@dataclass
class CompareResult:
    """Per-bench baseline/current comparison."""

    bench: str
    base_pps: float
    new_pps: float
    ratio: float  # new / base; < 1 is a slowdown
    regressed: bool
    #: The bench exists in the baseline but not the candidate report.
    missing: bool = False
    base_ns: float = 0.0
    new_ns: float = 0.0

    @property
    def speedup(self) -> float:
        """Speedup of the candidate over the baseline (= ``ratio``).

        Expressed as a named column so reports read "2.00x speedup"
        rather than a bare ratio; < 1.0 is a slowdown.
        """
        return self.ratio

    def line(self) -> str:
        if self.missing:
            return (
                f"{self.bench:22s} {self.base_pps:14,.0f} -> "
                f"{'(absent)':>14s} pkts/s                    MISSING"
            )
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.bench:22s} {self.base_pps:14,.0f} -> {self.new_pps:14,.0f} pkts/s "
            f"speedup {self.speedup:6.2f}x  {verdict}"
        )


def compare_reports(base: dict, new: dict, threshold: float = 0.30) -> List[CompareResult]:
    """Compare the candidate report against the baseline.

    A bench regresses when its fresh rate falls below
    ``base * (1 - threshold)``.  A bench present in the baseline but
    absent from the candidate is reported as a *failure* (``missing``,
    ``regressed=True``): a silently dropped benchmark is exactly how a
    deleted fast path escapes the gate.  Benches only in the candidate
    are skipped — adding a benchmark must not fail the gate
    retroactively.
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError("threshold must be in [0, 1)")
    validate_report(base)
    validate_report(new)
    base_rows = {row["bench"]: row for row in base["results"]}
    new_names = {row["bench"] for row in new["results"]}
    results: List[CompareResult] = []
    common = 0
    for row in new["results"]:
        baseline = base_rows.get(row["bench"])
        if baseline is None:
            continue
        common += 1
        base_pps = float(baseline["pkts_per_sec"])
        new_pps = float(row["pkts_per_sec"])
        results.append(
            CompareResult(
                bench=row["bench"],
                base_pps=base_pps,
                new_pps=new_pps,
                ratio=new_pps / base_pps,
                regressed=new_pps < base_pps * (1.0 - threshold),
                base_ns=float(baseline["ns_per_pkt"]),
                new_ns=float(row["ns_per_pkt"]),
            )
        )
    if not common:
        raise ValueError("no common benchmarks between the two reports")
    for name, baseline in base_rows.items():
        if name not in new_names:
            results.append(
                CompareResult(
                    bench=name,
                    base_pps=float(baseline["pkts_per_sec"]),
                    new_pps=0.0,
                    ratio=0.0,
                    regressed=True,
                    missing=True,
                )
            )
    return results


def speedup_table(results: List[CompareResult]) -> str:
    """Render comparison results as a markdown speedup table.

    Used to generate the speedup tables in ``EXPERIMENTS.md``; missing
    benches are excluded (they are gate failures, not measurements).
    """
    lines = [
        "| bench | baseline pkts/s | current pkts/s | baseline ns/pkt "
        "| current ns/pkt | speedup |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for result in results:
        if result.missing:
            continue
        lines.append(
            f"| {result.bench} | {result.base_pps:,.0f} | {result.new_pps:,.0f} "
            f"| {result.base_ns:,.0f} | {result.new_ns:,.0f} "
            f"| {result.speedup:.2f}x |"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: exit 1 when any common bench regressed past the threshold."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.perf.compare",
        description="diff two repro bench JSON reports",
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown (default 0.30)")
    parser.add_argument("--table", action="store_true",
                        help="also print a markdown speedup table")
    args = parser.parse_args(argv)

    results = compare_reports(
        load_report(args.baseline), load_report(args.current), args.threshold
    )
    for result in results:
        print(result.line())
    if args.table:
        print()
        print(speedup_table(results))
    regressed = [result for result in results if result.regressed]
    if regressed:
        print(f"{len(regressed)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%} of baseline")
        return 1
    print(f"all {len(results)} benchmarks within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
