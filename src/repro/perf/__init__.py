"""Performance harness: seeded microbenchmarks and regression gating.

The datapath's throughput claims are only as good as the trajectory of
measurements behind them.  This package provides:

* :mod:`repro.perf.bench` — deterministic, seeded microbenchmarks of
  the fast path (packet parse/serialize, checksum, merge/split,
  caravan build/open, the UPF pipeline, and a full gateway world),
  with warmup, repetition, and median/p95 reporting;
* :mod:`repro.perf.compare` — diffing of two bench JSON files with a
  configurable regression threshold, used as the CI gate.

Run via ``repro bench`` (see :mod:`repro.cli`) or programmatically::

    from repro.perf import run_benchmarks, write_report
    report = run_benchmarks(quick=True)
    write_report(report, "BENCH.json")
"""

from .bench import (
    BENCH_SCHEMA,
    BenchResult,
    bench_names,
    format_profile,
    profile_benchmark,
    run_benchmarks,
    write_report,
)
from .compare import (
    CompareResult,
    compare_reports,
    load_report,
    speedup_table,
    validate_report,
)
from .fleet import FLEET_SCHEMA, fleet_world_report, format_fleet_report

__all__ = [
    "FLEET_SCHEMA",
    "fleet_world_report",
    "format_fleet_report",
    "BENCH_SCHEMA",
    "BenchResult",
    "bench_names",
    "format_profile",
    "profile_benchmark",
    "run_benchmarks",
    "write_report",
    "CompareResult",
    "compare_reports",
    "load_report",
    "speedup_table",
    "validate_report",
]
