"""PacketExpress (PX) — reproduction of "Towards Incremental MTU Upgrade
for the Internet" (HotNets '25).

The library is organized bottom-up:

* :mod:`repro.packet` — byte-accurate IPv4/TCP/UDP/ICMP/GTP-U formats,
  fragmentation, and flow keys;
* :mod:`repro.sim` — a deterministic discrete-event simulator (links,
  netem impairment, tracing);
* :mod:`repro.net` — hosts, routers (ICMP blackholes, fragment
  filters), and a topology builder with automatic routing;
* :mod:`repro.tcpstack` — an event-driven TCP with MSS negotiation,
  Reno/CUBIC, and classical PMTUD at the sender;
* :mod:`repro.nic` — LRO/GRO/TSO/RSS/DMA offload models and end-host
  cost models;
* :mod:`repro.cpu` — cycle accounting plus the calibrated constants
  behind every absolute performance number;
* :mod:`repro.upf` — the 5G UPF substrate (PDR/FAR/QER over GTP-U);
* :mod:`repro.core` — **PXGW**, the MTU-translating gateway (TCP
  stream splicing, PX-caravan, MSS clamping, hairpin steering);
* :mod:`repro.pmtud` — F-PMTUD and its classical/PLPMTUD baselines,
  plus the fragment-delivery survey;
* :mod:`repro.workload` / :mod:`repro.analysis` — traffic generation
  and paper-vs-measured reporting.

Quick start::

    from repro.core import GatewayConfig, PXGateway
    from repro.net import Topology

    topo = Topology()
    inside, outside = topo.add_host("inside"), topo.add_host("outside")
    gw = topo.add_node(PXGateway(topo.sim, "pxgw", GatewayConfig()))
    topo.link(inside, gw, mtu=9000)
    topo.link(gw, outside, mtu=1500)
    topo.build_routes()
    gw.mark_internal(gw.interfaces[0])

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

__version__ = "1.0.0"

__all__ = ["packet", "sim", "net", "tcpstack", "nic", "cpu", "upf", "core",
           "pmtud", "workload", "analysis"]
