"""Adversarial PMTUD scenarios: attacker models vs. the hardened stack.

The chaos corpus (:mod:`repro.chaos.scenarios`) asks "does the datapath
survive an *unreliable* network?".  This module asks the complementary
question: "does the PMTUD control plane survive a *hostile* one?".  An
attack world is a chaos world plus an off-path attacker host hanging
off the middle router (routers here do no uRPF, so the attacker can
send packets with any spoofed source that route normally) and a
neighbour host sharing the victim's gateway — the address-sharing
setting where one flow's poisoned PMTU can hurt another's.

Every scenario is run **differentially**: once with
:meth:`~repro.pmtud.hardening.HardeningPolicy.hardened` and once with
:meth:`~repro.pmtud.hardening.HardeningPolicy.unhardened` defenses.
The unhardened stack must be measurably *compromised* (it accepts a
forged value, mis-sizes gateway splits into micro-segments, or emits
oversized packets that blackhole at the bottleneck) while the hardened
stack must not — that difference is what proves each defense earns its
place.  Runs are fully deterministic: same (name, seed, hardened) →
identical :attr:`AttackResult.digest`.

The observability tie-in (PR 5): every attack world carries a metrics
registry, an in-sim :class:`~repro.obs.TelemetryTimeline`, and an
:class:`~repro.obs.AlertEngine` on :func:`~repro.obs.alerts.adversarial_alert_rules`,
so a report flood that starves the PMTU cache shows up as the
``pmtu-cache-miss-spike`` alert FIRING mid-run — attacks are *detected*,
not just survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core import GatewayConfig, PXGateway
from ..net import Topology
from ..obs import (
    AlertEngine,
    Observability,
    SpanTracker,
    TelemetryTimeline,
    observe_pmtud,
)
from ..obs.alerts import adversarial_alert_rules
from ..packet import ICMPMessage, IPProto, build_icmp, build_tcp, build_udp
from ..pmtud import ECHO_PORT, FPmtudDaemon, FPmtudProber, Plpmtud, ProbeEchoDaemon
from ..pmtud.classical import ClassicalPmtud
from ..pmtud.echo import pack_echo_ack
from ..pmtud.fpmtud import _pack_report
from ..pmtud.hardening import HardeningPolicy
from ..resilience import PmtuCache, ResilientPmtud
from ..resilience.ptb import PtbListener
from ..tcpstack import TCPConnection, TCPListener
from .faults import AttackFault, Fault, FaultLog, FaultPlan, LyingDaemonInjector, Match
from .oracle import ChaosTap, InvariantOracle, trace_digest
from .scenarios import PROBER_PORT

__all__ = [
    "AttackWorld",
    "AttackResult",
    "ATTACK_SCENARIOS",
    "apply_attack_faults",
    "attack_corpus",
    "build_attack_world",
    "build_attack_plan",
    "run_attack_scenario",
    "run_differential",
]

_IMTU = 9000
_EMTU = 1500
#: The hidden bottleneck between the middle router and the server.
BOTTLENECK_MTU = 1280
_INSIDE_MSS = _IMTU - 40
_OUTSIDE_MSS = _EMTU - 40

#: Source ports of the victim's discovery agents (what a forger must
#: reach; well-known here, as they would be to a determined attacker).
PLPMTUD_PORT = 54000
CLASSICAL_PORT = 53000

#: The victim's and neighbour's upload flows (4-tuples an off-path
#: attacker is assumed to know — they are guessable in practice).
VICTIM_FLOW = ("victim", 40001, "server", 9100)
NEIGHBOR_FLOW = ("neighbor", 41001, "server", 9101)


@dataclass
class AttackWorld:
    """A chaos world with an adversary attached."""

    topo: Topology
    gateway: PXGateway
    victim: object
    neighbor: object
    server: object
    attacker: object
    mid: object
    links: Dict[str, object]
    taps: Dict[str, ChaosTap]
    log: FaultLog
    policy: HardeningPolicy
    hardened: bool
    #: Discovery agents (all policy-carrying).
    prober: FPmtudProber
    plpmtud: Plpmtud
    classical: ClassicalPmtud
    resilient: ResilientPmtud
    ptb_victim: PtbListener
    ptb_neighbor: PtbListener
    #: Role name -> address, for resolving AttackFault targets.
    roles: Dict[str, int] = field(default_factory=dict)
    obs: Optional[object] = None
    alerts: Optional[AlertEngine] = None
    timeline: Optional[TelemetryTimeline] = None


@dataclass
class AttackResult:
    """Everything one adversarial run produced."""

    name: str
    seed: int
    hardened: bool
    #: Did the attack land?  Per-scenario predicate over the notes —
    #: forged value accepted, micro-segments emitted, oversized packets
    #: blackholed, or a neighbour's poison bleeding across flows.
    compromised: bool
    violations: List[str]
    digest: str
    estimates: List[int]
    notes: Dict[str, object] = field(default_factory=dict)
    #: Final alert states plus every rule that fired mid-run.
    alerts: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "hardened" if self.hardened else "unhardened"
        verdict = "COMPROMISED" if self.compromised else "safe"
        return f"<Attack {self.name}/{self.seed} {mode} {verdict}>"


# ----------------------------------------------------------------------
# World construction
# ----------------------------------------------------------------------
def build_attack_world(seed: int, hardened: bool) -> AttackWorld:
    """Build the adversarial topology: victim+neighbor | PXGW | mid | server,
    with the attacker hanging off the mid router."""
    policy = HardeningPolicy.hardened() if hardened else HardeningPolicy.unhardened()
    topo = Topology(seed=434343)
    victim = topo.add_host("victim")
    neighbor = topo.add_host("neighbor")
    server = topo.add_host("server")
    attacker = topo.add_host("attacker")
    config = GatewayConfig(elephant_threshold_packets=2, header_only_dma=True)
    gateway = PXGateway(topo.sim, "pxgw", config=config)
    topo.add_node(gateway)
    mid = topo.add_router("mid")

    # External links are deliberately slow (100 Mb/s): uploads must
    # still be in flight while the attacks run, so mis-sizing shows up
    # in the packet stream rather than racing the transfer's end.
    topo.link(victim, gateway, mtu=_IMTU, bandwidth_bps=10e9, delay=5e-5)
    topo.link(neighbor, gateway, mtu=_IMTU, bandwidth_bps=10e9, delay=5e-5)
    topo.link(gateway, mid, mtu=_EMTU, bandwidth_bps=100e6, delay=2e-4)
    topo.link(mid, server, mtu=BOTTLENECK_MTU, bandwidth_bps=100e6, delay=2e-4)
    topo.link(mid, attacker, mtu=_EMTU, bandwidth_bps=100e6, delay=1e-4)

    links: Dict[str, object] = {}
    _, _, ext_out, ext_in = topo.edge(gateway, mid)
    _, _, far_out, far_in = topo.edge(mid, server)
    _, _, atk_out, atk_in = topo.edge(attacker, mid)
    _, vic_gw_iface, vic_out, vic_in = topo.edge(victim, gateway)
    _, nbr_gw_iface, nbr_out, nbr_in = topo.edge(neighbor, gateway)
    links.update(ext_out=ext_out, ext_in=ext_in, far_out=far_out,
                 far_in=far_in, atk_out=atk_out, atk_in=atk_in,
                 vic_out=vic_out, vic_in=vic_in,
                 nbr_out=nbr_out, nbr_in=nbr_in)

    topo.build_routes()
    gateway.mark_internal(vic_gw_iface)
    gateway.mark_internal(nbr_gw_iface)
    # b-network hosts: the gateway may bundle inbound UDP (including an
    # attacker's spray) into caravans, so the victims must open them.
    victim.enable_caravan_stack(_IMTU)
    neighbor.enable_caravan_stack(_IMTU)

    # The PMTU cache carries the policy: per-flow keying, unsolicited
    # bounds, and raise rejection all live behind it.
    cache = PmtuCache(default_ttl=config.pmtu_cache_ttl, policy=policy)
    gateway.attach_pmtu_cache(cache)
    gateway.enable_resilience()
    obs = gateway.attach_observability(Observability(spans=SpanTracker()))

    # Discovery agents on the victim, all carrying the same policy.
    FPmtudDaemon(server)
    ProbeEchoDaemon(server)
    prober = FPmtudProber(victim, src_port=PROBER_PORT, policy=policy,
                          link_mtu=_EMTU, nonce_seed=seed)
    plpmtud = Plpmtud(victim, src_port=PLPMTUD_PORT, probe_timeout=0.15,
                      max_retries=2, policy=policy, nonce_seed=seed)
    classical = ClassicalPmtud(victim, src_port=CLASSICAL_PORT,
                               probe_timeout=0.2, max_retries=3,
                               policy=policy, nonce_seed=seed)
    resilient = ResilientPmtud(victim, cache=cache, prober=prober,
                               plpmtud=plpmtud, fpmtud_timeout=0.3,
                               cache_ttl=None, seed=seed)
    ptb_victim = PtbListener(victim, cache, policy=policy, link_mtu=_EMTU)
    ptb_neighbor = PtbListener(neighbor, cache, policy=policy, link_mtu=_EMTU)

    observe_pmtud(obs, prober=prober)
    alerts = AlertEngine(adversarial_alert_rules())
    timeline = TelemetryTimeline(topo.sim, obs.registry, interval=0.05,
                                 alerts=alerts)
    timeline.start()

    taps: Dict[str, ChaosTap] = {}
    for role in ("ext_out", "ext_in", "far_out", "far_in",
                 "vic_out", "vic_in", "nbr_out", "nbr_in"):
        tap = ChaosTap(role)
        links[role].add_tap(tap)
        taps[role] = tap

    roles = {
        "victim": victim.ip,
        "neighbor": neighbor.ip,
        "server": server.ip,
        "attacker": attacker.ip,
        "mid": mid.interfaces[0].ip,
    }
    return AttackWorld(
        topo=topo, gateway=gateway, victim=victim, neighbor=neighbor,
        server=server, attacker=attacker, mid=mid, links=links, taps=taps,
        log=FaultLog(), policy=policy, hardened=hardened, prober=prober,
        plpmtud=plpmtud, classical=classical, resilient=resilient,
        ptb_victim=ptb_victim, ptb_neighbor=ptb_neighbor, roles=roles,
        obs=obs, alerts=alerts, timeline=timeline,
    )


# ----------------------------------------------------------------------
# Attack scheduling
# ----------------------------------------------------------------------
def _forged_udp(world: AttackWorld, fault: AttackFault, payload: bytes,
                src_port: int) -> None:
    """One spoofed UDP datagram from the attacker (off-path)."""
    packet = build_udp(
        world.roles[fault.spoof], world.roles[fault.target],
        src_port, fault.target_port, payload=payload,
    )
    world.attacker.send(packet)


def _fire_forged_report(world: AttackWorld, fault: AttackFault) -> None:
    from ..pmtud.fpmtud import FPMTUD_PORT

    for guess in range(fault.id_base, fault.id_base + fault.id_span):
        _forged_udp(world, fault, _pack_report(guess, [fault.mtu]), FPMTUD_PORT)


def _fire_forged_echo_ack(world: AttackWorld, fault: AttackFault) -> None:
    for guess in range(fault.id_base, fault.id_base + fault.id_span):
        _forged_udp(world, fault, pack_echo_ack(guess), ECHO_PORT)


def _fire_forged_ptb(world: AttackWorld, fault: AttackFault) -> None:
    src_role, src_port, dst_role, dst_port = fault.flow
    quoted = build_tcp(
        world.roles[src_role], world.roles[dst_role], src_port, dst_port,
    ).to_bytes()
    ptb = build_icmp(
        world.roles[fault.spoof], world.roles[fault.target],
        ICMPMessage.frag_needed(fault.mtu, quoted),
    )
    world.attacker.send(ptb)


_ATTACK_FIRES = {
    "forged_report": _fire_forged_report,
    "forged_echo_ack": _fire_forged_echo_ack,
    "forged_ptb": _fire_forged_ptb,
}


def apply_attack_faults(plan: FaultPlan, world: AttackWorld) -> None:
    """Schedule a plan's attack faults onto the world.

    Off-path kinds become timed spoofed sends from the attacker host;
    ``lying_daemon`` installs a report-rewriting injector on its link.
    Link faults in the plan are installed as usual.
    """
    sim = world.topo.sim
    for fault in plan.attack_faults:
        if fault.kind == "lying_daemon":
            world.links[fault.link].injector = LyingDaemonInjector(
                fault.mtu, PROBER_PORT, world.log)
            continue
        fire = _ATTACK_FIRES[fault.kind]
        for burst in range(fault.count):
            sim.schedule_at(fault.at + burst * fault.interval,
                            fire, world, fault)
    for role, injector in plan.injectors(world.log).items():
        link = world.links.get(role)
        if link is None:
            raise ValueError(
                f"attack plan targets unknown link role {role!r} "
                f"(this world has {sorted(world.links)})"
            )
        link.injector = injector


# ----------------------------------------------------------------------
# Measurement helpers
# ----------------------------------------------------------------------
def _tcp_data_lengths(tap: ChaosTap, src_port: Optional[int] = None,
                      since: float = 0.0) -> List[int]:
    """Total lengths of TCP data segments at one tap from *since* on."""
    lengths: List[int] = []
    for time, kind, summary in tap.events:
        if kind != "rx" or time < since or "tcp" not in summary:
            continue
        anchor = summary.index("tcp")
        if src_port is not None and summary[anchor + 1] != src_port:
            continue
        if summary[anchor + 6] == 0:  # pure ACK
            continue
        lengths.append(summary[3])
    return lengths


def _count_oversized(tap: ChaosTap, limit: int, since: float = 0.0) -> int:
    return sum(1 for length in _tcp_data_lengths(tap, since=since)
               if length > limit)


def _small_ratio(tap: ChaosTap, ceiling: int, since: float = 0.0,
                 src_port: Optional[int] = None) -> float:
    """Fraction of data segments at/below *ceiling*.

    A healthy split stream has only its per-jumbo remainder segments
    down there (~1 in 8); a stream clamped by a poisoned PMTU is
    entirely below the ceiling, so a 0.5 threshold separates them
    with a wide margin on both sides.
    """
    lengths = _tcp_data_lengths(tap, src_port=src_port, since=since)
    if not lengths:
        return 0.0
    return sum(1 for length in lengths if length <= ceiling) / len(lengths)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _probe_workload(world: AttackWorld) -> Tuple[List[int], Dict[str, object]]:
    """Raw F-PMTUD discovery with bounded retries (no cache, no TCP)."""
    results: list = []
    attempts = [0]

    def launch() -> None:
        attempts[0] += 1
        world.prober.probe(world.server.ip, _IMTU, results.append,
                           timeout=0.4, on_timeout=on_timeout)

    def on_timeout() -> None:
        if attempts[0] < 5 and not results:
            launch()

    world.topo.sim.schedule_at(1e-4, launch)
    world.topo.run(until=4.0)
    estimates = [result.pmtu for result in results]
    return estimates, {"attempts": attempts[0]}


def _plpmtud_workload(world: AttackWorld) -> Tuple[List[int], Dict[str, object]]:
    """One PLPMTUD binary search toward the server."""
    results: list = []
    world.topo.sim.schedule_at(
        1e-4, world.plpmtud.discover, world.server.ip, _EMTU, results.append)
    world.topo.run(until=6.0)
    estimates = [result.pmtu for result in results]
    return estimates, {
        "acks_ignored": world.plpmtud.acks_ignored,
        "probes": results[0].probes_sent if results else 0,
    }


def _classical_workload(world: AttackWorld) -> Tuple[List[int], Dict[str, object]]:
    """One RFC 1191 discovery toward the server."""
    results: list = []
    world.topo.sim.schedule_at(
        1e-4, world.classical.discover, world.server.ip, _EMTU, results.append)
    world.topo.run(until=6.0)
    estimates = [r.pmtu for r in results if r.pmtu is not None]
    return estimates, {
        "blackholed": bool(results and results[0].blackholed),
        "ptb_rejections": dict(world.classical.ptb_rejections),
        "icmp_received": results[0].icmp_received if results else 0,
    }


def _start_upload(world: AttackWorld, flow: Tuple[str, int, str, int],
                  size: int, at: float) -> Tuple[TCPConnection, TCPListener]:
    src_role, src_port, _dst_role, dst_port = flow
    listener = TCPListener(world.server, dst_port, mss=_OUTSIDE_MSS)
    host = world.victim if src_role == "victim" else world.neighbor
    # pmtud=False: sizing on the external side is the *gateway's* job
    # (it splits jumbos against its PMTU cache); leaving the host TCP
    # stack's own naive PTB handler on would let a forged PTB shrink
    # send_mss underneath the hardened cache and muddy the differential.
    conn = TCPConnection(host, src_port, world.server.ip, dst_port,
                         mss=_INSIDE_MSS, pmtud=False)
    sim = world.topo.sim
    sim.schedule_at(at, conn.connect)

    def send_when_connected() -> None:
        if listener.connections:
            conn.send_bulk(size)
        else:
            sim.schedule(5e-3, send_when_connected)

    sim.schedule_at(at + 5e-3, send_when_connected)
    return conn, listener


def _upload_notes(world: AttackWorld, outcomes: list,
                  uploads: list) -> Tuple[List[int], Dict[str, object]]:
    estimates = [outcome.pmtu for outcome in outcomes]
    final = world.gateway.pmtu_cache.peek(world.server.ip, world.topo.sim.now)
    notes: Dict[str, object] = {
        "discovery": [outcome.source for outcome in outcomes],
        "cache_final": final.pmtu if final is not None else None,
        "cache": world.gateway.pmtu_cache.summary(),
        "uploaded": sum(
            listener.connections[0].bytes_delivered
            for _, listener in uploads if listener.connections
        ),
    }
    return estimates, notes


def _upload_workload(world: AttackWorld, flows=(VICTIM_FLOW,),
                     size: int = 300_000,
                     horizon: float = 6.0) -> Tuple[List[int], Dict[str, object]]:
    """Cache-backed uploads: discovery populates the gateway's PMTU
    cache, then TCP flows exercise the split-clamp path while the
    attack runs.  Uploads are gated on discovery (the realistic
    ordering: the gateway resolves a path before committing jumbos to
    it), so hardened runs never emit pre-discovery oversize."""
    outcomes: list = []
    uploads: list = []

    def begin(outcome) -> None:
        outcomes.append(outcome)
        start = world.topo.sim.now + 5e-3
        for flow in flows:
            uploads.append(_start_upload(world, flow, size, at=start))

    world.topo.sim.schedule_at(
        1e-3, world.resilient.discover, world.server.ip, _IMTU, begin)
    world.topo.run(until=horizon)
    return _upload_notes(world, outcomes, uploads)


def _upload_many_workload(world: AttackWorld) -> Tuple[List[int], Dict[str, object]]:
    """A fan of parallel uploads launched on a *clock*, not on
    discovery: traffic that cannot wait is exactly what turns a starved
    PMTU cache into the miss-spike alert."""
    outcomes: list = []
    world.topo.sim.schedule_at(
        1e-3, world.resilient.discover, world.server.ip, _IMTU, outcomes.append)
    uploads = [
        _start_upload(world, ("victim", 42000 + index, "server", 9300 + index),
                      20_000, at=0.4)
        for index in range(14)
    ]
    world.topo.run(until=6.0)
    estimates, notes = _upload_notes(world, outcomes, uploads)
    notes["rejected_reports"] = world.prober.rejected_reports
    return estimates, notes


_WORKLOADS: Dict[str, Callable[[AttackWorld], Tuple[List[int], Dict[str, object]]]] = {
    "probe": _probe_workload,
    "plpmtud": _plpmtud_workload,
    "classical": _classical_workload,
    "upload": _upload_workload,
    "upload-two": lambda world: _upload_workload(
        world, flows=(VICTIM_FLOW, NEIGHBOR_FLOW)),
    "upload-many": _upload_many_workload,
}


# ----------------------------------------------------------------------
# The scenario catalog
# ----------------------------------------------------------------------
def _estimates_outside_band(result_notes: Dict[str, object]) -> bool:
    """Any acted-on estimate outside [576, bottleneck]."""
    return any(not (576 <= estimate <= BOTTLENECK_MTU)
               for estimate in result_notes["estimates"])


def _oversized(result_notes: Dict[str, object]) -> bool:
    return result_notes.get("oversized", 0) >= 1


def _micro(result_notes: Dict[str, object]) -> bool:
    return result_notes.get("micro_ratio", 0.0) >= 0.5


def _victim_clamped(result_notes: Dict[str, object]) -> bool:
    return result_notes.get("victim_small_ratio", 0.0) >= 0.5


def _wildcard_poisoned(result_notes: Dict[str, object]) -> bool:
    final = result_notes.get("cache_final")
    return final is not None and final <= 700


def _cache_inflated(result_notes: Dict[str, object]) -> bool:
    final = result_notes.get("cache_final")
    return _estimates_outside_band(result_notes) or (
        final is not None and final > BOTTLENECK_MTU)


@dataclass(frozen=True)
class AttackScenario:
    """One named adversarial scenario: plan + workload + harm predicate."""

    name: str
    workload: str
    plan_factory: Callable[[], FaultPlan]
    compromise: Callable[[Dict[str, object]], bool]
    description: str = ""


def _report_spray(mtu: int, count: int = 4) -> FaultPlan:
    return FaultPlan(attack_faults=[AttackFault(
        kind="forged_report", at=2e-4, count=count, interval=3e-4,
        mtu=mtu, id_base=1, id_span=8, target="victim", spoof="server",
        target_port=PROBER_PORT,
    )])


ATTACK_SCENARIOS: Dict[str, AttackScenario] = {}


def _scenario(name: str, workload: str, plan_factory, compromise,
              description: str) -> None:
    ATTACK_SCENARIOS[name] = AttackScenario(
        name=name, workload=workload, plan_factory=plan_factory,
        compromise=compromise, description=description)


_scenario(
    "forged-report-raise", "probe",
    lambda: _report_spray(1496),
    _estimates_outside_band,
    "Off-path spoofed FPMR claiming a plausible 1496 B fragment: an "
    "unhardened sequential-id prober accepts the raise past the 1280 B "
    "bottleneck; nonces make the spray miss.",
)
_scenario(
    "forged-report-absurd", "probe",
    lambda: _report_spray(8996),
    _estimates_outside_band,
    "Spoofed FPMR claiming a jumbo fragment that no external link could "
    "carry; bounds clamp acceptance to [576, link MTU].",
)
_scenario(
    "forged-report-tiny", "probe",
    lambda: _report_spray(296),
    _estimates_outside_band,
    "Spoofed FPMR claiming 296 B fragments — the throughput-collapse "
    "poison; below the 576 B plausibility floor.",
)
_scenario(
    "lying-daemon-inflate", "upload",
    lambda: FaultPlan(attack_faults=[AttackFault(
        kind="lying_daemon", link="far_in", mtu=8996)]),
    lambda notes: _oversized(notes) or _estimates_outside_band(notes),
    "An on-path daemon rewrites genuine reports to claim jumbo "
    "fragments (nonces cannot help — the id is genuine).  Unhardened, "
    "the gateway splits oversized and blackholes; hardened, bounds "
    "reject every lie and the chain falls through to PLPMTUD.",
)
_scenario(
    "lying-daemon-tiny", "probe",
    lambda: FaultPlan(attack_faults=[AttackFault(
        kind="lying_daemon", link="far_in", mtu=296)]),
    _estimates_outside_band,
    "The same on-path liar claiming 296 B fragments; the plausibility "
    "floor rejects it and the probe times out into retry.",
)
_scenario(
    "forged-echo-ack", "plpmtud",
    lambda: FaultPlan(attack_faults=[AttackFault(
        kind="forged_echo_ack", at=5e-3, count=60, interval=1e-2,
        id_base=1, id_span=16, target="victim", spoof="server",
        target_port=PLPMTUD_PORT,
    )]),
    _estimates_outside_band,
    "Spoofed PLPMTUD acks confirm probes the path actually swallowed "
    "(RFC 4821 inflation): a sequential-id searcher converges above "
    "the bottleneck; nonce ids make every forged ack miss.",
)
_scenario(
    "classical-ptb-collapse", "classical",
    lambda: FaultPlan(attack_faults=[AttackFault(
        kind="forged_ptb", at=2e-4, count=4, interval=2e-4, mtu=296,
        flow=("victim", CLASSICAL_PORT, "server", ECHO_PORT),
        target="victim", spoof="mid",
    )]),
    _estimates_outside_band,
    "Forged ICMP frag-needed with a 296 B hint collapses classical "
    "PMTUD's estimate below the plausibility floor; hardened validation "
    "rejects it and the genuine 1280 B hint wins.",
)
_scenario(
    "forged-ptb-cache-tiny", "upload",
    lambda: FaultPlan(attack_faults=[AttackFault(
        kind="forged_ptb", at=0.012, count=60, interval=5e-3, mtu=296,
        flow=VICTIM_FLOW, target="victim", spoof="mid",
    )]),
    _micro,
    "Forged PTB poisons the gateway's PMTU cache mid-upload with a "
    "296 B value: unhardened splits collapse into micro-segments; the "
    "plausibility floor drops the poison.",
)
_scenario(
    "forged-ptb-cache-raise", "upload",
    lambda: FaultPlan(attack_faults=[AttackFault(
        kind="forged_ptb", at=0.012, count=60, interval=5e-3, mtu=_EMTU,
        flow=VICTIM_FLOW, target="victim", spoof="mid",
    )]),
    _oversized,
    "Forged PTB *raises* the cached PMTU to the full link MTU over the "
    "probe-learned bottleneck value: unhardened splits oversize and "
    "blackhole at the bottleneck; reject_raises keeps the probe-trust "
    "entry authoritative.",
)
_scenario(
    "cache-poison-cross-flow", "upload-two",
    lambda: FaultPlan(attack_faults=[AttackFault(
        kind="forged_ptb", at=0.012, count=60, interval=5e-3, mtu=800,
        flow=NEIGHBOR_FLOW, target="neighbor", spoof="mid",
    )]),
    _victim_clamped,
    "A plausible lowering PTB aimed at the *neighbour's* flow behind "
    "the shared gateway: with a per-destination cache the victim's "
    "flow inherits the 800 B clamp; per-flow keying isolates the "
    "poison to the flow it named.",
)
_scenario(
    "report-flood-detect", "upload-many",
    lambda: FaultPlan(
        link_faults=[Fault(
            action="drop", link="far_in",
            match=Match(protocol=IPProto.UDP, dst_port=PROBER_PORT),
            nth=1, count=20,
        )],
        attack_faults=[AttackFault(
            kind="forged_report", at=5e-3, count=30, interval=1e-2,
            mtu=1496, id_base=1, id_span=8, target="victim",
            spoof="server", target_port=PROBER_PORT,
        )],
    ),
    _cache_inflated,
    "Genuine reports are suppressed while forged ones flood in: the "
    "unhardened prober converges on the forgery; the hardened prober "
    "rejects everything, the starved cache spikes its miss rate, and "
    "the pmtu-cache-miss-spike + pmtud-rejected-reports alerts FIRE — "
    "the attack is detected, not just survived.",
)
_scenario(
    "ptb-flood-ratelimit", "upload",
    lambda: FaultPlan(attack_faults=[
        AttackFault(
            kind="forged_ptb", at=0.012 + step * 0.012, count=6,
            interval=2e-3, mtu=1400 - 80 * step,
            flow=VICTIM_FLOW, target="victim", spoof="mid",
        )
        for step in range(10)
    ]),
    _wildcard_poisoned,
    "A descending flood of individually-plausible lowering PTBs walks "
    "the per-destination PMTU down to 680 B.  Lowering is fail-safe by "
    "design, so some clamp lands even hardened — but the token bucket "
    "caps acceptances to a handful and per-flow keying confines them "
    "to the named flow, leaving the shared wildcard entry intact.",
)
_scenario(
    "benign-control", "upload",
    lambda: FaultPlan(),
    lambda notes: (_oversized(notes) or _micro(notes)
                   or _estimates_outside_band(notes)),
    "No attack at all: both stacks must discover, cache, clamp, and "
    "upload identically — and no alert beyond the stock rules may fire.",
)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def build_attack_plan(name: str) -> FaultPlan:
    """The (deterministic) fault plan for one named attack scenario."""
    if name not in ATTACK_SCENARIOS:
        raise ValueError(
            f"unknown attack scenario {name!r} (have {sorted(ATTACK_SCENARIOS)})")
    return ATTACK_SCENARIOS[name].plan_factory()


def run_attack_scenario(name: str, seed: int = 0,
                        hardened: bool = True) -> AttackResult:
    """Run one adversarial scenario end to end.

    Deterministic: (name, seed, hardened) fully determines the digest.
    """
    scenario = ATTACK_SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(
            f"unknown attack scenario {name!r} (have {sorted(ATTACK_SCENARIOS)})")
    plan = scenario.plan_factory()
    world = build_attack_world(seed, hardened)
    apply_attack_faults(plan, world)

    estimates, notes = _WORKLOADS[scenario.workload](world)
    notes["estimates"] = estimates
    notes["prober_rejections"] = dict(world.prober.rejections)
    notes["ptb_victim"] = world.ptb_victim.summary()
    notes["ptb_neighbor"] = world.ptb_neighbor.summary()
    # Packet-level harm, measured on the external egress from the
    # first attack instant onward (0 = whole run for on-path liars).
    since = min((fault.at for fault in plan.attack_faults), default=0.0)
    egress = world.taps["ext_out"]
    notes["attack_start"] = since
    notes["oversized"] = _count_oversized(egress, BOTTLENECK_MTU, since=since)
    notes["micro_ratio"] = round(_small_ratio(egress, 360, since=since), 4)
    notes["victim_small_ratio"] = round(
        _small_ratio(egress, 840, since=since, src_port=VICTIM_FLOW[1]), 4)

    # The sanity oracle runs only over *accepted* estimates: a hardened
    # stack must never have acted on an implausible value.
    oracle = InvariantOracle()
    oracle.check_pmtu_sanity(estimates, BOTTLENECK_MTU, _EMTU)
    violations = list(oracle.violations) if hardened else []
    if not hardened:
        # The unhardened run *expects* sanity violations under attack;
        # they are the compromise evidence, not a test failure.
        notes["sanity_violations"] = list(oracle.violations)

    alerts: Dict[str, object] = {}
    if world.alerts is not None:
        alerts = {
            "states": world.alerts.states(),
            "fired": sorted({t["rule"] for t in world.alerts.firings()}),
        }

    return AttackResult(
        name=name,
        seed=seed,
        hardened=hardened,
        compromised=scenario.compromise(notes),
        violations=violations,
        digest=trace_digest(world.taps.values()),
        estimates=estimates,
        notes=notes,
        alerts=alerts,
    )


def run_differential(name: str, seed: int = 0) -> Tuple[AttackResult, AttackResult]:
    """Run one scenario both ways: (hardened, unhardened)."""
    return (run_attack_scenario(name, seed, hardened=True),
            run_attack_scenario(name, seed, hardened=False))


def attack_corpus() -> List[Tuple[str, int]]:
    """The standard (scenario, seed) matrix the adversarial suite runs."""
    return [(name, 7) for name in sorted(ATTACK_SCENARIOS)]
