"""Deterministic chaos testing for the PX datapath (guide: `docs/CHAOS.md`).

Three layers:

* :mod:`repro.chaos.faults` — the :class:`FaultPlan` DSL: seeded,
  schedule-driven drop/duplicate/reorder/corrupt/truncate/delay faults
  on links, plus gateway-level stalls, eviction storms, and on-NIC
  memory exhaustion;
* :mod:`repro.chaos.oracle` — the :class:`InvariantOracle`: end-to-end
  invariants (TCP stream transparency, datagram-boundary preservation,
  MSS/MTU discipline, counter conservation, F-PMTUD convergence)
  checked against taps at sender, gateway ingress/egress, receiver;
* :mod:`repro.chaos.scenarios` / :mod:`repro.chaos.shrink` — seeded
  scenario execution (``run_scenario(profile, seed)`` is a pure
  function) and minimization of failing schedules.
"""

from .faults import (
    Fault,
    FaultLog,
    FaultPlan,
    GatewayFault,
    LinkInjector,
    Match,
    apply_gateway_faults,
)
from .oracle import ChaosTap, InvariantOracle, summarize_packet, trace_digest
from .scenarios import (
    PROFILES,
    ChaosWorld,
    ScenarioResult,
    build_plan,
    build_world,
    corpus,
    run_scenario,
)
from .shrink import ShrinkResult, shrink_plan

__all__ = [
    "Match",
    "Fault",
    "GatewayFault",
    "FaultPlan",
    "FaultLog",
    "LinkInjector",
    "apply_gateway_faults",
    "ChaosTap",
    "InvariantOracle",
    "summarize_packet",
    "trace_digest",
    "PROFILES",
    "ChaosWorld",
    "ScenarioResult",
    "build_world",
    "build_plan",
    "run_scenario",
    "corpus",
    "shrink_plan",
    "ShrinkResult",
]
