"""Deterministic chaos testing for the PX datapath (guide: `docs/CHAOS.md`).

Three layers:

* :mod:`repro.chaos.faults` — the :class:`FaultPlan` DSL: seeded,
  schedule-driven drop/duplicate/reorder/corrupt/truncate/delay faults
  on links, plus gateway-level stalls, eviction storms, and on-NIC
  memory exhaustion;
* :mod:`repro.chaos.oracle` — the :class:`InvariantOracle`: end-to-end
  invariants (TCP stream transparency, datagram-boundary preservation,
  MSS/MTU discipline, counter conservation, F-PMTUD convergence)
  checked against taps at sender, gateway ingress/egress, receiver;
* :mod:`repro.chaos.scenarios` / :mod:`repro.chaos.shrink` — seeded
  scenario execution (``run_scenario(profile, seed)`` is a pure
  function) and minimization of failing schedules.
"""

from .attacks import (
    ATTACK_SCENARIOS,
    AttackResult,
    AttackWorld,
    apply_attack_faults,
    attack_corpus,
    build_attack_plan,
    build_attack_world,
    run_attack_scenario,
    run_differential,
)
from .faults import (
    ATTACK_KINDS,
    AttackFault,
    Fault,
    FaultLog,
    FaultPlan,
    GatewayFault,
    LinkInjector,
    LyingDaemonInjector,
    Match,
    apply_gateway_faults,
)
from .oracle import ChaosTap, InvariantOracle, summarize_packet, trace_digest
from .scenarios import (
    PROFILES,
    ChaosWorld,
    ScenarioResult,
    build_plan,
    build_world,
    corpus,
    run_scenario,
)
from .shrink import ShrinkResult, shrink_plan

__all__ = [
    "Match",
    "Fault",
    "GatewayFault",
    "AttackFault",
    "ATTACK_KINDS",
    "ATTACK_SCENARIOS",
    "AttackResult",
    "AttackWorld",
    "FaultPlan",
    "FaultLog",
    "LinkInjector",
    "LyingDaemonInjector",
    "apply_gateway_faults",
    "apply_attack_faults",
    "attack_corpus",
    "build_attack_plan",
    "build_attack_world",
    "run_attack_scenario",
    "run_differential",
    "ChaosTap",
    "InvariantOracle",
    "summarize_packet",
    "trace_digest",
    "PROFILES",
    "ChaosWorld",
    "ScenarioResult",
    "build_world",
    "build_plan",
    "run_scenario",
    "corpus",
    "shrink_plan",
    "ShrinkResult",
]
