"""Seeded chaos scenarios: world building, fault planning, execution.

One scenario = (profile, seed).  The seed alone determines the world's
impairment parameters, the fault schedule, and therefore — because the
simulator, the netem rngs, and the injectors are all deterministic —
the entire packet-level execution.  ``run_scenario(profile, seed)``
twice returns identical oracle verdicts and identical trace digests,
which is what makes every chaos failure replayable and shrinkable.

Profiles:

* ``tcp``     — bulk transfers both ways (merge + split datapaths);
* ``caravan`` — UDP datagram streams both ways (caravan build/open);
* ``mixed``   — TCP download and caravans concurrently, sharing the
  gateway's merge machinery and flush timer;
* ``pmtud``   — F-PMTUD discovery across a hidden bottleneck, with
  probe/fragment/report losses forcing timeout-driven retries.

Every fault has a finite hit count, so each scenario reaches a
fault-free steady state in which TCP retransmission and F-PMTUD
retries must converge — the oracle then checks the end state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core import FPMTUD_PORT, GatewayConfig, PXGateway
from ..net import Topology
from ..obs import Observability, SpanTracker
from ..packet import IPProto
from ..pmtud import FPmtudDaemon, FPmtudProber
from ..sim import Netem
from ..tcpstack import TCPConnection, TCPListener
from .faults import (
    Fault,
    FaultLog,
    FaultPlan,
    GatewayFault,
    Match,
    apply_gateway_faults,
)
from .oracle import ChaosTap, InvariantOracle, trace_digest

__all__ = [
    "PROFILES",
    "ChaosWorld",
    "ScenarioResult",
    "build_plan",
    "build_world",
    "run_scenario",
    "corpus",
]

PROFILES = ("tcp", "caravan", "mixed", "pmtud")

#: The prober's source port (reports come back to it as plain UDP).
PROBER_PORT = 52000

_IMTU = 9000
_EMTU = 1500
_INSIDE_MSS = _IMTU - 40
_OUTSIDE_MSS = _EMTU - 40

#: Candidate hidden-bottleneck MTUs for the pmtud profile.
_PMTUD_BOTTLENECKS = (1280, 1356, 1408, 1444)


@dataclass
class ChaosWorld:
    """A built topology plus the chaos instrumentation attached to it."""

    topo: Topology
    gateway: PXGateway
    inside: object  # Host
    outside: object  # Host
    #: Directed links by role: int_out (inside->gw), int_in (gw->inside),
    #: ext_in (toward gw from outside), ext_out (gw toward outside), and
    #: for pmtud additionally far_in / far_out around the bottleneck.
    links: Dict[str, object]
    taps: Dict[str, ChaosTap]
    log: FaultLog
    mid_mtu: Optional[int] = None
    #: The resilience HealthMonitor attached to the gateway.
    monitor: Optional[object] = None
    #: Observability bundle: metrics registry + span tracker, no tracer.
    #: Both are read-only mirrors of the datapath, so attaching them
    #: cannot perturb the digests (the perturbation guard pins this).
    obs: Optional[object] = None


@dataclass
class ScenarioResult:
    """Everything one chaos run produced."""

    profile: str
    seed: int
    plan: FaultPlan
    violations: List[str]
    digest: str
    checks_run: int
    faults_fired: int
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"<Scenario {self.profile}/{self.seed} {verdict} "
            f"faults={self.faults_fired} digest={self.digest[:12]}>"
        )


# ----------------------------------------------------------------------
# World construction
# ----------------------------------------------------------------------
def build_world(profile: str, seed: int) -> ChaosWorld:
    """Build the (deterministic) topology for one scenario."""
    rng = random.Random(f"world:{profile}:{seed}")
    topo = Topology(seed=424242)
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    config = GatewayConfig(elephant_threshold_packets=2, header_only_dma=True)
    gateway = PXGateway(topo.sim, "pxgw", config=config)
    topo.add_node(gateway)

    topo.link(inside, gateway, mtu=_IMTU, bandwidth_bps=10e9, delay=5e-5)

    links: Dict[str, object] = {}
    mid_mtu: Optional[int] = None
    if profile == "pmtud":
        router = topo.add_router("mid")
        mid_mtu = rng.choice(_PMTUD_BOTTLENECKS)
        topo.link(gateway, router, mtu=_EMTU, bandwidth_bps=10e9, delay=2e-4)
        topo.link(router, outside, mtu=mid_mtu, bandwidth_bps=10e9, delay=2e-4)
        _, _, ext_out, ext_in = topo.edge(gateway, router)
        _, _, far_out, far_in = topo.edge(router, outside)
        links.update(ext_out=ext_out, ext_in=ext_in, far_out=far_out, far_in=far_in)
    else:
        # Seed-chosen ambient impairment: delay/jitter/reorder only, no
        # probabilistic loss, so the injected-fault accounting the
        # oracle budgets against stays exact.
        netem = None
        if rng.random() < 0.6:
            netem = Netem(
                delay=rng.uniform(2e-4, 2e-3),
                jitter=rng.uniform(0.0, 3e-4),
                reorder=rng.choice([0.0, 0.0, 0.02]),
                reorder_extra=1e-3,
                seed=rng.getrandbits(32),
            )
        topo.link(gateway, outside, mtu=_EMTU, bandwidth_bps=10e9, delay=5e-5,
                  netem=netem)
        _, _, ext_out, ext_in = topo.edge(gateway, outside)
        links.update(ext_out=ext_out, ext_in=ext_in)

    _, gw_iface, int_out, int_in = topo.edge(inside, gateway)
    links.update(int_out=int_out, int_in=int_in)

    topo.build_routes()
    gateway.mark_internal(gw_iface)
    # The resilience layer under test: every scenario must end with the
    # gateway back in HEALTHY (oracle check 5).
    monitor = gateway.enable_resilience()
    # Metrics registry + span tracker under test: the oracle reconciles
    # the registry exports against the live conservation counters and
    # asserts the span-balance identity at scenario end.  Both are
    # read-only mirrors of the datapath (scrape-time pull collectors;
    # span FIFOs driven by worker hooks that never touch packets, RNGs,
    # or scheduling), so the chaos digests cannot move — the
    # perturbation guard in tests/obs pins that.
    obs = gateway.attach_observability(Observability(spans=SpanTracker()))

    taps: Dict[str, ChaosTap] = {}
    for role, link in links.items():
        tap = ChaosTap(role)
        link.add_tap(tap)
        taps[role] = tap

    return ChaosWorld(
        topo=topo,
        gateway=gateway,
        inside=inside,
        outside=outside,
        links=links,
        taps=taps,
        log=FaultLog(),
        mid_mtu=mid_mtu,
        monitor=monitor,
        obs=obs,
    )


# ----------------------------------------------------------------------
# Fault planning
# ----------------------------------------------------------------------
def _tcp_fault(rng: random.Random, link: str) -> Fault:
    action = rng.choice(["drop", "duplicate", "reorder", "corrupt", "delay"])
    # Scale nth to the link's data-packet volume: the upload crossing
    # int_out is a handful of jumbo segments, while the download on
    # ext_in is dozens of eMTU segments — an nth beyond the traffic
    # would silently never fire.
    max_nth = 4 if link == "int_out" else 30
    return Fault(
        action=action,
        link=link,
        match=Match(protocol=IPProto.TCP, min_payload=1),
        nth=rng.randint(1, max_nth),
        count=rng.randint(1, 2),
        delay=rng.uniform(1e-3, 6e-3),
    )


def _udp_fault(rng: random.Random, link: str) -> Fault:
    action = rng.choice(["drop", "duplicate", "reorder", "corrupt", "truncate", "delay"])
    return Fault(
        action=action,
        link=link,
        match=Match(protocol=IPProto.UDP, min_payload=1),
        nth=rng.randint(1, 10),
        count=1,
        delay=rng.uniform(1e-3, 5e-3),
        truncate_to=rng.choice([8, 24, 96]),
    )


def _gateway_fault(rng: random.Random) -> GatewayFault:
    kind = rng.choice(["stall", "eviction_storm", "nic_pressure"])
    return GatewayFault(
        kind=kind,
        at=rng.uniform(0.05, 0.8),
        duration=rng.uniform(0.5e-3, 6e-3),
        contexts=1,
        nic_memory_bytes=rng.choice([0, 4096, 20_000]),
    )


def build_plan(profile: str, seed: int) -> FaultPlan:
    """Derive the scenario's complete fault schedule from its seed."""
    rng = random.Random(f"plan:{profile}:{seed}")
    plan = FaultPlan()

    if profile == "pmtud":
        for _ in range(rng.randint(1, 3)):
            choice = rng.random()
            if choice < 0.4:
                # Lose probe fragments crossing the bottleneck region.
                plan.link_faults.append(Fault(
                    action="drop",
                    link=rng.choice(["ext_out", "far_out"]),
                    match=Match(fragments=True),
                    nth=rng.randint(1, 4),
                    count=rng.randint(1, 2),
                ))
            elif choice < 0.6:
                # Lose the whole probe before it fragments.
                plan.link_faults.append(Fault(
                    action="drop",
                    link="int_out",
                    match=Match(protocol=IPProto.UDP, dst_port=FPMTUD_PORT),
                    nth=rng.randint(1, 2),
                ))
            elif choice < 0.8:
                # Lose the daemon's report on the way back.
                plan.link_faults.append(Fault(
                    action="drop",
                    link=rng.choice(["far_in", "ext_in"]),
                    match=Match(protocol=IPProto.UDP, dst_port=PROBER_PORT),
                    nth=1,
                ))
            else:
                plan.link_faults.append(Fault(
                    action="delay",
                    link="ext_out",
                    match=Match(fragments=True),
                    nth=rng.randint(1, 4),
                    delay=rng.uniform(1e-3, 2e-2),
                ))
        if rng.random() < 0.4:
            plan.gateway_faults.append(GatewayFault(
                kind="stall", at=rng.uniform(0.0, 0.5),
                duration=rng.uniform(1e-3, 8e-3),
            ))
        return plan

    for _ in range(rng.randint(2, 4)):
        if profile == "tcp":
            plan.link_faults.append(_tcp_fault(rng, rng.choice(["ext_in", "int_out"])))
        elif profile == "caravan":
            plan.link_faults.append(_udp_fault(rng, rng.choice(["ext_in", "int_in", "int_out"])))
        else:  # mixed
            if rng.random() < 0.5:
                plan.link_faults.append(_tcp_fault(rng, "ext_in"))
            else:
                plan.link_faults.append(_udp_fault(rng, rng.choice(["ext_in", "int_in"])))
    if rng.random() < 0.5:
        plan.gateway_faults.append(_gateway_fault(rng))
    return plan


# ----------------------------------------------------------------------
# Workloads (one per profile)
# ----------------------------------------------------------------------
def _await_handshakes(world: ChaosWorld, listeners: list, horizon: float = 4.0) -> float:
    """Run until every listener has accepted a connection (bounded)."""
    deadline = 0.25
    world.topo.run(until=deadline)
    while any(not lst.connections for lst in listeners) and deadline < horizon:
        deadline += 0.25
        world.topo.run(until=deadline)
    return deadline


def _check_common(world: ChaosWorld, oracle: InvariantOracle) -> None:
    oracle.check_gateway_stats(world.gateway)
    if world.monitor is not None:
        oracle.check_recovery(world.monitor)
    if world.obs is not None:
        oracle.check_registry(world.obs.registry, world.gateway)
        if world.obs.spans is not None:
            oracle.check_spans(world.obs.spans, world.gateway)
    oracle.check_segment_sizes(world.taps["int_in"], _IMTU, _INSIDE_MSS)
    oracle.check_segment_sizes(world.taps["int_out"], _IMTU, _INSIDE_MSS)
    oracle.check_segment_sizes(world.taps["ext_in"], _EMTU, _OUTSIDE_MSS)
    oracle.check_segment_sizes(world.taps["ext_out"], _EMTU, _OUTSIDE_MSS)
    # The gateway may only ever emit TCP bytes it has already received,
    # in both crossing directions.
    oracle.check_tcp_seq_coverage(world.taps["ext_in"], world.taps["int_in"])
    oracle.check_tcp_seq_coverage(world.taps["int_out"], world.taps["ext_out"])


def _run_tcp(world: ChaosWorld, oracle: InvariantOracle) -> Dict[str, object]:
    down_bytes, up_bytes = 60_000, 30_000
    # Download: outside server sends to inside (the merge datapath).
    down_listener = TCPListener(world.outside, 80, mss=_OUTSIDE_MSS)
    down = TCPConnection(world.inside, 40000, world.outside.ip, 80, mss=_INSIDE_MSS)
    # Upload: inside sends jumbos toward outside (the split datapath).
    up_listener = TCPListener(world.outside, 9100, mss=_OUTSIDE_MSS)
    up = TCPConnection(world.inside, 40001, world.outside.ip, 9100, mss=_INSIDE_MSS)
    down.connect()
    up.connect()
    settled = _await_handshakes(world, [down_listener, up_listener])

    if oracle.expect(
        bool(down_listener.connections) and bool(up_listener.connections),
        "tcp-stream", "handshake(s) never completed",
    ):
        down_listener.connections[0].send_bulk(down_bytes)
        up.send_bulk(up_bytes)
        world.topo.run(until=settled + 10.0)
        oracle.check_tcp_stream("download", down_bytes, down)
        oracle.check_tcp_stream("upload", up_bytes, up_listener.connections[0])
    _check_common(world, oracle)
    return {
        "downloaded": down.bytes_delivered,
        "uploaded": up_listener.connections[0].bytes_delivered
        if up_listener.connections else 0,
        "merged": world.gateway.stats.merged_packets,
        "split": world.gateway.stats.split_segments,
    }


def _unique_payloads(tag: int, count: int, size: int) -> List[bytes]:
    return [(bytes([tag, i & 0xFF]) * size)[:size] for i in range(count)]


def _setup_datagram_flows(world: ChaosWorld) -> Dict[str, list]:
    """Inbound bursts (outside->inside, gateway-built caravans) plus an
    outbound bulk send (inside->outside, host-built caravans)."""
    world.inside.enable_caravan_stack(_IMTU)
    received_in: List[bytes] = []
    received_out: List[bytes] = []
    world.inside.on_udp(4433, lambda p, h: received_in.append(p.payload))
    world.outside.on_udp(5544, lambda p, h: received_out.append(p.payload))

    sent_in = _unique_payloads(1, 36, 1000)
    sent_out = _unique_payloads(2, 16, 1200)
    sim = world.topo.sim

    def burst(start: int) -> None:
        for payload in sent_in[start:start + 12]:
            world.outside.send_udp(world.inside.ip, 4433, 4433, payload)

    sim.schedule_at(0.05, burst, 0)
    sim.schedule_at(0.10, burst, 12)
    sim.schedule_at(0.15, burst, 24)
    sim.schedule_at(0.22, world.inside.send_udp_bulk,
                    world.outside.ip, 5544, 5544, sent_out)
    return {
        "sent_in": sent_in, "received_in": received_in,
        "sent_out": sent_out, "received_out": received_out,
    }


def _check_datagram_flows(world: ChaosWorld, oracle: InvariantOracle,
                          flows: Dict[str, list]) -> None:
    loss = world.log.udp_datagrams_lost
    dup = world.log.udp_datagrams_duplicated
    mutated = (world.log.udp_datagrams_mutated
               + world.gateway.stats.udp_datagrams_malformed)
    oracle.check_datagram_flow(
        "inbound", flows["sent_in"], flows["received_in"],
        loss_budget=loss, dup_budget=dup, mutation_budget=mutated,
    )
    oracle.check_datagram_flow(
        "outbound", flows["sent_out"], flows["received_out"],
        loss_budget=loss, dup_budget=dup, mutation_budget=mutated,
    )


def _run_caravan(world: ChaosWorld, oracle: InvariantOracle) -> Dict[str, object]:
    flows = _setup_datagram_flows(world)
    world.topo.run(until=2.5)
    _check_datagram_flows(world, oracle, flows)
    _check_common(world, oracle)
    return {
        "delivered_in": len(flows["received_in"]),
        "delivered_out": len(flows["received_out"]),
        "caravans_built": world.gateway.stats.caravans_built,
        "caravans_opened": world.gateway.stats.caravans_opened,
        "decode_errors": world.inside.caravan_decode_errors,
    }


def _run_mixed(world: ChaosWorld, oracle: InvariantOracle) -> Dict[str, object]:
    down_bytes = 45_000
    down_listener = TCPListener(world.outside, 80, mss=_OUTSIDE_MSS)
    down = TCPConnection(world.inside, 40000, world.outside.ip, 80, mss=_INSIDE_MSS)
    flows = _setup_datagram_flows(world)
    down.connect()
    settled = _await_handshakes(world, [down_listener])

    if oracle.expect(bool(down_listener.connections),
                     "tcp-stream", "download handshake never completed"):
        down_listener.connections[0].send_bulk(down_bytes)
        world.topo.run(until=settled + 10.0)
        oracle.check_tcp_stream("download", down_bytes, down)
    _check_datagram_flows(world, oracle, flows)
    _check_common(world, oracle)
    return {
        "downloaded": down.bytes_delivered,
        "delivered_in": len(flows["received_in"]),
        "delivered_out": len(flows["received_out"]),
    }


def _run_pmtud(world: ChaosWorld, oracle: InvariantOracle) -> Dict[str, object]:
    FPmtudDaemon(world.outside)
    prober = FPmtudProber(world.inside, src_port=PROBER_PORT)
    results: list = []
    attempts = [0]
    max_attempts = 5

    def launch() -> None:
        attempts[0] += 1
        prober.probe(world.outside.ip, _IMTU, results.append,
                     timeout=0.8, on_timeout=on_timeout)

    def on_timeout() -> None:
        if attempts[0] < max_attempts and not results:
            launch()

    launch()
    world.topo.run(until=6.0)

    true_min = min(_EMTU, world.mid_mtu or _EMTU)
    oracle.check_pmtud(results, true_min)
    oracle.check_gateway_stats(world.gateway)
    if world.monitor is not None:
        oracle.check_recovery(world.monitor)
    if world.obs is not None:
        oracle.check_registry(world.obs.registry, world.gateway)
        if world.obs.spans is not None:
            oracle.check_spans(world.obs.spans, world.gateway)
    oracle.check_segment_sizes(world.taps["ext_in"], _EMTU)
    oracle.check_segment_sizes(world.taps["far_in"], world.mid_mtu or _EMTU)
    return {
        "attempts": attempts[0],
        "pmtu": results[-1].pmtu if results else None,
        "bottleneck": world.mid_mtu,
    }


_WORKLOADS: Dict[str, Callable[[ChaosWorld, InvariantOracle], Dict[str, object]]] = {
    "tcp": _run_tcp,
    "caravan": _run_caravan,
    "mixed": _run_mixed,
    "pmtud": _run_pmtud,
}


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenario(
    profile: str,
    seed: int,
    plan: Optional[FaultPlan] = None,
    mutate: Optional[Callable[[ChaosWorld], None]] = None,
) -> ScenarioResult:
    """Run one seeded chaos scenario end to end.

    *plan* overrides the seed-derived schedule (used by the shrinker);
    *mutate* is applied to the built world before the workload starts
    (used to plant known-bad gateway behaviour the oracle must catch).
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r} (have {PROFILES})")
    if plan is None:
        plan = build_plan(profile, seed)
    world = build_world(profile, seed)

    for role, injector in plan.injectors(world.log).items():
        link = world.links.get(role)
        if link is None:
            # A typo'd role would otherwise silently no-op the fault.
            raise ValueError(
                f"fault plan targets unknown link role {role!r} "
                f"(this world has {sorted(world.links)})"
            )
        link.injector = injector
    apply_gateway_faults(plan, world.gateway)
    if mutate is not None:
        mutate(world)

    oracle = InvariantOracle()
    notes = _WORKLOADS[profile](world, oracle)
    if world.monitor is not None:
        notes["health"] = world.monitor.summary()
    return ScenarioResult(
        profile=profile,
        seed=seed,
        plan=plan,
        violations=list(oracle.violations),
        digest=trace_digest(world.taps.values()),
        checks_run=oracle.checks_run,
        faults_fired=world.log.faults_fired,
        notes=notes,
    )


def corpus(count: int = 56) -> "List[Tuple[str, int]]":
    """The standard (profile, seed) matrix the chaos suite runs."""
    return [(PROFILES[index % len(PROFILES)], 101 + 7 * index)
            for index in range(count)]
