"""The FaultPlan DSL: seeded, schedule-driven fault injection.

Netem-style impairment is *probabilistic*: useful for load realism,
useless for pinpointing a failing interleaving.  A :class:`FaultPlan`
is the complement — a fully deterministic schedule of faults ("drop the
3rd inbound TCP data packet", "truncate the 2nd caravan", "stall the
gateway at t=4 ms for 2 ms") that composes with
:class:`repro.sim.netem.Netem` on the same link but is replayable from
a single seed.  Every failure a chaos run finds can be reproduced
exactly and shrunk to a minimal schedule (:mod:`repro.chaos.shrink`).

Two fault families:

* **Link faults** (:class:`Fault`) act on the Nth..Nth+count-1 packets
  matching a :class:`Match` predicate as they cross one link:
  drop / duplicate / reorder / corrupt / truncate / delay.
* **Gateway faults** (:class:`GatewayFault`) hit the PXGW itself at an
  absolute time: merge-context eviction storms, on-NIC memory
  exhaustion (forcing ``hdo_fallbacks``), and worker stalls.

Semantics chosen to match real networks:

* ``corrupt`` on TCP is discarded in flight (the receiver's checksum
  would reject it) — deterministic loss the stack must recover from;
  ``corrupt`` on UDP flips a payload byte and delivers it, which the
  application layer (sealed datagrams) must detect;
* ``truncate`` shortens the payload and fixes up the IP/UDP lengths —
  the datagram-boundary violation caravans must never *cause*;
* ``reorder`` holds one packet back long enough for successors to
  overtake it, which forces the merge engines' flush-on-reorder path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..core.caravan import caravan_inner_count
from ..packet import IPProto, Packet

__all__ = [
    "Match",
    "Fault",
    "GatewayFault",
    "FaultPlan",
    "LinkInjector",
    "FaultLog",
    "apply_gateway_faults",
]

#: Valid link-fault actions.
ACTIONS = ("drop", "duplicate", "reorder", "corrupt", "truncate", "delay")
#: Valid gateway-fault kinds.
GATEWAY_KINDS = ("stall", "eviction_storm", "nic_pressure")


@dataclass(frozen=True)
class Match:
    """A flow predicate over packets crossing a link."""

    protocol: Optional[int] = None  # IPProto.TCP / IPProto.UDP / None=any
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    #: Only packets carrying at least this much L4 payload (1 excludes
    #: pure ACKs; handshake/control packets stay untouched by default).
    min_payload: int = 0
    #: Match IP fragments too (default: whole packets only).
    fragments: bool = False

    def matches(self, packet: Packet) -> bool:
        if packet.is_fragment:
            return self.fragments
        if self.protocol is not None and packet.ip.protocol != self.protocol:
            return False
        ports: Tuple[Optional[int], Optional[int]] = (None, None)
        if packet.is_tcp:
            ports = (packet.tcp.src_port, packet.tcp.dst_port)
        elif packet.is_udp:
            ports = (packet.udp.src_port, packet.udp.dst_port)
        if self.src_port is not None and ports[0] != self.src_port:
            return False
        if self.dst_port is not None and ports[1] != self.dst_port:
            return False
        if packet.l4_payload_len < self.min_payload:
            return False
        return True


@dataclass(frozen=True)
class Fault:
    """One schedule entry: an action on specific matching packets.

    The fault fires on match indices ``nth .. nth+count-1`` (1-based,
    counted per link over packets satisfying :attr:`match`), so every
    fault is exhausted after ``count`` hits and the run always reaches
    a fault-free steady state.
    """

    action: str
    link: str  # role name of the link this fault attaches to
    match: Match = field(default_factory=Match)
    nth: int = 1
    count: int = 1
    #: Hold-back for reorder/delay; offset between duplicate copies.
    delay: float = 2e-3
    #: Payload bytes to keep when truncating.
    truncate_to: int = 8

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count are 1-based and positive")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def describe(self) -> str:
        span = f"#{self.nth}" if self.count == 1 else f"#{self.nth}-{self.nth + self.count - 1}"
        return f"{self.action}@{self.link}[{span}]"


@dataclass(frozen=True)
class GatewayFault:
    """A gateway-level fault applied at an absolute simulation time."""

    kind: str
    at: float
    duration: float = 2e-3
    #: For ``eviction_storm``: merge contexts allowed during the storm.
    contexts: int = 1
    #: For ``nic_pressure``: on-NIC bytes left during the squeeze.
    nic_memory_bytes: int = 0

    def __post_init__(self):
        if self.kind not in GATEWAY_KINDS:
            raise ValueError(f"unknown gateway fault {self.kind!r}")
        if self.at < 0 or self.duration <= 0:
            raise ValueError("gateway faults need at >= 0 and duration > 0")

    def describe(self) -> str:
        return f"{self.kind}@t={self.at:g}s/{self.duration:g}s"


@dataclass
class FaultLog:
    """What an injector actually did — the oracle's loss/dup budget."""

    entries: List[Tuple[float, str, str]] = field(default_factory=list)
    #: UDP datagrams removed from the world (drops + TCP-style corrupt
    #: discards), counting a caravan as its inner datagrams.
    udp_datagrams_lost: int = 0
    #: Extra UDP datagram copies injected by duplication.
    udp_datagrams_duplicated: int = 0
    #: UDP datagrams delivered with mutated bytes (corrupt/truncate):
    #: each shows up as one missing original plus one unmatched arrival.
    udp_datagrams_mutated: int = 0
    tcp_packets_dropped: int = 0
    faults_fired: int = 0

    def note(self, now: float, action: str, packet: Packet) -> None:
        self.faults_fired += 1
        self.entries.append((now, action, repr(packet)))


class LinkInjector:
    """Deterministic per-link fault applicator (Link.injector protocol).

    Keeps one match counter per fault, so the schedule depends only on
    the packet order the deterministic simulator produces.
    """

    def __init__(self, faults: List[Fault], log: Optional[FaultLog] = None):
        self.faults = list(faults)
        self.log = log if log is not None else FaultLog()
        self._seen = [0] * len(self.faults)

    # ------------------------------------------------------------------
    def apply(self, packet: Packet, now: float) -> List[Tuple[Packet, float]]:
        """Decide the fate of one packet; called by the Link."""
        for index, fault in enumerate(self.faults):
            if not fault.match.matches(packet):
                continue
            self._seen[index] += 1
            position = self._seen[index]
            if position < fault.nth or position >= fault.nth + fault.count:
                continue
            return self._fire(fault, packet, now)
        return [(packet, 0.0)]

    # ------------------------------------------------------------------
    def _fire(self, fault: Fault, packet: Packet, now: float) -> List[Tuple[Packet, float]]:
        log = self.log
        log.note(now, fault.describe(), packet)
        if fault.action == "drop":
            self._account_removed(packet)
            return []
        if fault.action == "duplicate":
            if packet.is_udp:
                log.udp_datagrams_duplicated += caravan_inner_count(packet)
            return [(packet, 0.0), (packet.copy(), fault.delay)]
        if fault.action == "reorder" or fault.action == "delay":
            return [(packet, fault.delay)]
        if fault.action == "corrupt":
            if packet.is_udp and packet.payload:
                mutated = packet.copy()
                flipped = bytearray(mutated.payload)
                flipped[0] ^= 0xFF
                mutated.payload = bytes(flipped)
                mutated.meta["chaos_corrupted"] = True
                log.udp_datagrams_mutated += caravan_inner_count(packet)
                return [(mutated, 0.0)]
            # TCP (or empty payload): the receiver checksum would reject
            # it, so corruption manifests as in-flight loss.
            self._account_removed(packet)
            return []
        if fault.action == "truncate":
            return [(self._truncate(fault, packet), 0.0)]
        raise AssertionError(f"unhandled action {fault.action}")  # pragma: no cover

    def _account_removed(self, packet: Packet) -> None:
        if packet.is_udp:
            self.log.udp_datagrams_lost += caravan_inner_count(packet)
        elif packet.is_tcp:
            self.log.tcp_packets_dropped += 1
        elif packet.is_fragment:
            # Conservatively assume the fragment carried (part of) one
            # datagram; losing any fragment loses the whole datagram.
            self.log.udp_datagrams_lost += 1

    def _truncate(self, fault: Fault, packet: Packet) -> Packet:
        keep = min(fault.truncate_to, len(packet.payload))
        if keep == len(packet.payload):
            return packet
        # Account *before* mutating: the original datagrams vanish.
        if packet.is_udp:
            self.log.udp_datagrams_mutated += caravan_inner_count(packet)
        elif packet.is_fragment:
            self.log.udp_datagrams_lost += 1
        mutated = packet.copy()
        mutated.payload = packet.payload[:keep]
        mutated.meta["chaos_truncated"] = True
        if mutated.is_udp:
            mutated.udp.length = 8 + keep
        mutated.ip.total_length = (
            mutated.ip.header_len + mutated.l4_header_len + keep
        )
        return mutated


@dataclass
class FaultPlan:
    """A complete, replayable fault schedule for one scenario."""

    link_faults: List[Fault] = field(default_factory=list)
    gateway_faults: List[GatewayFault] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.link_faults) + len(self.gateway_faults)

    def describe(self) -> str:
        parts = [fault.describe() for fault in self.link_faults]
        parts += [fault.describe() for fault in self.gateway_faults]
        return " + ".join(parts) if parts else "(no faults)"

    def injectors(self, log: Optional[FaultLog] = None) -> "Dict[str, LinkInjector]":
        """Fresh per-link injectors (counters reset), sharing one log."""
        log = log if log is not None else FaultLog()
        by_link: Dict[str, List[Fault]] = {}
        for fault in self.link_faults:
            by_link.setdefault(fault.link, []).append(fault)
        return {link: LinkInjector(faults, log) for link, faults in by_link.items()}

    def without(self, index: int) -> "FaultPlan":
        """A copy with the index-th fault (links first, then gateway) removed."""
        links = list(self.link_faults)
        gateways = list(self.gateway_faults)
        if index < len(links):
            del links[index]
        else:
            del gateways[index - len(links)]
        return replace(self, link_faults=links, gateway_faults=gateways)

    def subset(self, keep: List[int]) -> "FaultPlan":
        """A copy retaining only the faults at the given indices."""
        merged = list(self.link_faults) + list(self.gateway_faults)
        chosen = [merged[i] for i in sorted(set(keep)) if 0 <= i < len(merged)]
        return FaultPlan(
            link_faults=[f for f in chosen if isinstance(f, Fault)],
            gateway_faults=[f for f in chosen if isinstance(f, GatewayFault)],
        )


def apply_gateway_faults(plan: FaultPlan, gateway) -> None:
    """Schedule the plan's gateway faults onto *gateway*'s simulator."""
    sim = gateway.sim
    worker = gateway.worker

    def start_eviction_storm(fault: GatewayFault) -> None:
        saved = (worker.merge.max_contexts, worker.caravan_merge.max_contexts)
        worker.merge.max_contexts = fault.contexts
        worker.caravan_merge.max_contexts = fault.contexts

        def restore():
            worker.merge.max_contexts, worker.caravan_merge.max_contexts = saved

        sim.schedule(fault.duration, restore)

    def start_nic_pressure(fault: GatewayFault) -> None:
        saved = worker.nic_memory_bytes
        worker.nic_memory_bytes = fault.nic_memory_bytes

        def restore():
            worker.nic_memory_bytes = saved

        sim.schedule(fault.duration, restore)

    for fault in plan.gateway_faults:
        if fault.kind == "stall":
            sim.schedule_at(fault.at, gateway.stall, fault.duration)
        elif fault.kind == "eviction_storm":
            sim.schedule_at(fault.at, start_eviction_storm, fault)
        elif fault.kind == "nic_pressure":
            sim.schedule_at(fault.at, start_nic_pressure, fault)


# Re-export for Match construction convenience.
TCP = IPProto.TCP
UDP = IPProto.UDP
