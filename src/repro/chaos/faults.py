"""The FaultPlan DSL: seeded, schedule-driven fault injection.

Netem-style impairment is *probabilistic*: useful for load realism,
useless for pinpointing a failing interleaving.  A :class:`FaultPlan`
is the complement — a fully deterministic schedule of faults ("drop the
3rd inbound TCP data packet", "truncate the 2nd caravan", "stall the
gateway at t=4 ms for 2 ms") that composes with
:class:`repro.sim.netem.Netem` on the same link but is replayable from
a single seed.  Every failure a chaos run finds can be reproduced
exactly and shrunk to a minimal schedule (:mod:`repro.chaos.shrink`).

Three fault families:

* **Link faults** (:class:`Fault`) act on the Nth..Nth+count-1 packets
  matching a :class:`Match` predicate as they cross one link:
  drop / duplicate / reorder / corrupt / truncate / delay.
* **Gateway faults** (:class:`GatewayFault`) hit the PXGW itself at an
  absolute time: merge-context eviction storms, on-NIC memory
  exhaustion (forcing ``hdo_fallbacks``), and worker stalls.
* **Attack faults** (:class:`AttackFault`) model an *adversary* rather
  than an unreliable network: off-path forged F-PMTUD reports, forged
  ICMP packet-too-big, spoofed PLPMTUD acks (all injected from an
  attacker host at absolute times), and a lying on-path report daemon
  (:class:`LyingDaemonInjector` rewriting genuine fragment reports).
  Scheduling them onto a world is done by
  :func:`repro.chaos.attacks.apply_attack_faults`.

Semantics chosen to match real networks:

* ``corrupt`` on TCP is discarded in flight (the receiver's checksum
  would reject it) — deterministic loss the stack must recover from;
  ``corrupt`` on UDP flips a payload byte and delivers it, which the
  application layer (sealed datagrams) must detect;
* ``truncate`` shortens the payload and fixes up the IP/UDP lengths —
  the datagram-boundary violation caravans must never *cause*;
* ``reorder`` holds one packet back long enough for successors to
  overtake it, which forces the merge engines' flush-on-reorder path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..core.caravan import caravan_inner_count
from ..packet import IPProto, Packet

__all__ = [
    "Match",
    "Fault",
    "GatewayFault",
    "AttackFault",
    "FaultPlan",
    "LinkInjector",
    "LyingDaemonInjector",
    "FaultLog",
    "apply_gateway_faults",
    "ATTACK_KINDS",
]

#: Valid link-fault actions.
ACTIONS = ("drop", "duplicate", "reorder", "corrupt", "truncate", "delay")
#: Valid gateway-fault kinds.
GATEWAY_KINDS = ("stall", "eviction_storm", "nic_pressure")
#: Valid attacker-model kinds.
ATTACK_KINDS = ("forged_report", "forged_ptb", "forged_echo_ack", "lying_daemon")


@dataclass(frozen=True)
class Match:
    """A flow predicate over packets crossing a link."""

    protocol: Optional[int] = None  # IPProto.TCP / IPProto.UDP / None=any
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    #: Only packets carrying at least this much L4 payload (1 excludes
    #: pure ACKs; handshake/control packets stay untouched by default).
    min_payload: int = 0
    #: Match IP fragments too (default: whole packets only).
    fragments: bool = False

    def matches(self, packet: Packet) -> bool:
        if packet.is_fragment:
            return self.fragments
        if self.protocol is not None and packet.ip.protocol != self.protocol:
            return False
        ports: Tuple[Optional[int], Optional[int]] = (None, None)
        if packet.is_tcp:
            ports = (packet.tcp.src_port, packet.tcp.dst_port)
        elif packet.is_udp:
            ports = (packet.udp.src_port, packet.udp.dst_port)
        if self.src_port is not None and ports[0] != self.src_port:
            return False
        if self.dst_port is not None and ports[1] != self.dst_port:
            return False
        if packet.l4_payload_len < self.min_payload:
            return False
        return True


@dataclass(frozen=True)
class Fault:
    """One schedule entry: an action on specific matching packets.

    The fault fires on match indices ``nth .. nth+count-1`` (1-based,
    counted per link over packets satisfying :attr:`match`), so every
    fault is exhausted after ``count`` hits and the run always reaches
    a fault-free steady state.
    """

    action: str
    link: str  # role name of the link this fault attaches to
    match: Match = field(default_factory=Match)
    nth: int = 1
    count: int = 1
    #: Hold-back for reorder/delay; offset between duplicate copies.
    delay: float = 2e-3
    #: Payload bytes to keep when truncating.
    truncate_to: int = 8

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count are 1-based and positive")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def describe(self) -> str:
        span = f"#{self.nth}" if self.count == 1 else f"#{self.nth}-{self.nth + self.count - 1}"
        return f"{self.action}@{self.link}[{span}]"


@dataclass(frozen=True)
class GatewayFault:
    """A gateway-level fault applied at an absolute simulation time."""

    kind: str
    at: float
    duration: float = 2e-3
    #: For ``eviction_storm``: merge contexts allowed during the storm.
    contexts: int = 1
    #: For ``nic_pressure``: on-NIC bytes left during the squeeze.
    nic_memory_bytes: int = 0

    def __post_init__(self):
        if self.kind not in GATEWAY_KINDS:
            raise ValueError(f"unknown gateway fault {self.kind!r}")
        if self.at < 0 or self.duration <= 0:
            raise ValueError("gateway faults need at >= 0 and duration > 0")

    def describe(self) -> str:
        return f"{self.kind}@t={self.at:g}s/{self.duration:g}s"


@dataclass(frozen=True)
class AttackFault:
    """One adversarial action against the PMTUD control plane.

    Kinds (all deterministic; timing and repetition are explicit):

    * ``forged_report`` — off-path spoofed F-PMTUD fragment reports,
      claiming a single fragment of ``mtu`` bytes, sprayed over probe
      ids ``id_base .. id_base+id_span-1`` (guessing a sequential-id
      prober) in ``count`` bursts ``interval`` apart;
    * ``forged_ptb`` — off-path spoofed ICMP fragmentation-needed with
      next-hop MTU ``mtu``, quoting the 4-tuple in :attr:`flow`;
    * ``forged_echo_ack`` — spoofed PLPMTUD/classical probe acks over
      the same guessed id range;
    * ``lying_daemon`` — on-path rewrite of *genuine* fragment reports
      crossing :attr:`link` to claim ``mtu``-byte fragments
      (:class:`LyingDaemonInjector`).

    ``target`` / ``spoof`` are world role names ("victim", "neighbor",
    "server", ...) resolved by :func:`repro.chaos.attacks.apply_attack_faults`;
    keeping roles rather than addresses makes plans world-independent
    and therefore replayable/shrinkable like every other fault.
    """

    kind: str
    at: float = 0.0
    count: int = 1
    interval: float = 1e-3
    #: The MTU/fragment-size lie, in bytes.
    mtu: int = 296
    #: First probe id to guess (sequential-id probers start at 1).
    id_base: int = 1
    #: How many consecutive ids each burst covers.
    id_span: int = 1
    #: For ``lying_daemon``: the link role whose reports are rewritten.
    link: str = ""
    #: For ``forged_ptb``: the quoted flow as role names
    #: (src_role, src_port, dst_role, dst_port).
    flow: Optional[Tuple[str, int, str, int]] = None
    #: Role receiving the forged message.
    target: str = "victim"
    #: Role whose address the forged message claims to come from.
    spoof: str = "server"
    #: Destination port of forged UDP (prober/searcher source port).
    target_port: int = 0

    def __post_init__(self):
        if self.kind not in ATTACK_KINDS:
            raise ValueError(f"unknown attack kind {self.kind!r}")
        if self.at < 0 or self.count < 1 or self.interval < 0:
            raise ValueError("attacks need at >= 0, count >= 1, interval >= 0")
        if self.kind == "lying_daemon" and not self.link:
            raise ValueError("lying_daemon attacks need a link role")
        if self.kind == "forged_ptb" and self.flow is None:
            raise ValueError("forged_ptb attacks need a quoted flow")

    def describe(self) -> str:
        times = "" if self.count == 1 else f"x{self.count}"
        where = f"@{self.link}" if self.kind == "lying_daemon" else f"->{self.target}"
        return f"{self.kind}({self.mtu}){where}@t={self.at:g}s{times}"


@dataclass
class FaultLog:
    """What an injector actually did — the oracle's loss/dup budget."""

    entries: List[Tuple[float, str, str]] = field(default_factory=list)
    #: UDP datagrams removed from the world (drops + TCP-style corrupt
    #: discards), counting a caravan as its inner datagrams.
    udp_datagrams_lost: int = 0
    #: Extra UDP datagram copies injected by duplication.
    udp_datagrams_duplicated: int = 0
    #: UDP datagrams delivered with mutated bytes (corrupt/truncate):
    #: each shows up as one missing original plus one unmatched arrival.
    udp_datagrams_mutated: int = 0
    tcp_packets_dropped: int = 0
    faults_fired: int = 0

    def note(self, now: float, action: str, packet: Packet) -> None:
        self.faults_fired += 1
        self.entries.append((now, action, repr(packet)))


class LinkInjector:
    """Deterministic per-link fault applicator (Link.injector protocol).

    Keeps one match counter per fault, so the schedule depends only on
    the packet order the deterministic simulator produces.
    """

    def __init__(self, faults: List[Fault], log: Optional[FaultLog] = None):
        self.faults = list(faults)
        self.log = log if log is not None else FaultLog()
        self._seen = [0] * len(self.faults)

    # ------------------------------------------------------------------
    def apply(self, packet: Packet, now: float) -> List[Tuple[Packet, float]]:
        """Decide the fate of one packet; called by the Link."""
        for index, fault in enumerate(self.faults):
            if not fault.match.matches(packet):
                continue
            self._seen[index] += 1
            position = self._seen[index]
            if position < fault.nth or position >= fault.nth + fault.count:
                continue
            return self._fire(fault, packet, now)
        return [(packet, 0.0)]

    # ------------------------------------------------------------------
    def _fire(self, fault: Fault, packet: Packet, now: float) -> List[Tuple[Packet, float]]:
        log = self.log
        log.note(now, fault.describe(), packet)
        if fault.action == "drop":
            self._account_removed(packet)
            return []
        if fault.action == "duplicate":
            if packet.is_udp:
                log.udp_datagrams_duplicated += caravan_inner_count(packet)
            return [(packet, 0.0), (packet.copy(), fault.delay)]
        if fault.action == "reorder" or fault.action == "delay":
            return [(packet, fault.delay)]
        if fault.action == "corrupt":
            if packet.is_udp and packet.payload:
                mutated = packet.copy()
                flipped = bytearray(mutated.payload)
                flipped[0] ^= 0xFF
                mutated.payload = bytes(flipped)
                mutated.meta["chaos_corrupted"] = True
                log.udp_datagrams_mutated += caravan_inner_count(packet)
                return [(mutated, 0.0)]
            # TCP (or empty payload): the receiver checksum would reject
            # it, so corruption manifests as in-flight loss.
            self._account_removed(packet)
            return []
        if fault.action == "truncate":
            return [(self._truncate(fault, packet), 0.0)]
        raise AssertionError(f"unhandled action {fault.action}")  # pragma: no cover

    def _account_removed(self, packet: Packet) -> None:
        if packet.is_udp:
            self.log.udp_datagrams_lost += caravan_inner_count(packet)
        elif packet.is_tcp:
            self.log.tcp_packets_dropped += 1
        elif packet.is_fragment:
            # Conservatively assume the fragment carried (part of) one
            # datagram; losing any fragment loses the whole datagram.
            self.log.udp_datagrams_lost += 1

    def _truncate(self, fault: Fault, packet: Packet) -> Packet:
        keep = min(fault.truncate_to, len(packet.payload))
        if keep == len(packet.payload):
            return packet
        # Account *before* mutating: the original datagrams vanish.
        if packet.is_udp:
            self.log.udp_datagrams_mutated += caravan_inner_count(packet)
        elif packet.is_fragment:
            self.log.udp_datagrams_lost += 1
        mutated = packet.copy()
        mutated.payload = packet.payload[:keep]
        mutated.meta["chaos_truncated"] = True
        if mutated.is_udp:
            mutated.udp.length = 8 + keep
        mutated.ip.total_length = (
            mutated.ip.header_len + mutated.l4_header_len + keep
        )
        return mutated


class LyingDaemonInjector:
    """An on-path adversary rewriting genuine F-PMTUD reports.

    Unlike the off-path forgers, this model has the real probe id in
    hand (it reads it off the wire), so per-probe nonces cannot help —
    only the prober's plausible-PMTU bounds can.  Every matching
    report's fragment-size list is rewritten to a single ``claim``-byte
    fragment, with the UDP/IP lengths fixed up so the packet stays
    well-formed (same idiom as ``truncate``).
    """

    def __init__(self, claim: int, report_port: int,
                 log: Optional[FaultLog] = None):
        self.claim = claim
        self.report_port = report_port
        self.log = log if log is not None else FaultLog()
        self.rewritten = 0

    def apply(self, packet: Packet, now: float) -> List[Tuple[Packet, float]]:
        from ..pmtud.fpmtud import _pack_report, _parse_report

        if not packet.is_udp or packet.udp.dst_port != self.report_port:
            return [(packet, 0.0)]
        parsed = _parse_report(packet.payload)
        if parsed is None:
            return [(packet, 0.0)]
        probe_id, _sizes = parsed
        mutated = packet.copy()
        mutated.payload = _pack_report(probe_id, [self.claim])
        mutated.udp.length = 8 + len(mutated.payload)
        mutated.ip.total_length = (
            mutated.ip.header_len + mutated.l4_header_len + len(mutated.payload)
        )
        self.rewritten += 1
        self.log.note(now, f"lying_daemon({self.claim})", packet)
        return [(mutated, 0.0)]


@dataclass
class FaultPlan:
    """A complete, replayable fault schedule for one scenario."""

    link_faults: List[Fault] = field(default_factory=list)
    gateway_faults: List[GatewayFault] = field(default_factory=list)
    attack_faults: List[AttackFault] = field(default_factory=list)

    def __len__(self) -> int:
        return (len(self.link_faults) + len(self.gateway_faults)
                + len(self.attack_faults))

    def describe(self) -> str:
        parts = [fault.describe() for fault in self.link_faults]
        parts += [fault.describe() for fault in self.gateway_faults]
        parts += [fault.describe() for fault in self.attack_faults]
        return " + ".join(parts) if parts else "(no faults)"

    def injectors(self, log: Optional[FaultLog] = None) -> "Dict[str, LinkInjector]":
        """Fresh per-link injectors (counters reset), sharing one log."""
        log = log if log is not None else FaultLog()
        by_link: Dict[str, List[Fault]] = {}
        for fault in self.link_faults:
            by_link.setdefault(fault.link, []).append(fault)
        return {link: LinkInjector(faults, log) for link, faults in by_link.items()}

    def without(self, index: int) -> "FaultPlan":
        """A copy with the index-th fault removed (links, then gateway,
        then attacks)."""
        links = list(self.link_faults)
        gateways = list(self.gateway_faults)
        attacks = list(self.attack_faults)
        if index < len(links):
            del links[index]
        elif index < len(links) + len(gateways):
            del gateways[index - len(links)]
        else:
            del attacks[index - len(links) - len(gateways)]
        return replace(self, link_faults=links, gateway_faults=gateways,
                       attack_faults=attacks)

    def subset(self, keep: List[int]) -> "FaultPlan":
        """A copy retaining only the faults at the given indices."""
        merged = (list(self.link_faults) + list(self.gateway_faults)
                  + list(self.attack_faults))
        chosen = [merged[i] for i in sorted(set(keep)) if 0 <= i < len(merged)]
        return FaultPlan(
            link_faults=[f for f in chosen if isinstance(f, Fault)],
            gateway_faults=[f for f in chosen if isinstance(f, GatewayFault)],
            attack_faults=[f for f in chosen if isinstance(f, AttackFault)],
        )


def apply_gateway_faults(plan: FaultPlan, gateway) -> None:
    """Schedule the plan's gateway faults onto *gateway*'s simulator."""
    sim = gateway.sim
    worker = gateway.worker

    def start_eviction_storm(fault: GatewayFault) -> None:
        saved = (worker.merge.max_contexts, worker.caravan_merge.max_contexts)
        worker.merge.max_contexts = fault.contexts
        worker.caravan_merge.max_contexts = fault.contexts

        def restore():
            worker.merge.max_contexts, worker.caravan_merge.max_contexts = saved

        sim.schedule(fault.duration, restore)

    def start_nic_pressure(fault: GatewayFault) -> None:
        saved = worker.nic_memory_bytes
        worker.nic_memory_bytes = fault.nic_memory_bytes

        def restore():
            worker.nic_memory_bytes = saved

        sim.schedule(fault.duration, restore)

    for fault in plan.gateway_faults:
        if fault.kind == "stall":
            sim.schedule_at(fault.at, gateway.stall, fault.duration)
        elif fault.kind == "eviction_storm":
            sim.schedule_at(fault.at, start_eviction_storm, fault)
        elif fault.kind == "nic_pressure":
            sim.schedule_at(fault.at, start_nic_pressure, fault)


# Re-export for Match construction convenience.
TCP = IPProto.TCP
UDP = IPProto.UDP
