"""The invariant oracle: end-to-end correctness checks under faults.

The oracle observes packets at four points — sender TX, gateway
ingress, gateway egress, receiver RX — via link taps
(:class:`ChaosTap`), plus the application-level send/receive records a
scenario keeps, and asserts the properties an MTU-translating gateway
must never violate *no matter what the network does*:

1. **TCP byte-stream transparency** — every connection delivers exactly
   the bytes the sender queued, in order (the stack only advances
   ``bytes_delivered`` in sequence, so count equality == stream
   equality in the zero-filled-payload model).
2. **Datagram-boundary preservation** — caravans never invent, lose,
   or re-slice a datagram beyond what the injected faults account for.
3. **MSS discipline** — no TCP segment on an external link ever
   exceeds the clamped MSS; nothing on any link exceeds its MTU.
4. **Counter conservation** — ``GatewayStats`` balances: payload in ==
   payload out + still-buffered (+ discarded-as-malformed for UDP).
5. **Bounded recovery** — the resilience health monitor ends the run
   back in HEALTHY, and every degradation excursion closes within a
   bounded window of opening.
6. **F-PMTUD convergence** — the prober's estimate lands within the
   8-byte fragment-alignment band below the true path minimum.

Canonical packet summaries *exclude* ``ip.identification``: the IP-ID
allocator is process-global, so absolute IDs differ between runs in one
process even though behaviour (which keys on consecutive-ID deltas) is
identical.  Everything else goes into the trace digest.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..packet import Packet

__all__ = [
    "ChaosTap",
    "InvariantOracle",
    "summarize_packet",
    "trace_digest",
]


def summarize_packet(packet: Packet) -> tuple:
    """A canonical, run-stable description of one packet.

    Deliberately excludes ``ip.identification`` (process-global counter)
    and absolute payload bytes of caravans (which embed IP IDs); keeps
    everything behaviourally relevant: addressing, flags, lengths, TCP
    sequence space, and chaos mutation marks.
    """
    ip = packet.ip
    base = (
        ip.protocol,
        ip.src,
        ip.dst,
        packet.total_len,
        ip.tos,
        int(ip.dont_fragment),
        int(ip.more_fragments),
        ip.fragment_offset,
    )
    marks = tuple(sorted(k for k in packet.meta if k.startswith("chaos_")))
    if packet.is_fragment:
        return base + ("frag", len(packet.payload)) + marks
    if packet.is_tcp:
        tcp = packet.tcp
        return base + (
            "tcp",
            tcp.src_port,
            tcp.dst_port,
            tcp.seq,
            tcp.ack,
            tcp.flags,
            len(packet.payload),
        ) + marks
    if packet.is_udp:
        udp = packet.udp
        return base + ("udp", udp.src_port, udp.dst_port, len(packet.payload)) + marks
    return base + ("other",) + marks


def _interval_add(intervals: List[List[int]], lo: int, hi: int) -> None:
    """Insert [lo, hi) into a sorted list of disjoint intervals."""
    merged: List[List[int]] = []
    placed = False
    for start, stop in intervals:
        if stop < lo or start > hi:
            if start > hi and not placed:
                merged.append([lo, hi])
                placed = True
            merged.append([start, stop])
        else:
            lo = min(lo, start)
            hi = max(hi, stop)
    if not placed:
        merged.append([lo, hi])
    merged.sort()
    intervals[:] = merged


def _interval_contains(intervals: List[List[int]], lo: int, hi: int) -> bool:
    """True when [lo, hi) is fully inside one recorded interval."""
    for start, stop in intervals:
        if start <= lo and hi <= stop:
            return True
    return False


class ChaosTap:
    """A link tap recording canonical events at one observation point."""

    def __init__(self, point: str):
        self.point = point
        self.events: List[Tuple[float, str, tuple]] = []

    def __call__(self, event: str, packet: Packet, now: float) -> None:
        self.events.append((round(now, 9), event, summarize_packet(packet)))

    def packets(self, event: str = "rx") -> List[tuple]:
        """Summaries of packets that produced *event* at this point."""
        return [summary for _, kind, summary in self.events if kind == event]


def trace_digest(taps: "Iterable[ChaosTap]") -> str:
    """A sha256 over every tap's event stream — the replay fingerprint."""
    digest = hashlib.sha256()
    for tap in sorted(taps, key=lambda t: t.point):
        digest.update(tap.point.encode())
        for time, event, summary in tap.events:
            digest.update(repr((time, event, summary)).encode())
    return digest.hexdigest()


class InvariantOracle:
    """Collects invariant violations from one chaos scenario."""

    def __init__(self):
        self.violations: List[str] = []
        self.checks_run = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def expect(self, condition: bool, invariant: str, detail: str) -> bool:
        self.checks_run += 1
        if not condition:
            self.violations.append(f"{invariant}: {detail}")
        return condition

    # ------------------------------------------------------------------
    # 1. TCP byte-stream transparency
    # ------------------------------------------------------------------
    def check_tcp_stream(self, name: str, sent_bytes: int, connection) -> None:
        """The receiver must deliver exactly what the sender queued.

        ``TCPConnection`` only advances ``bytes_delivered`` for in-order
        data at ``rcv_nxt``, so delivered-count equality implies both
        stream equality and in-order delivery.
        """
        self.expect(
            connection.bytes_delivered == sent_bytes,
            "tcp-stream",
            f"{name}: delivered {connection.bytes_delivered} of {sent_bytes} bytes",
        )
        self.expect(
            connection.bytes_delivered <= sent_bytes,
            "tcp-stream",
            f"{name}: delivered MORE than sent "
            f"({connection.bytes_delivered} > {sent_bytes}) — bytes invented",
        )

    def check_tcp_seq_coverage(self, ingress: "ChaosTap", egress: "ChaosTap") -> None:
        """The gateway must never emit a TCP byte it has not yet received.

        Replays the two taps in time order and checks that every data
        segment leaving the gateway covers a sequence range already
        ingressed for that flow.  The correct merge engine only ever
        re-segments contiguous received bytes, so this holds under any
        fault schedule; a merge engine that papers over a sequence gap
        (e.g. appending an out-of-order packet as if it were in order)
        emits bytes for a hole it never received and is caught here —
        even though the zero-filled payload model makes the final byte
        *counts* come out right once retransmission heals the stream.
        """
        events: List[Tuple[float, int, tuple]] = []
        for time, kind, summary in ingress.events:
            if kind == "rx" and "tcp" in summary:
                events.append((time, 0, summary))
        for time, kind, summary in egress.events:
            if kind == "tx" and "tcp" in summary:
                events.append((time, 1, summary))
        # At equal timestamps the gateway ingests before it emits.
        events.sort(key=lambda entry: (entry[0], entry[1]))

        received: Dict[tuple, List[List[int]]] = {}
        for time, phase, summary in events:
            anchor = summary.index("tcp")
            src_port, dst_port, seq, _ack, _flags, payload_len = summary[
                anchor + 1 : anchor + 7
            ]
            if payload_len == 0:
                continue
            flow = (summary[1], summary[2], src_port, dst_port)
            lo, hi = seq, seq + payload_len
            if phase == 0:
                _interval_add(received.setdefault(flow, []), lo, hi)
            else:
                self.expect(
                    _interval_contains(received.get(flow, []), lo, hi),
                    "tcp-seq-coverage",
                    f"{egress.point}: flow {flow} emitted seq [{lo}, {hi}) "
                    f"at t={time} before receiving it "
                    f"(received so far: {received.get(flow, [])})",
                )

    # ------------------------------------------------------------------
    # 2. Datagram-boundary preservation
    # ------------------------------------------------------------------
    def check_datagram_flow(
        self,
        name: str,
        sent: "Sequence[bytes]",
        received: "Sequence[bytes]",
        loss_budget: int = 0,
        dup_budget: int = 0,
        mutation_budget: int = 0,
    ) -> None:
        """Received datagrams must be exactly the sent ones, modulo the
        injected-fault budgets.

        * a datagram missing beyond ``loss_budget + mutation_budget``
          means the gateway *lost* one;
        * an unexpected payload beyond ``mutation_budget`` means the
          gateway *invented or re-sliced* one (boundary violation);
        * a surplus copy beyond ``dup_budget`` means it *duplicated* one.
        """
        sent_counts = Counter(sent)
        recv_counts = Counter(received)
        missing = sum((sent_counts - recv_counts).values())
        surplus = recv_counts - sent_counts
        invented = sum(count for payload, count in surplus.items() if payload not in sent_counts)
        duplicated = sum(count for payload, count in surplus.items() if payload in sent_counts)
        self.expect(
            missing <= loss_budget + mutation_budget,
            "datagram-boundary",
            f"{name}: {missing} datagram(s) missing but faults only "
            f"account for {loss_budget + mutation_budget}",
        )
        self.expect(
            invented <= mutation_budget,
            "datagram-boundary",
            f"{name}: {invented} datagram(s) invented/re-sliced "
            f"(mutation budget {mutation_budget})",
        )
        self.expect(
            duplicated <= dup_budget,
            "datagram-boundary",
            f"{name}: {duplicated} surplus copy(ies) (duplicate budget {dup_budget})",
        )

    # ------------------------------------------------------------------
    # 3. MSS / MTU discipline
    # ------------------------------------------------------------------
    def check_segment_sizes(
        self,
        tap: ChaosTap,
        mtu: int,
        max_tcp_payload: Optional[int] = None,
    ) -> None:
        """Nothing delivered by a link may exceed its MTU, and TCP data
        segments must respect the clamped MSS on that link."""
        for summary in tap.packets("rx"):
            total_len = summary[3]
            self.expect(
                total_len <= mtu,
                "mtu",
                f"{tap.point}: {total_len} B packet on an {mtu} B link",
            )
            if max_tcp_payload is not None and "tcp" in summary:
                payload_len = summary[summary.index("tcp") + 6]
                self.expect(
                    payload_len <= max_tcp_payload,
                    "mss-clamp",
                    f"{tap.point}: TCP payload {payload_len} B exceeds "
                    f"negotiated MSS {max_tcp_payload} B",
                )

    # ------------------------------------------------------------------
    # 4. Gateway counter conservation
    # ------------------------------------------------------------------
    def check_gateway_stats(self, gateway) -> None:
        """``GatewayStats`` must balance against live engine buffers."""
        worker = gateway.worker
        stats = worker.stats
        errors = stats.conservation_errors(
            pending_tcp_bytes=worker.merge.pending_bytes(),
            pending_datagrams=worker.caravan_merge.pending_packets(),
        )
        self.expect(
            not errors,
            "stats-conservation",
            f"{gateway.name}: imbalance {errors} "
            f"(in={stats.tcp_payload_in}/{stats.udp_datagrams_in} "
            f"out={stats.tcp_payload_out}/{stats.udp_datagrams_out})",
        )
        self.expect(
            0.0 <= stats.conversion_yield <= 1.0,
            "stats-conservation",
            f"{gateway.name}: conversion_yield {stats.conversion_yield} out of range",
        )
        self.expect(
            stats.inbound_full_packets <= stats.inbound_data_packets,
            "stats-conservation",
            f"{gateway.name}: full packets {stats.inbound_full_packets} "
            f"> data packets {stats.inbound_data_packets}",
        )

    # ------------------------------------------------------------------
    # 4b. Registry reconciliation: exports must match the live stats
    # ------------------------------------------------------------------
    def check_registry(self, registry, gateway) -> None:
        """A scraped metrics registry must agree with the live gateway.

        Two layers: (a) the exported packet counters equal the
        ``GatewayStats`` values the conservation check audits — a
        collector reading the wrong worker (e.g. a retired one after
        failover) fails here; (b) the conservation identity holds using
        *exported series alone*, so a metrics consumer sees a balanced
        gateway without access to internals.
        """
        snapshot = registry.snapshot()
        worker = gateway.worker
        stats = worker.stats
        suffix = f'{{gateway="{gateway.name}"}}'

        def series(name: str, **labels) -> float:
            items = sorted(list(labels.items()) + [("gateway", gateway.name)])
            inner = ",".join(f'{key}="{value}"' for key, value in items)
            return snapshot.get(name + "{" + inner + "}", 0)

        for name, live in (
            ("px_gateway_rx_packets_total", stats.rx_packets),
            ("px_gateway_tx_packets_total", stats.tx_packets),
            ("px_gateway_merged_packets_total", stats.merged_packets),
            ("px_gateway_split_segments_total", stats.split_segments),
            ("px_gateway_caravans_built_total", stats.caravans_built),
            ("px_gateway_caravans_opened_total", stats.caravans_opened),
            ("px_gateway_malformed_caravans_total", stats.malformed_caravans),
            ("px_worker_cycles_total", worker.account.cycles),
        ):
            exported = snapshot.get(name + suffix)
            self.expect(
                exported == live,
                "registry-reconciliation",
                f"{name}{suffix} exported {exported!r}, live value {live}",
            )

        tcp_in = series("px_gateway_tcp_payload_bytes_total", direction="in")
        tcp_out = series("px_gateway_tcp_payload_bytes_total", direction="out")
        pending_bytes = snapshot.get(f"px_gateway_pending_merge_bytes{suffix}", 0)
        self.expect(
            tcp_in == tcp_out + pending_bytes,
            "registry-reconciliation",
            f"exported TCP payload imbalance: in={tcp_in} "
            f"out={tcp_out} pending={pending_bytes}",
        )
        udp_in = series("px_gateway_udp_datagrams_total", direction="in")
        udp_out = series("px_gateway_udp_datagrams_total", direction="out")
        pending_dgrams = snapshot.get(
            f"px_gateway_pending_caravan_datagrams{suffix}", 0
        )
        malformed = snapshot.get(
            f"px_gateway_udp_datagrams_malformed_total{suffix}", 0
        )
        self.expect(
            udp_in == udp_out + pending_dgrams + malformed,
            "registry-reconciliation",
            f"exported UDP datagram imbalance: in={udp_in} out={udp_out} "
            f"pending={pending_dgrams} malformed={malformed}",
        )

    # ------------------------------------------------------------------
    # 5. Span balance: every opened span must be accounted for
    # ------------------------------------------------------------------
    def check_spans(self, tracker, gateway) -> None:
        """The span tracker's conservation law and FIFO reconciliation.

        Duck-typed over :class:`repro.obs.SpanTracker`.  Three claims:

        * **balance** — ``opened == closed + dropped + open``: no span
          is ever lost or double-settled, under every fault class.
        * **no anomalies** — the tracker never saw an impossibility
          (closing an unknown span, consuming bytes or datagrams that
          were never enqueued).
        * **FIFO mirror** — the bytes/datagrams the span FIFOs believe
          are buffered equal what the live merge engines actually hold,
          so open spans correspond 1:1 to real buffered payload.
        """
        balance = tracker.balance()
        self.expect(
            balance["opened"]
            == balance["closed"] + balance["dropped"] + balance["open"],
            "span-balance",
            f"span identity broken: {balance}",
        )
        self.expect(
            tracker.anomalies == 0,
            "span-balance",
            f"span tracker saw {tracker.anomalies} accounting anomalies",
        )
        worker = gateway.worker
        self.expect(
            tracker.pending_merge_bytes() == worker.merge.pending_bytes(),
            "span-balance",
            f"merge FIFO mirror drifted: spans={tracker.pending_merge_bytes()} "
            f"engine={worker.merge.pending_bytes()}",
        )
        self.expect(
            tracker.pending_caravan_datagrams()
            == worker.caravan_merge.pending_packets(),
            "span-balance",
            f"caravan FIFO mirror drifted: "
            f"spans={tracker.pending_caravan_datagrams()} "
            f"engine={worker.caravan_merge.pending_packets()}",
        )

    # ------------------------------------------------------------------
    # 6. Recovery: degradation must be bounded and end HEALTHY
    # ------------------------------------------------------------------
    def check_recovery(self, monitor, max_excursion: float = 1.0) -> None:
        """The resilience layer must have *recovered* by scenario end.

        Duck-typed over :class:`repro.resilience.HealthMonitor`: the
        final state must be HEALTHY, and every excursion away from
        HEALTHY must have closed within *max_excursion* simulated
        seconds of opening.  Faults in the corpus all have finite hit
        counts, so unbounded degradation means the health machinery is
        stuck, not that the network is still hostile.
        """
        self.expect(
            monitor.state == "healthy",
            "recovery",
            f"gateway ended {monitor.state!r}, not healthy "
            f"(transitions: {monitor.transitions})",
        )
        for left_at, returned_at in monitor.excursions():
            if not self.expect(
                returned_at is not None,
                "recovery",
                f"excursion opened at t={left_at:.4f} never closed",
            ):
                continue
            self.expect(
                returned_at - left_at <= max_excursion,
                "recovery",
                f"excursion [{left_at:.4f}, {returned_at:.4f}] lasted "
                f"{returned_at - left_at:.4f}s (bound {max_excursion}s)",
            )

    # ------------------------------------------------------------------
    # 6. F-PMTUD convergence
    # ------------------------------------------------------------------
    def check_pmtud(self, results: "Sequence", true_min_mtu: int) -> None:
        """The final estimate must land in the fragment-alignment band
        ``[true_min - 7, true_min]`` (fragments are 8-byte aligned)."""
        if not self.expect(
            len(results) >= 1,
            "pmtud-convergence",
            f"prober produced no result (true minimum {true_min_mtu} B)",
        ):
            return
        final = results[-1].pmtu
        self.expect(
            true_min_mtu - 7 <= final <= true_min_mtu,
            "pmtud-convergence",
            f"estimate {final} B outside [{true_min_mtu - 7}, {true_min_mtu}]",
        )

    # ------------------------------------------------------------------
    # 7. PMTU sanity under attack
    # ------------------------------------------------------------------
    def check_pmtu_sanity(
        self,
        estimates: "Sequence[int]",
        true_min_mtu: int,
        link_mtu: int,
        floor: int = 576,
    ) -> None:
        """Every *accepted* PMTU estimate must be physically possible.

        A hardened endpoint never acts on a value below the plausibility
        floor or above the first-hop link MTU, and the value it finally
        settles on must not exceed the true path minimum (an inflated
        estimate blackholes every full-sized packet at the bottleneck).
        This is the oracle the adversarial teeth test points at a
        deliberately un-hardened prober: accepting a forged report must
        surface here, not silently mis-size the datapath.
        """
        for estimate in estimates:
            self.expect(
                floor <= estimate <= link_mtu,
                "pmtu-sanity",
                f"accepted estimate {estimate} B outside the plausible "
                f"band [{floor}, {link_mtu}]",
            )
        if estimates:
            final = estimates[-1]
            self.expect(
                final <= true_min_mtu,
                "pmtu-sanity",
                f"final estimate {final} B exceeds the true path minimum "
                f"{true_min_mtu} B (oversized packets will blackhole)",
            )
