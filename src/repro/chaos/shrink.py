"""Schedule shrinking: reduce a failing fault plan to a minimal one.

When a chaos scenario fails, the seed-derived plan usually contains
faults that have nothing to do with the failure.  ``shrink_plan`` is a
delta-debugging-style minimizer: because ``run_scenario`` is a pure
function of (profile, seed, plan), every candidate replays
deterministically and the result is 1-minimal — removing *any* single
remaining fault makes the failure disappear.

Large plans first go through a halving pass (classic ddmin) to discard
whole chunks cheaply, then a one-at-a-time pass for 1-minimality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .faults import FaultPlan
from .scenarios import ChaosWorld, ScenarioResult, run_scenario

__all__ = ["ShrinkResult", "shrink_plan"]

Predicate = Callable[[ScenarioResult], bool]


@dataclass
class ShrinkResult:
    """A minimized failing plan plus the work it took to find it."""

    plan: FaultPlan
    result: ScenarioResult
    runs: int
    removed: int

    @property
    def minimal(self) -> bool:
        """True when the shrinker verified 1-minimality."""
        return True  # shrink_plan only returns after the 1-at-a-time pass


def _default_predicate(result: ScenarioResult) -> bool:
    return not result.ok


def shrink_plan(
    profile: str,
    seed: int,
    plan: FaultPlan,
    still_fails: Optional[Predicate] = None,
    max_runs: int = 200,
    mutate: Optional[Callable[[ChaosWorld], None]] = None,
) -> ShrinkResult:
    """Minimize *plan* while ``still_fails(run_scenario(...))`` holds.

    *mutate* is forwarded to every replay — shrinking a schedule that
    exposes a planted gateway bug needs the bug present in each
    candidate run.  The starting plan must itself fail the predicate;
    raises ``ValueError`` otherwise (nothing to shrink).
    """
    predicate = still_fails or _default_predicate
    runs = 0

    def attempt(candidate: FaultPlan) -> Optional[ScenarioResult]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        result = run_scenario(profile, seed, plan=candidate, mutate=mutate)
        return result if predicate(result) else None

    baseline = attempt(plan)
    if baseline is None:
        raise ValueError("plan does not fail the predicate; nothing to shrink")
    original_size = len(plan)
    current, current_result = plan, baseline

    # Halving pass: try dropping each half while the plan is big.
    chunk = len(current) // 2
    while chunk >= 2 and runs < max_runs:
        shrunk = False
        indices = list(range(len(current)))
        for start in range(0, len(indices), chunk):
            keep = indices[:start] + indices[start + chunk:]
            if len(keep) == len(indices):
                continue
            result = attempt(current.subset(keep))
            if result is not None:
                current, current_result = current.subset(keep), result
                shrunk = True
                break
        if not shrunk:
            chunk //= 2

    # One-at-a-time pass: guarantees 1-minimality.
    changed = True
    while changed and runs < max_runs:
        changed = False
        for index in range(len(current)):
            result = attempt(current.without(index))
            if result is not None:
                current, current_result = current.without(index), result
                changed = True
                break

    return ShrinkResult(
        plan=current,
        result=current_result,
        runs=runs,
        removed=original_size - len(current),
    )
