"""Flow-size and arrival distributions for mixed-traffic experiments.

The Internet's flow population is famously elephant/mice skewed; the
hairpin-steering ablation uses these to synthesize realistic mixes.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["pareto_flow_sizes", "lognormal_flow_sizes", "poisson_arrivals",
           "elephant_mice_split"]


def pareto_flow_sizes(count: int, rng: random.Random,
                      alpha: float = 1.2, minimum: int = 1448) -> List[int]:
    """Heavy-tailed (bounded Pareto-ish) flow sizes in bytes."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    sizes = []
    for _ in range(count):
        u = rng.random()
        size = int(minimum / (1.0 - u) ** (1.0 / alpha))
        sizes.append(min(size, 10 ** 10))
    return sizes


def lognormal_flow_sizes(count: int, rng: random.Random,
                         mu: float = 10.0, sigma: float = 2.0) -> List[int]:
    """Log-normal flow sizes in bytes (median ``e**mu``)."""
    return [max(1, int(rng.lognormvariate(mu, sigma))) for _ in range(count)]


def poisson_arrivals(count: int, rng: random.Random, rate_per_sec: float) -> List[float]:
    """*count* cumulative Poisson arrival times at the given rate."""
    if rate_per_sec <= 0:
        raise ValueError("rate must be positive")
    now = 0.0
    times = []
    for _ in range(count):
        now += rng.expovariate(rate_per_sec)
        times.append(now)
    return times


def elephant_mice_split(sizes: List[int], elephant_bytes: int = 1_000_000) -> "tuple[int, int]":
    """Count (elephants, mice) under a byte threshold."""
    elephants = sum(1 for size in sizes if size >= elephant_bytes)
    return elephants, len(sizes) - elephants
