"""City-scale flow workloads for the gateway fleet.

The fleet experiments need what the per-figure stream generators in
:mod:`.streams` deliberately avoid: a *large, churning* flow population.
A city's worth of b-network traffic is hundreds of thousands of
concurrent flows where

* a few percent of flows (elephants) carry most of the bytes, with
  heavy-tailed (Pareto) sizes — these are the flows PX merging exists
  for;
* the long tail (mice) is short request/response exchanges that churn
  the flow table — these are what the eviction policy must absorb;
* the arrival rate breathes diurnally (night troughs, evening peaks).

:class:`CityScaleWorkload` synthesizes such a population as a lazy
``(packet, bound)`` stream: memory stays O(active flows), not O(total
flows), so a multi-hundred-thousand-flow day fits in a unit test.
Everything is deterministic from ``profile.seed`` — the chaos corpus
and the scaling bench replay byte-identical streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..core.config import Bound
from ..packet import Packet
from .streams import TcpStreamSource, UdpStreamSource

__all__ = ["CityScaleProfile", "CityScaleWorkload", "DIURNAL_DAY"]

#: A 24-point diurnal arrival-rate shape (relative spawn intensity per
#: simulated "hour"): a night trough, a morning ramp, a lunchtime
#: plateau and the evening streaming peak.
DIURNAL_DAY: Tuple[float, ...] = (
    0.35, 0.25, 0.20, 0.18, 0.20, 0.30,  # 00-05  night trough
    0.50, 0.75, 0.95, 1.00, 0.95, 0.90,  # 06-11  morning ramp
    1.00, 0.95, 0.90, 0.90, 0.95, 1.05,  # 12-17  working plateau
    1.25, 1.45, 1.50, 1.35, 1.00, 0.60,  # 18-23  evening peak
)


@dataclass(frozen=True)
class CityScaleProfile:
    """Shape parameters of one synthetic city population."""

    #: Total flows the stream may start over its lifetime.
    total_flows: int = 200_000
    #: Target concurrently active flows (the working set).
    concurrency: int = 2_000
    #: Fraction of flows that are elephants (bulk transfers).
    elephant_fraction: float = 0.05
    #: Fraction of flows that are UDP (caravan-eligible datagrams).
    udp_fraction: float = 0.15
    #: Mean packets in an elephant flow (Pareto-tailed around this).
    elephant_mean_packets: int = 400
    #: Packets in a mouse flow (uniform 1..2*mean).
    mouse_mean_packets: int = 6
    #: TCP payload per segment / UDP payload per datagram (eMTU-shaped).
    tcp_payload: int = 1460
    udp_payload: int = 1200
    #: Mean back-to-back packets a flow emits before interleaving.
    mean_run: float = 8.0
    #: Relative spawn intensity over the stream's 24 phases.
    diurnal: Tuple[float, ...] = DIURNAL_DAY
    seed: int = 1

    def __post_init__(self):
        if self.total_flows <= 0 or self.concurrency <= 0:
            raise ValueError("flow counts must be positive")
        if not 0.0 <= self.elephant_fraction <= 1.0:
            raise ValueError("elephant_fraction is a fraction")
        if not 0.0 <= self.udp_fraction <= 1.0:
            raise ValueError("udp_fraction is a fraction")
        if len(self.diurnal) == 0:
            raise ValueError("diurnal shape needs at least one phase")


def _elephant_sizes(rng: random.Random, mean_packets: int) -> Iterator[int]:
    """Endless bounded-Pareto elephant sizes, in packets.

    Same alpha=1.2 tail as :func:`..workload.distributions.pareto_flow_sizes`
    but denominated in packets, with the scale chosen so the mean lands
    near *mean_packets* and a 100x cap keeping single flows from
    dominating a finite stream.
    """
    alpha = 1.2
    minimum = max(2, int(mean_packets * (alpha - 1) / alpha))
    cap = 100 * mean_packets
    while True:
        u = rng.random()
        yield min(int(minimum / (1.0 - u) ** (1.0 / alpha)), cap)


class _ActiveFlow:
    """One live flow: its packet source and remaining size budget."""

    __slots__ = ("source", "remaining", "is_elephant")

    def __init__(self, source, remaining: int, is_elephant: bool):
        self.source = source
        self.remaining = remaining
        self.is_elephant = is_elephant


class CityScaleWorkload:
    """Deterministic lazy generator of a city-scale packet stream."""

    def __init__(self, profile: CityScaleProfile = CityScaleProfile()):
        self.profile = profile
        # Populated as the stream runs:
        self.flows_started = 0
        self.elephants_started = 0
        self.mice_started = 0
        self.peak_concurrency = 0

    # ------------------------------------------------------------------
    def _spawn(self, rng: random.Random, sizes: Iterator[int]) -> _ActiveFlow:
        profile = self.profile
        index = self.flows_started
        self.flows_started += 1
        is_elephant = rng.random() < profile.elephant_fraction
        is_udp = rng.random() < profile.udp_fraction
        src = f"100.{64 + (index >> 16) % 64}.{(index >> 8) & 0xFF}.{index & 0xFF}"
        dst = f"10.{(index % 7) + 1}.0.{(index % 200) + 1}"
        sport = 1024 + (index * 2654435761) % 60000
        if is_udp:
            source = UdpStreamSource(src, dst, sport, 443,
                                     payload_size=profile.udp_payload)
        else:
            source = TcpStreamSource(src, dst, sport, 443,
                                     payload_size=profile.tcp_payload)
        if is_elephant:
            self.elephants_started += 1
            remaining = max(2, next(sizes))
        else:
            self.mice_started += 1
            remaining = rng.randint(1, 2 * profile.mouse_mean_packets)
        return _ActiveFlow(source, remaining, is_elephant)

    # ------------------------------------------------------------------
    def packets(self, total: int) -> "Iterator[Tuple[Packet, str]]":
        """Yield *total* inbound ``(packet, bound)`` arrivals.

        The active set tracks ``profile.concurrency`` scaled by the
        diurnal multiplier of the current phase (the stream is divided
        into ``len(profile.diurnal)`` equal phases); finished flows
        retire and new ones spawn, so the population churns the way a
        real flow table sees it.
        """
        profile = self.profile
        rng = random.Random(profile.seed)
        sizes = _elephant_sizes(rng, profile.elephant_mean_packets)
        active: List[_ActiveFlow] = []
        stop_p = 1.0 / profile.mean_run
        phases = len(profile.diurnal)
        phase_len = max(1, total // phases)
        emitted = 0
        while emitted < total:
            phase = min(emitted // phase_len, phases - 1)
            target = max(1, int(profile.concurrency * profile.diurnal[phase]))
            while (
                len(active) < target
                and self.flows_started < profile.total_flows
            ):
                active.append(self._spawn(rng, sizes))
            if not active:  # population exhausted; drain nothing more
                break
            if len(active) > self.peak_concurrency:
                self.peak_concurrency = len(active)
            slot = rng.randrange(len(active))
            flow = active[slot]
            # One geometric run of back-to-back packets from this flow.
            while emitted < total and flow.remaining > 0:
                yield flow.source.next_packet(), Bound.INBOUND
                emitted += 1
                flow.remaining -= 1
                if rng.random() < stop_p:
                    break
            if flow.remaining <= 0:
                active[slot] = active[-1]
                active.pop()

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Population counters accumulated by the last stream run."""
        return {
            "flows_started": self.flows_started,
            "elephants_started": self.elephants_started,
            "mice_started": self.mice_started,
            "peak_concurrency": self.peak_concurrency,
        }
