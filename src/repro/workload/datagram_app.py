"""A QUIC-like sealed-datagram application layer.

The paper's §3 argues that UDP payloads cannot be transparently merged
or split because applications like QUIC encrypt per datagram and
"rely on strict datagram boundaries for interpretation."  This module
makes that failure mode concrete and testable:

* :class:`SealedDatagramCodec` seals each datagram with a keyed MAC
  over its exact bytes (plus a toy keystream so the payload is opaque,
  as ciphertext would be).  ``open`` rejects anything whose boundaries
  were disturbed — a merge, a split, a truncation.
* :func:`naive_merge` / :func:`naive_split` are what a
  boundary-ignorant middlebox would do to UDP payloads; every sealed
  datagram that passes through them fails to open.
* PX-caravan, by contrast, preserves boundaries exactly, so sealed
  datagrams tunnel through PXGW untouched — which is the whole point
  of the caravan design.

This is deliberately *not* real cryptography (a keystream from
``sha256`` in counter mode and a truncated HMAC); it reproduces the
structural property that matters — any byte moved across a datagram
boundary breaks authentication — without pulling in external
dependencies.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import List, Optional

from ..packet import Packet

__all__ = ["SealedDatagramCodec", "naive_merge", "naive_split"]

_MAC_LEN = 8
_HEADER = struct.Struct("!IH")  # sequence, payload length


class SealedDatagramCodec:
    """Seals and opens datagrams under a shared key."""

    def __init__(self, key: bytes):
        if len(key) < 8:
            raise ValueError("key too short")
        self.key = key
        self._send_seq = 0
        self.opened = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def _keystream(self, seq: int, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            block = hashlib.sha256(
                self.key + struct.pack("!IQ", seq, counter)
            ).digest()
            out.extend(block)
            counter += 1
        return bytes(out[:length])

    def seal(self, plaintext: bytes) -> bytes:
        """Produce one sealed datagram payload."""
        seq = self._send_seq
        self._send_seq += 1
        header = _HEADER.pack(seq, len(plaintext))
        body = bytes(a ^ b for a, b in zip(plaintext, self._keystream(seq, len(plaintext))))
        mac = hmac.new(self.key, header + body, hashlib.sha256).digest()[:_MAC_LEN]
        return header + body + mac

    def open(self, payload: bytes) -> Optional[bytes]:
        """Open a sealed datagram; None if boundaries were disturbed."""
        if len(payload) < _HEADER.size + _MAC_LEN:
            self.rejected += 1
            return None
        seq, length = _HEADER.unpack_from(payload)
        expected_len = _HEADER.size + length + _MAC_LEN
        if len(payload) != expected_len:
            # A merge appended bytes; a split removed them.  Either way
            # the datagram is not the one that was sealed.
            self.rejected += 1
            return None
        body = payload[_HEADER.size : _HEADER.size + length]
        mac = payload[_HEADER.size + length :]
        expected = hmac.new(self.key, payload[: _HEADER.size + length],
                            hashlib.sha256).digest()[:_MAC_LEN]
        if not hmac.compare_digest(mac, expected):
            self.rejected += 1
            return None
        self.opened += 1
        return bytes(a ^ b for a, b in zip(body, self._keystream(seq, length)))


def naive_merge(packets: List[Packet]) -> Packet:
    """What a boundary-ignorant middlebox would do: concatenate payloads.

    The result is a single UDP datagram whose payload is the raw
    concatenation — exactly the transformation the paper says breaks
    QUIC-like applications (contrast :func:`repro.core.encode_caravan`,
    which preserves each inner datagram).
    """
    if not packets:
        raise ValueError("nothing to merge")
    merged = packets[0].copy()
    merged.payload = b"".join(p.payload for p in packets)
    merged.ip.total_length = merged.ip.header_len + 8 + len(merged.payload)
    return merged


def naive_split(packet: Packet, mtu: int) -> List[Packet]:
    """Split a UDP datagram's payload at arbitrary MTU boundaries."""
    max_payload = mtu - packet.ip.header_len - 8
    if max_payload <= 0:
        raise ValueError("MTU too small")
    pieces: List[Packet] = []
    payload = packet.payload
    for cursor in range(0, len(payload), max_payload):
        piece = packet.copy()
        piece.payload = payload[cursor : cursor + max_payload]
        piece.ip.total_length = piece.ip.header_len + 8 + len(piece.payload)
        pieces.append(piece)
    return pieces
