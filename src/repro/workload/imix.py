"""IMIX: realistic Internet packet-size mixes.

The paper's evaluation drives PXGW with iPerf bulk flows (all
full-MSS); real border traffic is a mix of tiny control packets, medium
datagrams, and full-size data.  The classic "simple IMIX" ratio is
7:4:1 of 40/576/1500-byte packets; these generators produce flow
populations whose packet sizes follow that mix so the gateway can be
measured under realistic traffic.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

from .streams import TcpStreamSource, UdpStreamSource

__all__ = ["IMIX_SIMPLE", "ImixProfile", "imix_udp_sources", "imix_tcp_sources"]

#: The classic simple-IMIX: (IP packet size, weight).
IMIX_SIMPLE: "Tuple[Tuple[int, int], ...]" = ((40, 7), (576, 4), (1500, 1))


class ImixProfile:
    """A weighted packet-size distribution."""

    def __init__(self, mix: "Sequence[Tuple[int, int]]" = IMIX_SIMPLE):
        if not mix:
            raise ValueError("empty mix")
        for size, weight in mix:
            if size < 28:
                raise ValueError(f"size {size} below IP+UDP header floor")
            if weight <= 0:
                raise ValueError("weights must be positive")
        self.mix = tuple(mix)
        self._sizes = [size for size, _ in mix]
        self._weights = [weight for _, weight in mix]

    def draw(self, rng: random.Random) -> int:
        """One IP packet size from the mix."""
        return rng.choices(self._sizes, weights=self._weights, k=1)[0]

    @property
    def mean_size(self) -> float:
        total_weight = sum(self._weights)
        return sum(s * w for s, w in self.mix) / total_weight


def imix_udp_sources(
    flows: int,
    rng: random.Random,
    profile: "ImixProfile | None" = None,
    tag: str = "",
    client_net: str = "198.51.100",
    server_net: str = "10.1.0",
    base_port: int = 25000,
) -> "List[UdpStreamSource]":
    """UDP flows whose (fixed per-flow) datagram size follows the mix.

    Real flows have a characteristic size (VoIP ~ small, bulk ~ MTU);
    drawing the size per *flow* keeps per-flow streams mergeable where
    the application's size allows, matching how a border sees traffic.
    """
    profile = profile or ImixProfile()
    sources = []
    for index in range(flows):
        size = profile.draw(rng)
        sources.append(
            UdpStreamSource(
                src=f"{client_net}.{(index % 250) + 1}",
                dst=f"{server_net}.{(index % 4) + 1}",
                src_port=base_port + index,
                dst_port=5201,
                payload_size=max(1, size - 28),
                tag=tag,
            )
        )
    return sources


def imix_tcp_sources(
    flows: int,
    rng: random.Random,
    profile: "ImixProfile | None" = None,
    tag: str = "",
    client_net: str = "198.51.100",
    server_net: str = "10.1.0",
    base_port: int = 26000,
) -> "List[TcpStreamSource]":
    """TCP flows with per-flow segment sizes drawn from the mix."""
    profile = profile or ImixProfile()
    sources = []
    for index in range(flows):
        size = profile.draw(rng)
        sources.append(
            TcpStreamSource(
                src=f"{client_net}.{(index % 250) + 1}",
                dst=f"{server_net}.{(index % 4) + 1}",
                src_port=base_port + index,
                dst_port=5201,
                payload_size=max(1, size - 40),
                tag=tag,
            )
        )
    return sources
