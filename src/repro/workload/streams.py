"""Offline packet-stream generators for datapath benchmarks.

The Figure 5 and Figure 1b/1c experiments feed packet *streams* into
the gateway datapath or the end-host receiver model.  The streams here
reproduce the structure that matters for merge behaviour:

* each TCP flow's bytes arrive as contiguous in-order runs (the shadow
  of sender TSO bursts);
* runs from concurrent flows interleave — ``mean_run`` controls how
  many back-to-back packets a flow gets before another flow cuts in,
  which is precisely the knob that degrades LRO/GRO aggregation as
  concurrency grows (Figure 1c);
* UDP flows carry consecutive IP IDs so caravan/UDP_GRO merging can
  chain them.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from ..packet import Packet, TCPFlags, build_tcp, build_udp
from ..packet.address import str_to_ip

__all__ = ["TcpStreamSource", "UdpStreamSource", "interleave", "make_tcp_sources",
           "make_udp_sources"]

_ZERO: dict = {}


def _payload(length: int) -> bytes:
    buffer = _ZERO.get(length)
    if buffer is None:
        buffer = bytes(length)
        _ZERO[length] = buffer
    return buffer


class TcpStreamSource:
    """An endless in-order TCP segment stream for one flow."""

    def __init__(self, src: str, dst: str, src_port: int, dst_port: int,
                 payload_size: int, tag: str = ""):
        if payload_size <= 0:
            raise ValueError("payload_size must be positive")
        self.src_ip = str_to_ip(src)
        self.dst_ip = str_to_ip(dst)
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload_size = payload_size
        self.tag = tag
        self.seq = 0
        self.packets_emitted = 0

    def next_packet(self) -> Packet:
        """The flow's next in-order segment."""
        packet = build_tcp(
            self.src_ip, self.dst_ip, self.src_port, self.dst_port,
            payload=_payload(self.payload_size), seq=self.seq,
            flags=TCPFlags.ACK,
        )
        self.seq = (self.seq + self.payload_size) & 0xFFFFFFFF
        self.packets_emitted += 1
        return packet


class UdpStreamSource:
    """A CBR UDP datagram stream with consecutive IP IDs."""

    def __init__(self, src: str, dst: str, src_port: int, dst_port: int,
                 payload_size: int, tag: str = ""):
        if payload_size <= 0:
            raise ValueError("payload_size must be positive")
        self.src_ip = str_to_ip(src)
        self.dst_ip = str_to_ip(dst)
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload_size = payload_size
        self.tag = tag
        self.ip_id = random.Random(hash((src_port, dst_port)) & 0xFFFF).randrange(0, 0xFFFF)
        self.packets_emitted = 0

    def next_packet(self) -> Packet:
        """The flow's next datagram."""
        packet = build_udp(
            self.src_ip, self.dst_ip, self.src_port, self.dst_port,
            payload=_payload(self.payload_size), ip_id=self.ip_id,
        )
        self.ip_id = (self.ip_id + 1) & 0xFFFF
        self.packets_emitted += 1
        return packet


def interleave(
    sources: Sequence,
    total_packets: int,
    rng: random.Random,
    mean_run: float = 8.0,
) -> Iterator[Tuple[Packet, str]]:
    """Mix flows into one arrival stream of ``(packet, tag)``.

    A random source is drawn, then emits a geometrically distributed
    run (mean ``mean_run``) of back-to-back packets.  ``mean_run`` of 1
    is per-packet round-robin chaos; large values approximate a single
    flow at a time.
    """
    if not sources:
        raise ValueError("need at least one source")
    if mean_run < 1.0:
        raise ValueError("mean_run must be >= 1")
    emitted = 0
    stop_p = 1.0 / mean_run
    while emitted < total_packets:
        source = sources[rng.randrange(len(sources))]
        while emitted < total_packets:
            yield source.next_packet(), source.tag
            emitted += 1
            if rng.random() < stop_p:
                break


def make_tcp_sources(
    count: int,
    payload_size: int,
    tag: str = "",
    client_net: str = "198.51.100",
    server_net: str = "10.1.0",
    base_port: int = 10000,
) -> "List[TcpStreamSource]":
    """*count* TCP flows from distinct client addresses/ports."""
    return [
        TcpStreamSource(
            src=f"{client_net}.{(index % 250) + 1}",
            dst=f"{server_net}.{(index % 4) + 1}",
            src_port=base_port + index,
            dst_port=5201,
            payload_size=payload_size,
            tag=tag,
        )
        for index in range(count)
    ]


def make_udp_sources(
    count: int,
    payload_size: int,
    tag: str = "",
    client_net: str = "198.51.100",
    server_net: str = "10.1.0",
    base_port: int = 20000,
) -> "List[UdpStreamSource]":
    """*count* UDP flows from distinct client addresses/ports."""
    return [
        UdpStreamSource(
            src=f"{client_net}.{(index % 250) + 1}",
            dst=f"{server_net}.{(index % 4) + 1}",
            src_port=base_port + index,
            dst_port=5201,
            payload_size=payload_size,
            tag=tag,
        )
        for index in range(count)
    ]
