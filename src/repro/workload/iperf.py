"""iPerf-style simulated workloads: launch and measure TCP flows.

These helpers drive the event simulator for the WAN experiments
(Figure 1d, §5.2-sender) where throughput is determined by congestion
control dynamics rather than CPU cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..net.host import Host
from ..net.topology import Topology
from ..tcpstack import Reno, TCPConnection, TCPListener

__all__ = ["IperfResult", "run_tcp_flow", "start_tcp_flows"]


@dataclass
class IperfResult:
    """Outcome of one measured flow."""

    bytes_delivered: int
    duration: float
    retransmits: int
    client_mss: int

    @property
    def throughput_bps(self) -> float:
        return self.bytes_delivered * 8.0 / self.duration if self.duration > 0 else 0.0


def run_tcp_flow(
    topo: Topology,
    client: Host,
    server: Host,
    duration: float,
    mss: int = 1460,
    server_mss: Optional[int] = None,
    port: int = 5201,
    client_port: int = 40000,
    cc_class=Reno,
    handshake_grace: float = 1.0,
    omit: float = 0.0,
    total_bytes: int = 1 << 62,
) -> IperfResult:
    """Run one bulk TCP flow for *duration* seconds and measure goodput.

    The handshake completes during a grace period first; *omit* then
    discards the initial slow-start transient from the measurement,
    like iPerf's ``--omit`` flag.
    """
    listener = TCPListener(server, port, mss=server_mss if server_mss else mss,
                           cc_class=cc_class)
    conn = TCPConnection(client, client_port, server.ip, port, mss=mss, cc_class=cc_class)
    conn.connect()
    topo.run(until=topo.sim.now + handshake_grace)
    if not listener.connections:
        raise RuntimeError("handshake did not complete within the grace period")
    server_conn = listener.connections[0]
    conn.send_bulk(total_bytes)
    if omit > 0:
        topo.run(until=topo.sim.now + omit)
    delivered_before = server_conn.bytes_delivered
    start = topo.sim.now
    topo.run(until=start + duration)
    return IperfResult(
        bytes_delivered=server_conn.bytes_delivered - delivered_before,
        duration=duration,
        retransmits=conn.retransmits,
        client_mss=conn.send_mss,
    )


def start_tcp_flows(
    topo: Topology,
    clients: List[Host],
    servers: List[Host],
    flows: int,
    mss: int = 1460,
    port_base: int = 5200,
    bulk_bytes: int = 10_000_000,
) -> "tuple[List[TCPConnection], List[TCPListener]]":
    """Open *flows* connections round-robin across client/server pairs."""
    connections: List[TCPConnection] = []
    listeners: List[TCPListener] = []
    for index in range(flows):
        client = clients[index % len(clients)]
        server = servers[index % len(servers)]
        listener = TCPListener(server, port_base + index, mss=mss)
        conn = TCPConnection(client, 41000 + index, server.ip, port_base + index, mss=mss)
        conn.connect()
        conn.send_bulk(bulk_bytes)
        connections.append(conn)
        listeners.append(listener)
    return connections, listeners
