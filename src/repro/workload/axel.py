"""The parallel-connection alternative (Table 1): axel-style sessions.

Each *session* downloads one large file either over a single connection
with a 9000 B-MTU MSS or over ``conns`` parallel legacy-MTU connections
(axel's mode).  Both configurations reach the same aggregate
throughput; the question is server CPU.  :class:`ParallelDownloadModel`
prices the server side:

* base work — per-byte copies, per-TSO-chunk stack traversals, per-ACK
  processing at the offered line rate — via cycle accounting;
* session/connection management — epoll and timer scanning, cache and
  TLB pressure — via the fitted superlinear session-overhead terms in
  :class:`repro.cpu.ServerCosts`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu import DEFAULT_SERVER_COSTS, CpuSpec, ServerCosts

__all__ = ["SessionConfig", "ParallelDownloadModel"]


@dataclass(frozen=True)
class SessionConfig:
    """One download session's shape."""

    connections: int
    mss: int

    #: The paper's two configurations.
    @classmethod
    def single_jumbo(cls) -> "SessionConfig":
        return cls(connections=1, mss=8948)

    @classmethod
    def axel_parallel(cls, connections: int = 6) -> "SessionConfig":
        return cls(connections=connections, mss=1448)


class ParallelDownloadModel:
    """Server CPU usage for S sessions of a given configuration."""

    def __init__(
        self,
        spec: CpuSpec,
        costs: ServerCosts = DEFAULT_SERVER_COSTS,
        line_rate_bps: float = 10e9,
        acks_per_segments: int = 2,
    ):
        self.spec = spec
        self.costs = costs
        self.line_rate_bps = line_rate_bps
        self.acks_per_segments = acks_per_segments

    def base_cycles_per_second(self, config: SessionConfig) -> float:
        """Data-plane cycles/s to serve the full line rate."""
        costs = self.costs
        bytes_per_second = self.line_rate_bps / 8.0
        copy = bytes_per_second * costs.per_byte
        chunks = bytes_per_second / costs.chunk_bytes * costs.tso_chunk
        # The receiver ACKs every `acks_per_segments` MSS-sized segments.
        acks = bytes_per_second / (self.acks_per_segments * config.mss)
        ack_cycles = acks * costs.ack_rx_per_packet
        return copy + chunks + ack_cycles

    def management_fraction(self, sessions: int, config: SessionConfig) -> float:
        """Connection/session management, as a fraction of one core."""
        costs = self.costs
        per_session = (
            costs.session_overhead_frac
            + costs.extra_conn_overhead_frac * (config.connections - 1)
        )
        return per_session * sessions ** costs.session_exponent

    def cpu_usage(self, sessions: int, config: SessionConfig, clamp: bool = True) -> float:
        """Server CPU usage (fraction of one core) for *sessions*.

        The aggregate line rate is fixed — more sessions each get a
        smaller share — matching the paper's setup where both columns
        of Table 1 achieve similar network throughput.  Values are
        clamped at 1.0 (a saturated core) unless ``clamp=False``.
        """
        if sessions <= 0:
            raise ValueError("need at least one session")
        base = self.base_cycles_per_second(config) / self.spec.clock_hz
        usage = base + self.management_fraction(sessions, config)
        return min(usage, 1.0) if clamp else usage

    def cpu_ratio(self, sessions: int, parallel: "SessionConfig | None" = None,
                  jumbo: "SessionConfig | None" = None) -> float:
        """How many times more CPU the parallel config burns (clamped)."""
        parallel = parallel or SessionConfig.axel_parallel()
        jumbo = jumbo or SessionConfig.single_jumbo()
        return self.cpu_usage(sessions, parallel) / self.cpu_usage(sessions, jumbo)
