"""Workload generators: iPerf-style flows, packet streams, axel sessions."""

from .axel import ParallelDownloadModel, SessionConfig
from .cityscale import DIURNAL_DAY, CityScaleProfile, CityScaleWorkload
from .datagram_app import SealedDatagramCodec, naive_merge, naive_split
from .distributions import (
    elephant_mice_split,
    lognormal_flow_sizes,
    pareto_flow_sizes,
    poisson_arrivals,
)
from .imix import IMIX_SIMPLE, ImixProfile, imix_tcp_sources, imix_udp_sources
from .iperf import IperfResult, run_tcp_flow, start_tcp_flows
from .streams import (
    TcpStreamSource,
    UdpStreamSource,
    interleave,
    make_tcp_sources,
    make_udp_sources,
)

__all__ = [
    "CityScaleProfile",
    "CityScaleWorkload",
    "DIURNAL_DAY",
    "TcpStreamSource",
    "UdpStreamSource",
    "interleave",
    "make_tcp_sources",
    "make_udp_sources",
    "ParallelDownloadModel",
    "SessionConfig",
    "IperfResult",
    "run_tcp_flow",
    "start_tcp_flows",
    "pareto_flow_sizes",
    "lognormal_flow_sizes",
    "poisson_arrivals",
    "elephant_mice_split",
    "SealedDatagramCodec",
    "naive_merge",
    "naive_split",
    "ImixProfile",
    "IMIX_SIMPLE",
    "imix_tcp_sources",
    "imix_udp_sources",
]
