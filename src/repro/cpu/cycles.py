"""Cycle and memory-bandwidth accounting.

Absolute forwarding rates (Tbps) cannot be generated from Python, so
every performance experiment in this reproduction runs the *real*
packet-processing logic over a sampled workload while charging costs to
a :class:`CycleAccount`.  Sustained throughput is then the classic
bottleneck law over two resources:

``tput = min(cpu_cycles_available, mem_bytes_available) scaled by the
per-goodput-byte demand measured on the sample``

The cost *constants* live in :mod:`repro.cpu.calibration`; the cost
*structure* (what gets charged per packet, per segment, per byte) lives
in the components doing the work (PXGW, NIC offloads, the UPF), so
ratios and crossovers are emergent, not hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CpuSpec", "CycleAccount"]


@dataclass(frozen=True)
class CpuSpec:
    """A processor model: clock, core count, memory bandwidth."""

    name: str
    clock_hz: float
    cores: int
    #: Aggregate DRAM bandwidth available to the packet path.
    mem_bw_bytes_per_sec: float

    def cycles_per_second(self, cores: "int | None" = None) -> float:
        """Total cycles/second across *cores* (defaults to all)."""
        used = self.cores if cores is None else cores
        if used > self.cores:
            raise ValueError(f"{self.name} has only {self.cores} cores (asked {used})")
        return self.clock_hz * used


@dataclass
class CycleAccount:
    """Accumulated processing demand for a sampled workload."""

    cycles: float = 0.0
    mem_bytes: float = 0.0
    packets: int = 0
    #: Application-payload bytes successfully carried by the sample.
    goodput_bytes: int = 0
    #: Optional per-category breakdown for reports/ablations.
    breakdown: dict = field(default_factory=dict)

    def charge(self, cycles: float, mem_bytes: float = 0.0, category: str = "") -> None:
        """Add *cycles* (and optional memory traffic) to the account."""
        self.cycles += cycles
        self.mem_bytes += mem_bytes
        if category:
            self.breakdown[category] = self.breakdown.get(category, 0.0) + cycles

    def note_packet(self, goodput_bytes: int = 0) -> None:
        """Record one packet processed carrying *goodput_bytes*."""
        self.packets += 1
        self.goodput_bytes += goodput_bytes

    def merge(self, other: "CycleAccount") -> None:
        """Fold another account (e.g. a per-core shard) into this one."""
        self.cycles += other.cycles
        self.mem_bytes += other.mem_bytes
        self.packets += other.packets
        self.goodput_bytes += other.goodput_bytes
        for category, cycles in other.breakdown.items():
            self.breakdown[category] = self.breakdown.get(category, 0.0) + cycles

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def cycles_per_packet(self) -> float:
        """Mean cycles per processed packet."""
        return self.cycles / self.packets if self.packets else 0.0

    def cycles_per_goodput_byte(self) -> float:
        """Mean cycles per goodput byte."""
        return self.cycles / self.goodput_bytes if self.goodput_bytes else 0.0

    def sustainable_goodput_bps(self, spec: CpuSpec, cores: int = 1) -> float:
        """Goodput (bits/s) sustainable on *cores* of *spec*.

        The CPU bound scales the sample by available cycles; the memory
        bound scales it by available DRAM bandwidth; the tighter bound
        wins.  An account with no recorded goodput yields 0.
        """
        if self.goodput_bytes == 0:
            return 0.0
        cpu_bound = float("inf")
        if self.cycles > 0:
            cpu_bound = spec.cycles_per_second(cores) / self.cycles * self.goodput_bytes * 8
        mem_bound = float("inf")
        if self.mem_bytes > 0:
            mem_bound = spec.mem_bw_bytes_per_sec / self.mem_bytes * self.goodput_bytes * 8
        bound = min(cpu_bound, mem_bound)
        return 0.0 if bound == float("inf") else bound

    def utilization_at_goodput(self, spec: CpuSpec, goodput_bps: float, cores: int = 1) -> float:
        """CPU utilization (0..1+) needed to sustain *goodput_bps*.

        Values above 1.0 mean the load is unachievable on the given
        cores — callers typically clamp to 100 % (a saturated server,
        as in Table 1's 100-session parallel-connection column).
        """
        if self.goodput_bytes == 0:
            return 0.0
        scale = goodput_bps / (self.goodput_bytes * 8)
        return self.cycles * scale / spec.cycles_per_second(cores)
