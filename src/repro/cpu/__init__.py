"""CPU cycle accounting and calibrated cost presets."""

from .calibration import (
    DEFAULT_GATEWAY_COSTS,
    DEFAULT_HOST_COSTS,
    DEFAULT_SERVER_COSTS,
    DEFAULT_UPF_COSTS,
    XEON_5512U,
    XEON_6554S,
    GatewayCosts,
    HostCosts,
    ServerCosts,
    UpfCosts,
)
from .cycles import CpuSpec, CycleAccount

__all__ = [
    "CpuSpec",
    "CycleAccount",
    "GatewayCosts",
    "HostCosts",
    "UpfCosts",
    "ServerCosts",
    "XEON_6554S",
    "XEON_5512U",
    "DEFAULT_GATEWAY_COSTS",
    "DEFAULT_HOST_COSTS",
    "DEFAULT_UPF_COSTS",
    "DEFAULT_SERVER_COSTS",
]
