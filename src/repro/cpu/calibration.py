"""Calibrated cost constants and CPU presets.

Every absolute number in the reproduction's performance results flows
through the constants below.  They are calibrated against the paper's
own anchor measurements (and public DPDK/ConnectX-7 figures), then the
library *predicts* everything else:

Anchors used for calibration
----------------------------
* PXGW baseline (DPDK GRO library): 167 Gbps, 76 % yield on 8 cores.
* PXGW "PX": 1.09 Tbps, 93 % yield on 8 cores (memory-bandwidth bound).
* PXGW "PX + header-only DMA": 1.45 Tbps / 94 % (CPU bound again).
* Single-flow receiver with LRO+GRO at 1500 B MTU: 50.1 Gbps.
* OMEC UPF on one core: 208 Gbps at 9000 B, 5.6x the 1500 B rate.

The effective clock rates below are deliberately between base and
turbo: the packet path runs hot on a few cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cycles import CpuSpec

__all__ = [
    "XEON_6554S",
    "XEON_5512U",
    "GatewayCosts",
    "HostCosts",
    "UpfCosts",
    "ServerCosts",
    "DEFAULT_GATEWAY_COSTS",
    "DEFAULT_HOST_COSTS",
    "DEFAULT_UPF_COSTS",
    "DEFAULT_SERVER_COSTS",
]

#: The PXGW machine: Xeon Gold 6554S (36 C), 4x ConnectX-7 400 GbE.
#: 8-channel DDR5-5600 gives ~350 GB/s of practically usable bandwidth.
XEON_6554S = CpuSpec(
    name="Xeon Gold 6554S",
    clock_hz=3.0e9,
    cores=36,
    mem_bw_bytes_per_sec=350e9,
)

#: Client/server endpoints: Xeon Gold 5512U (28 C), one ConnectX-7.
XEON_5512U = CpuSpec(
    name="Xeon Gold 5512U",
    clock_hz=2.6e9,
    cores=28,
    mem_bw_bytes_per_sec=280e9,
)


@dataclass(frozen=True)
class GatewayCosts:
    """Per-operation cycle costs on the PXGW datapath (DPDK, polling).

    The merge fast path (rx + lookup + append) is cheap because PXGW
    leans on NIC offloads; the baseline pays the full software GRO cost
    per packet instead.  Memory factors express how many times each
    payload byte crosses the DRAM bus (RX DMA write + datapath read +
    TX read ~= 2.6 with full DMA; header-only DMA leaves payloads in
    NIC memory so only headers and bookkeeping move).
    """

    rx_descriptor: float = 75.0
    tx_descriptor: float = 62.0
    flow_lookup: float = 55.0
    merge_append: float = 32.0
    merge_flush: float = 60.0
    split_per_segment: float = 45.0
    caravan_append: float = 55.0
    caravan_flush: float = 80.0
    caravan_split_per_datagram: float = 55.0
    hairpin_forward: float = 25.0
    classifier_per_packet: float = 18.0
    #: Software GRO (the DPDK GRO library baseline) per input packet.
    baseline_gro_per_packet: float = 2500.0
    baseline_tx_per_packet: float = 120.0
    #: DRAM crossings per payload byte with full scatter-gather DMA.
    mem_factor_full_dma: float = 2.6
    #: DRAM crossings per payload byte with header-only DMA.
    mem_factor_header_only: float = 0.18
    #: Extra per-packet cost of managing on-NIC memory descriptors.
    header_only_per_packet: float = 10.0


@dataclass(frozen=True)
class HostCosts:
    """End-host stack costs (Linux-stack-like, interrupt + NAPI path).

    ``driver_rx_per_packet`` is charged once per packet the *host*
    sees: per wire packet without LRO, per merged super-packet with
    LRO.  GRO adds a software merge attempt per wire packet; the stack
    cost is charged per segment delivered upward; the copy cost is per
    byte crossing to userspace.

    ``wakeup_per_segment`` is the interrupt/softirq/socket-wake cost of
    delivering a segment to a blocked reader.  Under heavy multi-flow
    load the receiver stays in NAPI polling and this cost amortizes
    away (``ReceiverConfig.busy_polling``); at one or a few fast flows
    it is paid per delivered segment and dominates — which is exactly
    why aggregation (bigger delivered segments) matters so much in
    Figures 1b/1c and much less at the 100-flow receiver of Figure 5c.
    """

    driver_rx_per_packet: float = 220.0
    gro_per_packet: float = 150.0
    stack_per_segment: float = 360.0
    wakeup_per_segment: float = 3640.0
    copy_per_byte: float = 0.33
    #: TX side: per sendmsg-sized chunk handed to the stack, and per
    #: wire packet when segmentation happens in software (no TSO).
    tx_stack_per_chunk: float = 1600.0
    tx_sw_segment_per_packet: float = 220.0
    tx_copy_per_byte: float = 0.30
    ack_rx_per_packet: float = 450.0
    #: UDP datagram delivery: one recvmsg per datagram, no batching.
    udp_per_datagram: float = 1000.0
    #: Parsing one inner datagram out of a PX-caravan/UDP_GRO bundle.
    caravan_parse_per_datagram: float = 50.0
    mem_factor_rx: float = 1.5


@dataclass(frozen=True)
class UpfCosts:
    """OMEC/BESS UPF pipeline costs (single-core run-to-completion).

    The UPF touches only headers, so per-byte work is almost nil and
    throughput is packet-rate bound: this is what makes Figure 1a
    nearly linear in MTU.
    """

    rx_descriptor: float = 60.0
    tx_descriptor: float = 55.0
    gtpu_decap: float = 80.0
    gtpu_encap: float = 85.0
    pdr_lookup: float = 640.0
    far_apply: float = 60.0
    qer_enforce: float = 45.0
    per_byte: float = 0.009


@dataclass(frozen=True)
class ServerCosts:
    """A file server's CPU model for the parallel-connection study (Table 1).

    Base load (per-byte copies, per-TSO-chunk stack work, per-ACK
    processing) is cycle-accounted at the offered line rate.  On top of
    that, session/connection management (epoll scanning, timer wheels,
    cache and TLB pressure) grows *sublinearly per session but steeply
    with parallel connections*: each session costs
    ``(session_overhead_frac + extra_conn_overhead_frac*(C-1)) * S**session_exponent``
    of a core, fitted to the paper's measured 1/10/100-session points.
    """

    per_byte: float = 0.33
    tso_chunk: float = 1400.0
    chunk_bytes: int = 65536
    ack_rx_per_packet: float = 120.0
    #: Fraction of one core consumed by session S=1's management.
    session_overhead_frac: float = 0.0036
    #: Additional fraction per extra parallel connection in a session.
    extra_conn_overhead_frac: float = 0.00385
    #: Superlinearity of session management with session count.
    session_exponent: float = 0.81


DEFAULT_GATEWAY_COSTS = GatewayCosts()
DEFAULT_HOST_COSTS = HostCosts()
DEFAULT_UPF_COSTS = UpfCosts()
DEFAULT_SERVER_COSTS = ServerCosts()
