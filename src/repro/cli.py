"""Command-line interface: quick demos without writing any code.

::

    python -m repro gateway            # b-network border demo
    python -m repro pmtud              # F-PMTUD vs baselines on one path
    python -m repro upf --mtu 9000     # single-core UPF throughput
    python -m repro survey -n 100000   # fragment-delivery survey
    python -m repro fig5a              # the headline PXGW numbers
    python -m repro metrics            # observed world -> Prometheus text
    python -m repro trace --summary    # observed world -> flow-trace counts
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from . import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PacketExpress (HotNets '25) reproduction demos",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    gateway = commands.add_parser("gateway", help="run a b-network border demo")
    gateway.add_argument("--imtu", type=int, default=9000)
    gateway.add_argument("--emtu", type=int, default=1500)
    gateway.add_argument("--megabytes", type=int, default=2)

    commands.add_parser("pmtud", help="F-PMTUD vs classical vs PLPMTUD")

    upf = commands.add_parser("upf", help="single-core UPF throughput at an MTU")
    upf.add_argument("--mtu", type=int, default=9000)
    upf.add_argument("--flows", type=int, default=800)

    survey = commands.add_parser("survey", help="fragment-delivery survey")
    survey.add_argument("-n", "--population", type=int, default=389_428)
    survey.add_argument("--seed", type=int, default=42)

    commands.add_parser("fig5a", help="PXGW throughput/yield (abridged Figure 5a)")

    bench = commands.add_parser(
        "bench",
        help="run the fast-path microbenchmarks, emit a BENCH JSON report",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads and fewer reps (CI mode)")
    bench.add_argument("--reps", type=int, default=None,
                       help="timed repetitions per bench (default 5, quick 3)")
    bench.add_argument("--only", default=None,
                       help="comma-separated subset of benchmark names")
    bench.add_argument("--out", default=None,
                       help="write the JSON report here instead of stdout")
    bench.add_argument("--baseline", default=None,
                       help="compare against this bench JSON and fail on regression")
    bench.add_argument("--threshold", type=float, default=0.30,
                       help="allowed fractional slowdown vs --baseline (default 0.30)")
    bench.add_argument("--metrics-out", default=None,
                       help="also write the results as Prometheus text here")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile the selected benches instead of timing "
                            "them; prints a deterministic top-N cumulative table")
    bench.add_argument("--profile-top", type=int, default=25,
                       help="rows in the --profile table (default 25)")

    metrics = commands.add_parser(
        "metrics",
        help="run the seeded observability world, print its metric export",
    )
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--format", choices=("prometheus", "json"),
                         default="prometheus")
    metrics.add_argument("--out", default=None,
                         help="write the export here instead of stdout")

    trace = commands.add_parser(
        "trace",
        help="run the seeded observability world, print its flow trace",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--kind", default=None,
                       help="only events of this kind (ingress, merge, ...)")
    trace.add_argument("--since", type=float, default=None,
                       help="only events at or after this sim time")
    trace.add_argument("--limit", type=int, default=None,
                       help="print at most the last N events")
    trace.add_argument("--summary", action="store_true",
                       help="print per-kind counts instead of events")
    trace.add_argument("--jsonl", action="store_true",
                       help="force one compact JSON object per line "
                            "(events, or the summary with --summary)")

    spans = commands.add_parser(
        "spans",
        help="run the seeded observability world, print its lifecycle spans",
    )
    spans.add_argument("--seed", type=int, default=0)
    spans.add_argument("--summary", action="store_true",
                       help="print balance/kind/latency aggregates only")
    spans.add_argument("--jsonl", action="store_true",
                       help="one finished span per line instead of one blob")
    spans.add_argument("--limit", type=int, default=None,
                       help="include at most the last N finished spans")
    spans.add_argument("--out", default=None,
                       help="write the export here instead of stdout")

    flight = commands.add_parser(
        "flight",
        help="run the seeded observability world, dump its black-box "
             "flight-recorder window (spans, trace events, metric "
             "deltas, alert transitions, merged in sim time)",
    )
    flight.add_argument("--seed", type=int, default=0)
    flight.add_argument("--since", type=float, default=None,
                        help="window start in sim time (default: all)")
    flight.add_argument("--until", type=float, default=None,
                        help="window end in sim time (default: all)")
    flight.add_argument("--kind", default=None,
                        help="only entries of this kind "
                             "(mark/metrics/alert/trace/span)")
    flight.add_argument("--summary", action="store_true",
                        help="print per-source entry counts only")
    flight.add_argument("--out", default=None,
                        help="write the dump here instead of stdout")

    incident = commands.add_parser(
        "incident",
        help="build a deterministic incident bundle for one trigger "
             "scenario (or the whole matrix) and dump it as JSON",
    )
    incident.add_argument("--trigger",
                          choices=("alert", "rollback", "shard-loss",
                                   "oracle"),
                          default="alert",
                          help="which stock trigger scenario to run")
    incident.add_argument("--matrix", action="store_true",
                          help="run all four triggers into one document")
    incident.add_argument("--seed", type=int, default=0)
    incident.add_argument("--indent", type=int, default=0,
                          help="JSON indent (0 for compact — the "
                               "byte-deterministic form CI diffs)")
    incident.add_argument("--out", default=None,
                          help="write the bundle here instead of stdout")

    timeline = commands.add_parser(
        "timeline",
        help="run the seeded observability world, print its in-sim "
             "telemetry timeline (windowed per-series deltas)",
    )
    timeline.add_argument("--seed", type=int, default=0)
    timeline.add_argument("--interval", type=float, default=0.05,
                          help="sim-seconds between scrapes")
    timeline.add_argument("--format", choices=("json", "jsonl"),
                          default="json")
    timeline.add_argument("--out", default=None,
                          help="write the export here instead of stdout")

    alerts = commands.add_parser(
        "alerts",
        help="run the seeded observability world, print its SLO alert "
             "rules and sim-time state transitions",
    )
    alerts.add_argument("--seed", type=int, default=0)
    alerts.add_argument("--transitions", action="store_true",
                        help="print only the transition log, one per line")
    alerts.add_argument("--out", default=None,
                        help="write the export here instead of stdout")

    report = commands.add_parser(
        "resilience-report",
        help="run a chaos scenario + discovery/negotiation demos, dump "
             "health transitions and retry counters as JSON",
    )
    report.add_argument("--profile", default="mixed",
                        help="chaos profile (tcp/caravan/mixed/pmtud)")
    report.add_argument("--seed", type=int, default=101)
    report.add_argument("--indent", type=int, default=2,
                        help="JSON indent (0 for compact)")

    attacks = commands.add_parser(
        "attacks",
        help="run the adversarial PMTUD scenarios differentially "
             "(hardened vs unhardened) and print the verdict table",
    )
    attacks.add_argument("--scenario", default=None,
                         help="run one named scenario (default: all)")
    attacks.add_argument("--seed", type=int, default=7)
    attacks.add_argument("--json", action="store_true",
                         help="emit full results as JSON instead of a table")

    canary = commands.add_parser(
        "canary",
        help="run a twin-world canary deploy (baseline vs candidate "
             "under identical offered load) and print the staged "
             "promote/rollback verdict",
    )
    canary.add_argument("--incident", default="benign-candidate",
                        help="named incident from the corpus "
                             "(default: benign-candidate)")
    canary.add_argument("--corpus", action="store_true",
                        help="run every incident and check each verdict "
                             "against its expectation")
    canary.add_argument("--seed", type=int, default=0)
    canary.add_argument("--json", action="store_true",
                        help="emit the full report as JSON instead of "
                             "a table")
    canary.add_argument("--out", default=None,
                        help="write the output here instead of stdout")

    fleet = commands.add_parser(
        "fleet",
        help="sharded gateway fleet: pkts/s scaling across worker counts "
             "plus a worker-loss-under-load drill",
    )
    fleet.add_argument("--workers", default="1,2,4,8",
                       help="comma-separated shard counts (default 1,2,4,8)")
    fleet.add_argument("--quick", action="store_true",
                       help="smaller stream (CI smoke mode)")
    fleet.add_argument("--seed", type=int, default=0xC17)
    fleet.add_argument("--json", action="store_true",
                       help="emit the scaling report as JSON")
    fleet.add_argument("--out", default=None,
                       help="write the output here instead of stdout")
    fleet.add_argument("--loss-drill", action="store_true",
                       help="also run crash + maintenance shard-loss "
                            "scenarios and report the oracle verdict")
    fleet.add_argument("--min-speedup-4", type=float, default=1.6,
                       help="fail if modeled speedup at 4 shards is below "
                            "this (default 1.6; 0 disables)")
    return parser


# ----------------------------------------------------------------------
def _cmd_gateway(args) -> int:
    from .core import GatewayConfig, PXGateway
    from .net import Topology
    from .tcpstack import TCPConnection, TCPListener

    topo = Topology()
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    gateway = PXGateway(topo.sim, "pxgw",
                        config=GatewayConfig(imtu=args.imtu, emtu=args.emtu))
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=args.imtu)
    topo.link(gateway, outside, mtu=args.emtu)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])

    server = TCPListener(outside, 80, mss=args.emtu - 40)
    client = TCPConnection(inside, 40000, outside.ip, 80, mss=args.imtu - 40)
    client.connect()
    topo.run(until=0.2)
    server.connections[0].send_bulk(args.megabytes * 1_000_000)
    topo.run(until=10.0)

    print(f"iMTU {args.imtu} / eMTU {args.emtu}: downloaded "
          f"{client.bytes_delivered:,} B")
    print(f"negotiated MSS (raised by PXGW): {client.send_mss}")
    print(f"jumbo segments spliced: {gateway.stats.merged_packets}")
    print(f"conversion yield: {gateway.stats.conversion_yield:.1%}")
    return 0


def _cmd_pmtud(args) -> int:
    from .net import Topology
    from .pmtud import (
        ClassicalPmtud,
        FPmtudDaemon,
        FPmtudProber,
        Plpmtud,
        ProbeEchoDaemon,
    )

    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    routers = [topo.add_router(f"r{i}", icmp_blackhole=True) for i in range(2)]
    chain = [client] + routers + [server]
    for index, mtu in enumerate([9000, 1400, 9000]):
        topo.link(chain[index], chain[index + 1], mtu=mtu, delay=0.005)
    topo.build_routes()
    FPmtudDaemon(server)
    ProbeEchoDaemon(server)

    outcomes = {}
    FPmtudProber(client).probe(server.ip, 9000,
                               lambda result: outcomes.__setitem__("f", result))
    Plpmtud(client).discover(server.ip, 9000,
                             lambda result: outcomes.__setitem__("plp", result))
    ClassicalPmtud(client).discover(server.ip, 9000,
                                    lambda result: outcomes.__setitem__("c", result))
    topo.run(until=600.0)

    f, plp, classic = outcomes["f"], outcomes["plp"], outcomes["c"]
    print("path bottleneck: 1400 B, routers are ICMP blackholes")
    print(f"F-PMTUD   : {f.pmtu} B in {f.elapsed * 1e3:.1f} ms (1 probe)")
    print(f"PLPMTUD   : {plp.pmtu} B in {plp.elapsed:.1f} s ({plp.probes_sent} probes)")
    classical_pmtu = classic.pmtu if classic.pmtu is not None else "FAILED (blackhole)"
    print(f"classical : {classical_pmtu} after {classic.elapsed:.1f} s")
    return 0


def _cmd_upf(args) -> int:
    from .cpu import XEON_6554S
    from .packet import build_udp, str_to_ip
    from .upf import Upf

    upf = Upf(n3_address=str_to_ip("10.100.0.1"))
    ue_base = str_to_ip("172.16.0.1")
    for index in range(args.flows):
        upf.sessions.create_session(
            seid=index, ue_ip=ue_base + index, uplink_teid=10_000 + index,
            gnb_teid=20_000 + index, gnb_ip=str_to_ip("10.100.0.2"),
        )
    dn = str_to_ip("93.184.216.34")
    for index in range(3000):
        upf.process(build_udp(dn, ue_base + (index % args.flows), 80, 4000,
                              payload=b"\0" * (args.mtu - 28)))
    tput = upf.account.sustainable_goodput_bps(XEON_6554S, cores=1)
    print(f"UPF @ {args.mtu} B MTU, {args.flows} sessions, 1 core: "
          f"{tput / 1e9:.1f} Gbps "
          f"({upf.account.cycles_per_packet():.0f} cycles/packet)")
    return 0


def _cmd_survey(args) -> int:
    from .pmtud import FragmentSurvey

    result = FragmentSurvey(seed=args.seed).run(args.population)
    print(f"population             : {result.population:,}")
    print(f"fragment delivery OK   : {result.fragment_success_rate:.4%}")
    print(f"last-hop filters       : {result.filtered_last_hop}")
    print(f"unresponsive           : {result.unresponsive}")
    print(f"ICMP PMTUD success     : {result.icmp_success_rate:.1%} (2018 baseline)")
    return 0


def _cmd_fig5a(args) -> int:
    from .core import Bound, GatewayConfig, GatewayDatapath
    from .cpu import XEON_6554S
    from .workload import interleave, make_tcp_sources

    def run(config):
        datapath = GatewayDatapath(config)
        down = make_tcp_sources(400, 1448, tag=Bound.INBOUND)
        up = make_tcp_sources(400, 8948, tag=Bound.OUTBOUND, base_port=30000,
                              client_net="10.1.0", server_net="198.51.100")
        rng = random.Random(1)
        datapath.process_stream(interleave(down * 6 + up, 20_000, rng, 24.0),
                                final_flush=False)
        datapath.reset_measurement()
        datapath.process_stream(interleave(down * 6 + up, 50_000, rng, 24.0),
                                final_flush=False)
        return (datapath.sustainable_throughput_bps(XEON_6554S),
                datapath.conversion_yield)

    for name, config in (
        ("baseline", GatewayConfig(baseline_gro=True, delayed_merge=False,
                                   hairpin_small_flows=False)),
        ("PX", GatewayConfig()),
        ("PX + header-only", GatewayConfig(header_only_dma=True)),
    ):
        tput, cy = run(config)
        print(f"{name:18s} {tput / 1e9:8.0f} Gbps   yield {cy:.1%}")
    return 0


def _cmd_bench(args) -> int:
    import json

    from .perf import compare_reports, load_report, run_benchmarks, write_report

    only = args.only.split(",") if args.only else None
    if args.profile:
        from .perf import bench_names, format_profile, profile_benchmark

        for name in only if only is not None else bench_names():
            summary = profile_benchmark(name, quick=args.quick,
                                        top=args.profile_top)
            print(format_profile(summary))
            print()
        return 0

    registry = None
    if args.metrics_out:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    report = run_benchmarks(quick=args.quick, reps=args.reps, only=only,
                            registry=registry)
    if registry is not None:
        with open(args.metrics_out, "w") as handle:
            handle.write(registry.to_prometheus_text())
        print(f"metrics written to {args.metrics_out}")
    if args.out:
        write_report(report, args.out)
        for row in report["results"]:
            print(f"{row['bench']:22s} {row['pkts_per_sec']:14,.0f} pkts/s "
                  f"({row['ns_per_pkt']:10,.0f} ns/pkt, reps={row['reps']})")
        print(f"report written to {args.out}")
    else:
        print(json.dumps(report, indent=2, sort_keys=True))
    if args.baseline:
        results = compare_reports(load_report(args.baseline), report,
                                  threshold=args.threshold)
        for result in results:
            print(result.line())
        if any(result.regressed for result in results):
            print(f"regression beyond {args.threshold:.0%} of baseline")
            return 1
    return 0


def _cmd_metrics(args) -> int:
    import json

    from .obs import run_observed_world

    world = run_observed_world(seed=args.seed)
    if args.format == "json":
        text = json.dumps(world.obs.registry.to_json(),
                          indent=2, sort_keys=True) + "\n"
    else:
        text = world.obs.registry.to_prometheus_text()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"{world.obs.registry.series_count()} series "
              f"({args.format}) written to {args.out}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_trace(args) -> int:
    import json

    from .obs import run_observed_world

    world = run_observed_world(seed=args.seed)
    tracer = world.obs.tracer
    if args.summary:
        summary = {
            "recorded": tracer.recorded,
            "dropped": tracer.dropped,
            "kinds": tracer.kinds(),
        }
        if args.jsonl:
            print(json.dumps(summary, sort_keys=True, separators=(",", ":")))
        else:
            print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    events = tracer.events(kind=args.kind)
    if args.since is not None:
        events = [event for event in events if event["time"] >= args.since]
    if args.limit is not None:
        events = events[-args.limit:]
    for event in events:
        if args.jsonl:
            print(json.dumps(event, sort_keys=True, separators=(",", ":")))
        else:
            print(json.dumps(event, sort_keys=True))
    return 0


def _cmd_flight(args) -> int:
    import json

    from .obs import run_observed_world

    world = run_observed_world(seed=args.seed)
    recorder = world.flight
    if args.summary:
        _emit_text(json.dumps({
            "name": recorder.name,
            "counts": recorder.counts(),
            "sources": recorder.sources,
        }, indent=2, sort_keys=True), args.out, "flight summary")
        return 0
    kinds = (args.kind,) if args.kind else None
    payload = recorder.to_dict(since=args.since, until=args.until,
                               kinds=kinds)
    _emit_text(json.dumps(payload, sort_keys=True,
                          separators=(",", ":")),
               args.out, "flight dump")
    return 0


def _cmd_incident(args) -> int:
    from .obs.incident import (
        alert_trigger_bundle,
        bundle_to_json,
        oracle_trigger_bundle,
        rollback_trigger_bundle,
        run_trigger_matrix,
        shard_loss_trigger_bundle,
    )

    if args.matrix:
        bundle = run_trigger_matrix(seed=args.seed)
    else:
        builder = {
            "alert": alert_trigger_bundle,
            "rollback": rollback_trigger_bundle,
            "shard-loss": lambda seed: shard_loss_trigger_bundle(
                seed=101 + seed),
            "oracle": lambda seed: oracle_trigger_bundle(seed=101 + seed),
        }[args.trigger]
        bundle = builder(seed=args.seed)
    _emit_text(bundle_to_json(bundle, indent=args.indent or None),
               args.out, "incident bundle")
    return 0


def _emit_text(text: str, out, label: str) -> None:
    """Write an export to a file (with a note) or stdout."""
    if not text.endswith("\n"):
        text += "\n"
    if out:
        with open(out, "w") as handle:
            handle.write(text)
        print(f"{label} written to {out}")
    else:
        print(text, end="")


def _cmd_spans(args) -> int:
    import json

    from .obs import LATENCY_METRICS, run_observed_world

    world = run_observed_world(seed=args.seed)
    tracker = world.obs.spans
    if args.summary:
        text = json.dumps({
            "balance": tracker.balance(),
            "anomalies": tracker.anomalies,
            "shed": tracker.shed,
            "kinds": tracker.kinds(),
            "stages": tracker.stages(),
            "latency": {
                metric: {
                    "count": tracker.latency_count(metric),
                    "median": tracker.latency_median(metric),
                }
                for metric in sorted(LATENCY_METRICS)
            },
        }, indent=2, sort_keys=True)
    elif args.jsonl:
        text = tracker.to_jsonl(limit=args.limit)
    else:
        text = tracker.to_json(limit=args.limit, indent=2)
    _emit_text(text, args.out, "span export")
    return 0


def _cmd_timeline(args) -> int:
    from .obs import run_observed_world

    world = run_observed_world(seed=args.seed, scrape_interval=args.interval)
    if args.format == "jsonl":
        text = world.timeline.to_jsonl()
    else:
        text = world.timeline.to_json(indent=2)
    _emit_text(text, args.out, f"timeline ({world.timeline.ticks} ticks)")
    return 0


def _cmd_alerts(args) -> int:
    import json

    from .obs import run_observed_world

    world = run_observed_world(seed=args.seed)
    if args.transitions:
        text = "\n".join(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in world.alerts.transitions
        )
    else:
        text = world.alerts.to_json(indent=2)
    _emit_text(text, args.out, "alert export")
    return 0


def _cmd_resilience_report(args) -> int:
    """Exercise the resilience layer end to end and emit one JSON blob:
    gateway health transitions under chaos, the PMTU fallback chain's
    retry counters, and a caravan-negotiation round."""
    import json

    from .chaos import run_scenario
    from .core import GatewayConfig, PXGateway
    from .net import Topology
    from .pmtud import FPmtudDaemon, Plpmtud, ProbeEchoDaemon
    from .resilience import BackoffPolicy, CaravanNegotiator, ResilientPmtud

    # 1. A chaos scenario with the health monitor attached.
    result = run_scenario(args.profile, args.seed)

    # 2. The discovery fallback chain: a clean path (F-PMTUD wins) and
    #    a fragment blackhole (retries, then PLPMTUD) share one resolver
    #    so the counters show the whole chain.
    topo = Topology()
    client = topo.add_host("client")
    clean = topo.add_host("clean")
    dark = topo.add_host("dark")
    r0 = topo.add_router("r0")
    r1 = topo.add_router("r1", filter_fragments=True)
    topo.link(client, r0, mtu=9000, delay=0.0005)
    topo.link(r0, clean, mtu=1400, delay=0.0005)
    topo.link(r0, r1, mtu=1400, delay=0.0005)
    topo.link(r1, dark, mtu=1400, delay=0.0005)
    topo.build_routes()
    for server in (clean, dark):
        FPmtudDaemon(server)
        ProbeEchoDaemon(server)
    resolver = ResilientPmtud(
        client,
        backoff=BackoffPolicy(initial=0.05, multiplier=2.0, max_delay=0.5,
                              jitter=0.0, max_attempts=2),
        fpmtud_timeout=0.2,
        plpmtud=Plpmtud(client, probe_timeout=0.2),
    )
    outcomes = []
    resolver.discover(clean.ip, 9000, outcomes.append)
    resolver.discover(dark.ip, 9000, outcomes.append)
    topo.run(until=30.0)

    # 3. One caravan-negotiation round: a capable inside peer and a
    #    silent (un-upgraded) outside peer.
    neg_topo = Topology()
    inside = neg_topo.add_host("inside")
    outside = neg_topo.add_host("outside")
    gateway = PXGateway(neg_topo.sim, "pxgw", config=GatewayConfig())
    neg_topo.add_node(gateway)
    neg_topo.link(inside, gateway, mtu=9000)
    neg_topo.link(gateway, outside, mtu=1500)
    neg_topo.build_routes()
    inside.enable_caravan_stack(9000)
    negotiator = CaravanNegotiator(
        gateway,
        query_timeout=0.1,
        backoff=BackoffPolicy(initial=0.05, multiplier=2.0, max_delay=0.5,
                              jitter=0.0, max_attempts=2),
    )
    negotiator.allow_caravan(inside.ip, neg_topo.sim.now)
    negotiator.allow_caravan(outside.ip, neg_topo.sim.now)
    neg_topo.run(until=2.0)

    report = {
        "scenario": {
            "profile": result.profile,
            "seed": result.seed,
            "ok": result.ok,
            "violations": result.violations,
            "faults_fired": result.faults_fired,
        },
        "health": result.notes.get("health"),
        "discovery": {
            "outcomes": [
                {"pmtu": o.pmtu, "source": o.source,
                 "fpmtud_attempts": o.fpmtud_attempts,
                 "fpmtud_timeouts": o.fpmtud_timeouts,
                 "elapsed": round(o.elapsed, 4), "trail": o.trail}
                for o in outcomes
            ],
            "counters": resolver.summary(),
        },
        "negotiation": negotiator.summary(),
    }
    print(json.dumps(report, indent=args.indent or None))
    return 0


def _cmd_attacks(args) -> int:
    import json

    from .chaos.attacks import ATTACK_SCENARIOS, run_differential

    names = [args.scenario] if args.scenario else sorted(ATTACK_SCENARIOS)
    rows = []
    for name in names:
        if name not in ATTACK_SCENARIOS:
            print(f"unknown scenario {name!r}; have {sorted(ATTACK_SCENARIOS)}",
                  file=sys.stderr)
            return 2
        hardened, unhardened = run_differential(name, args.seed)
        rows.append((name, hardened, unhardened))

    if args.json:
        payload = [
            {
                "scenario": name,
                "seed": args.seed,
                "hardened": {
                    "compromised": h.compromised,
                    "estimates": h.estimates,
                    "violations": h.violations,
                    "alerts_fired": h.alerts.get("fired", []),
                    "digest": h.digest,
                },
                "unhardened": {
                    "compromised": u.compromised,
                    "estimates": u.estimates,
                    "alerts_fired": u.alerts.get("fired", []),
                    "digest": u.digest,
                },
            }
            for name, h, u in rows
        ]
        print(json.dumps(payload, indent=2))
    else:
        print(f"{'scenario':26s} {'hardened':10s} {'unhardened':12s} verdict")
        for name, h, u in rows:
            h_word = "COMPROMISED" if h.compromised else "safe"
            u_word = "COMPROMISED" if u.compromised else "safe"
            defended = (not h.compromised) and (
                u.compromised or name == "benign-control")
            verdict = "defended" if defended else "NOT DEFENDED"
            print(f"{name:26s} {h_word:10s} {u_word:12s} {verdict}")
    bad = [name for name, h, u in rows
           if h.compromised or (not u.compromised and name != "benign-control")]
    return 1 if bad else 0


def _canary_evidence(report: dict) -> str:
    """One-line evidence summary for the failing stage (or '-')."""
    for stage in report["stages"]:
        if stage["status"] == "fail":
            cited = list(stage["alerts"])
            cited += [b["guardrail"] for b in stage["guardrail_breaches"]]
            return f"{stage['name']}: {', '.join(cited)}"
    return "-"


def _cmd_canary(args) -> int:
    from .ops import incident_names, run_corpus, run_incident
    from .ops.canary import report_to_json

    if args.corpus:
        corpus = run_corpus(seed=args.seed)
        if args.json:
            _emit_text(report_to_json(corpus), args.out, "canary corpus report")
        else:
            lines = [f"{'incident':34s} {'verdict':12s} {'expected':12s} "
                     f"{'evidence':44s} ok"]
            for report in corpus["incidents"]:
                lines.append(
                    f"{report['incident']:34s} {report['verdict']:12s} "
                    f"{report['expected']:12s} {_canary_evidence(report):44s} "
                    f"{'ok' if report['ok'] else 'MISMATCH'}"
                )
            _emit_text("\n".join(lines), args.out, "canary corpus table")
        return 0 if corpus["ok"] else 1

    if args.incident not in incident_names():
        print(f"unknown incident {args.incident!r}; "
              f"have {list(incident_names())}", file=sys.stderr)
        return 2
    report = run_incident(args.incident, seed=args.seed)
    if args.json:
        _emit_text(report_to_json(report), args.out, "canary report")
    else:
        lines = [
            f"incident : {report['incident']} (expected {report['expected']})",
            f"baseline : {report['baseline']['name']}",
            f"candidate: {report['candidate']['name']}",
            f"{'stage':12s} {'fraction':>8s} {'horizon':>8s} {'status':12s} "
            f"evidence",
        ]
        for stage in report["stages"]:
            cited = list(stage["alerts"])
            cited += [b["guardrail"] for b in stage["guardrail_breaches"]]
            lines.append(
                f"{stage['name']:12s} {stage['fraction']:8.0%} "
                f"{stage['observe_until']:7.1f}s {stage['status']:12s} "
                f"{', '.join(cited) if cited else '-'}"
            )
        lines.append(f"verdict  : {report['verdict']}")
        if report["rollback"] is not None:
            rollback = report["rollback"]
            lines.append(
                f"rollback : {rollback['mechanism']} "
                f"(zero_loss={rollback['zero_loss']}, "
                f"takeovers={rollback['takeovers']})"
            )
        _emit_text("\n".join(lines), args.out, "canary report")
    return 1 if report["verdict"] == "ROLLED_BACK" else 0


def _cmd_fleet(args) -> int:
    import json

    from .fleet.chaos import run_loss_scenario
    from .perf import fleet_world_report, format_fleet_report

    try:
        worker_counts = tuple(
            int(piece) for piece in args.workers.split(",") if piece.strip()
        )
    except ValueError:
        print(f"bad --workers {args.workers!r}", file=sys.stderr)
        return 2
    report = fleet_world_report(
        worker_counts=worker_counts, quick=args.quick, seed=args.seed,
    )
    failures = 0
    if args.min_speedup_4 > 0:
        for row in report["rows"]:
            if row["shards"] == 4 and row["speedup_vs_1"] < args.min_speedup_4:
                print(
                    f"FAIL: modeled speedup at 4 shards "
                    f"{row['speedup_vs_1']:.2f}x < {args.min_speedup_4}x",
                    file=sys.stderr,
                )
                failures += 1

    drill_results = []
    if args.loss_drill:
        for profile, mode in (("mixed", "crash"), ("mixed", "maintenance")):
            result = run_loss_scenario(profile, args.seed, loss_mode=mode)
            drill_results.append(result)
            if not result.ok:
                failures += 1

    if args.json:
        payload = dict(report)
        if drill_results:
            payload["loss_drill"] = [
                {
                    "profile": r.profile, "loss_mode": r.loss_mode,
                    "victim": r.victim, "flows_migrated": r.flows_migrated,
                    "digest": r.digest, "ok": r.ok,
                    "violations": list(r.violations),
                }
                for r in drill_results
            ]
        _emit_text(json.dumps(payload, indent=2), args.out, "fleet report")
    else:
        lines = [format_fleet_report(report)]
        for result in drill_results:
            lines.append(
                f"loss drill ({result.loss_mode}): victim shard "
                f"{result.victim}, {result.flows_migrated} flows migrated, "
                f"{'ok' if result.ok else 'VIOLATIONS: ' + '; '.join(result.violations)}"
            )
        _emit_text("\n".join(lines), args.out, "fleet report")
    return 1 if failures else 0


_COMMANDS = {
    "gateway": _cmd_gateway,
    "fleet": _cmd_fleet,
    "attacks": _cmd_attacks,
    "canary": _cmd_canary,
    "pmtud": _cmd_pmtud,
    "upf": _cmd_upf,
    "survey": _cmd_survey,
    "fig5a": _cmd_fig5a,
    "bench": _cmd_bench,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "flight": _cmd_flight,
    "incident": _cmd_incident,
    "spans": _cmd_spans,
    "timeline": _cmd_timeline,
    "alerts": _cmd_alerts,
    "resilience-report": _cmd_resilience_report,
}


def main(argv: "Optional[List[str]]" = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
