"""Receive queues and NIC-level hairpin forwarding.

A hairpin queue (DPDK's RX→TX wiring inside the NIC) lets PXGW bounce
small/unmergeable flows back out without spending host CPU or PCIe
bandwidth — the "steering of small flows" optimization.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..packet import Packet

__all__ = ["RxQueue", "HairpinQueue"]


class RxQueue:
    """A bounded descriptor ring feeding one worker core."""

    def __init__(self, index: int, capacity: int = 4096):
        self.index = index
        self.capacity = capacity
        self._ring: Deque[Packet] = deque()
        self.enqueued = 0
        self.dropped = 0
        #: High-water mark of ring occupancy (depth gauge for metrics).
        self.peak_depth = 0

    def push(self, packet: Packet) -> bool:
        """NIC-side enqueue; False (and a drop) when the ring is full."""
        if len(self._ring) >= self.capacity:
            self.dropped += 1
            return False
        self._ring.append(packet)
        self.enqueued += 1
        if len(self._ring) > self.peak_depth:
            self.peak_depth = len(self._ring)
        return True

    def poll(self, budget: int = 32) -> List[Packet]:
        """Host-side poll: up to *budget* packets (a NAPI/DPDK burst).

        Dequeues the burst in bulk — one slice of the ring instead of a
        per-packet popleft loop — which is what a real driver does when
        it hands the stack an ``rx_burst`` array.
        """
        ring = self._ring
        depth = len(ring)
        if depth == 0:
            return []
        if depth <= budget:
            batch = list(ring)
            ring.clear()
            return batch
        popleft = ring.popleft
        return [popleft() for _ in range(budget)]

    def __len__(self) -> int:
        return len(self._ring)


class HairpinQueue:
    """NIC-internal RX→TX wiring bypassing the host entirely."""

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self._ring: Deque[Packet] = deque()
        self.forwarded = 0
        self.dropped = 0
        #: High-water mark of ring occupancy (depth gauge for metrics).
        self.peak_depth = 0

    def push(self, packet: Packet) -> bool:
        """Steer a packet into the hairpin; False when full."""
        if len(self._ring) >= self.capacity:
            self.dropped += 1
            return False
        self._ring.append(packet)
        if len(self._ring) > self.peak_depth:
            self.peak_depth = len(self._ring)
        return True

    def drain(self, budget: Optional[int] = None) -> List[Packet]:
        """Packets the NIC transmits directly (no host cycles).

        Bulk dequeue, like :meth:`RxQueue.poll`.
        """
        ring = self._ring
        depth = len(ring)
        if depth == 0:
            return []
        if budget is None or depth <= budget:
            out = list(ring)
            ring.clear()
        else:
            popleft = ring.popleft
            out = [popleft() for _ in range(budget)]
        self.forwarded += len(out)
        return out

    def __len__(self) -> int:
        return len(self._ring)
