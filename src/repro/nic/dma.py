"""DMA traffic models: scatter-gather and header-only DMA.

The header-only mode follows Pismenny et al. (ASPLOS '22): payloads
stay resident in on-NIC memory and only headers cross PCIe into host
DRAM; the datapath manipulates headers and descriptor chains, and the
NIC re-attaches payloads at TX.  For a forwarding middlebox like PXGW
this removes almost all per-byte memory traffic — which is exactly the
1.09 → 1.45 Tbps step in Figure 5a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..packet import Packet

__all__ = ["DmaModel", "ScatterGatherList", "FULL_DMA", "HEADER_ONLY_DMA"]


@dataclass(frozen=True)
class DmaModel:
    """How packet bytes translate into host-memory traffic.

    ``header_factor``/``payload_factor`` count DRAM crossings per byte
    of header/payload over the packet's lifetime in the box (RX write +
    processing read + TX read, minus whatever stays on the NIC).
    """

    name: str
    header_factor: float
    payload_factor: float
    #: Bytes of on-NIC memory a resident payload occupies (capacity
    #: pressure; ConnectX-7 exposes ~2 MB of usable NIC memory).
    nic_memory_per_payload_byte: float = 0.0

    def mem_bytes(self, packet: Packet, size: "float | None" = None) -> float:
        """Host DRAM bytes moved for one packet passing through.

        *size* is the packet's ``total_len`` when the caller already
        computed it.
        """
        header_bytes = packet.ip.header_len + packet.l4_header_len
        total = packet.total_len if size is None else size
        return header_bytes * self.header_factor + (total - header_bytes) * self.payload_factor

    def nic_memory_bytes(self, packet: Packet) -> float:
        """On-NIC memory held while the packet is in flight."""
        header_bytes = packet.ip.header_len + packet.l4_header_len
        return (packet.total_len - header_bytes) * self.nic_memory_per_payload_byte

    def mem_bytes_many(self, packets: "List[Packet]") -> float:
        """Host DRAM bytes moved for a burst of packets.

        Equals ``sum(self.mem_bytes(p) for p in packets)`` but hoists
        the factor loads out of the loop for batch-path callers.
        """
        header_factor = self.header_factor
        payload_factor = self.payload_factor
        total = 0.0
        for packet in packets:
            header_bytes = packet.ip.header_len + packet.l4_header_len
            total += header_bytes * header_factor + (
                packet.total_len - header_bytes
            ) * payload_factor
        return total


#: Conventional scatter-gather DMA: every byte crosses into DRAM on RX,
#: is read once by the datapath (headers more than once), and read
#: again by TX DMA.
FULL_DMA = DmaModel(name="full", header_factor=3.2, payload_factor=2.67)

#: Header-only DMA: payload never enters host DRAM.
HEADER_ONLY_DMA = DmaModel(
    name="header-only",
    header_factor=3.2,
    payload_factor=0.18,
    nic_memory_per_payload_byte=1.0,
)


class ScatterGatherList:
    """A chain of buffer segments composing one outgoing packet.

    PXGW's merge path builds large packets as gather lists instead of
    copying payloads; the list length is what the NIC must walk at TX.
    """

    def __init__(self):
        self._segments: List[bytes] = []

    def append(self, segment: bytes) -> None:
        """Add one buffer segment."""
        self._segments.append(segment)

    def extend(self, segments: List[bytes]) -> None:
        """Add several segments."""
        self._segments.extend(segments)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        return sum(len(segment) for segment in self._segments)

    def linearize(self) -> bytes:
        """Copy into one contiguous buffer (what a copy-based path pays)."""
        return b"".join(self._segments)
