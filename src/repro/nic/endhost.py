"""End-host packet-processing performance models.

:class:`ReceiverModel` runs real arrival streams through the offload
engines (LRO in "NIC hardware" pricing, GRO in software pricing) and
charges a :class:`CycleAccount`; Figures 1b, 1c, and 5c come from
scaling the resulting accounts to the endpoint CPU.  The symmetric
:class:`SenderModel` prices the transmit side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..cpu import DEFAULT_HOST_COSTS, CycleAccount, HostCosts
from ..packet import Packet
from .offloads import TcpCoalescer, UdpGroCoalescer, segment_tcp

__all__ = ["ReceiverConfig", "ReceiverModel", "SenderModel"]


@dataclass(frozen=True)
class ReceiverConfig:
    """Which offloads the receiving host has enabled."""

    lro: bool = False
    gro: bool = False
    udp_gro: bool = False
    lro_contexts: int = 16
    gro_contexts: int = 64
    max_merge_bytes: int = 65535
    #: Packets per NAPI poll; GRO flushes at each batch boundary.
    poll_batch: int = 64
    #: Heavy multi-flow receivers stay in NAPI polling: the per-segment
    #: interrupt/wakeup cost amortizes away (see HostCosts).
    busy_polling: bool = False


class ReceiverModel:
    """Prices an RX packet stream on one core of an end host."""

    def __init__(self, config: ReceiverConfig, costs: HostCosts = DEFAULT_HOST_COSTS):
        self.config = config
        self.costs = costs
        self.account = CycleAccount()
        self.delivered: List[Packet] = []
        self._lro = (
            TcpCoalescer(config.max_merge_bytes, config.lro_contexts) if config.lro else None
        )
        self._gro = (
            TcpCoalescer(config.max_merge_bytes, config.gro_contexts) if config.gro else None
        )
        self._udp_gro = (
            UdpGroCoalescer(config.max_merge_bytes, config.gro_contexts)
            if config.udp_gro
            else None
        )

    # ------------------------------------------------------------------
    def process(self, arrivals: Iterable[Packet]) -> List[Packet]:
        """Run *arrivals* through the RX path; returns delivered segments."""
        batch_fill = 0
        for packet in arrivals:
            self._rx_one(packet)
            batch_fill += 1
            if batch_fill >= self.config.poll_batch:
                self._end_poll()
                batch_fill = 0
        self._end_poll()
        return self.delivered

    def _rx_one(self, packet: Packet) -> None:
        if self._lro is not None and packet.is_tcp:
            # NIC hardware merges before DMA: no host cost per wire packet.
            for merged in self._lro.feed(packet):
                self._host_sees(merged)
            return
        self._host_sees(packet, from_wire=True)

    def _host_sees(self, packet: Packet, from_wire: bool = False) -> None:
        costs = self.costs
        self.account.charge(costs.driver_rx_per_packet, category="driver")
        if from_wire and self._gro is not None and packet.is_tcp:
            self.account.charge(costs.gro_per_packet, category="gro")
            for merged in self._gro.feed(packet):
                self._deliver(merged)
            return
        if from_wire and self._udp_gro is not None and packet.is_udp:
            self.account.charge(costs.gro_per_packet, category="gro")
            for merged in self._udp_gro.feed(packet):
                self._deliver(merged)
            return
        self._deliver(packet)

    def _end_poll(self) -> None:
        if self._gro is not None:
            for merged in self._gro.flush():
                self._deliver(merged)
        if self._udp_gro is not None:
            for merged in self._udp_gro.flush():
                self._deliver(merged)
        if self._lro is not None:
            for merged in self._lro.flush():
                self._host_sees(merged)

    def _deliver(self, packet: Packet) -> None:
        costs = self.costs
        payload = len(packet.payload)
        if packet.is_tcp and payload == 0:
            self.account.charge(costs.ack_rx_per_packet, category="ack")
            self.account.note_packet(0)
            self.delivered.append(packet)
            return
        if packet.is_udp:
            self.account.charge(costs.udp_per_datagram, category="stack")
            inner = packet.meta.get("merged_from", 0) or packet.meta.get("caravan_inner", 0)
            if inner:
                self.account.charge(
                    costs.caravan_parse_per_datagram * inner, category="parse"
                )
        else:
            self.account.charge(costs.stack_per_segment, category="stack")
        if not self.config.busy_polling:
            self.account.charge(costs.wakeup_per_segment, category="wakeup")
        self.account.charge(
            costs.copy_per_byte * payload,
            mem_bytes=costs.mem_factor_rx * payload,
            category="copy",
        )
        self.account.note_packet(payload)
        self.delivered.append(packet)

    # ------------------------------------------------------------------
    @property
    def aggregation_factor(self) -> float:
        """Mean wire packets per delivered data segment."""
        data_segments = [p for p in self.delivered if len(p.payload) > 0]
        if not data_segments:
            return 0.0
        wire_packets = sum(p.meta.get("merged_from", 1) for p in data_segments)
        return wire_packets / len(data_segments)


class SenderModel:
    """Prices the transmit side of a bulk TCP sender."""

    def __init__(
        self,
        mss: int,
        tso: bool = True,
        chunk_bytes: int = 65536,
        costs: HostCosts = DEFAULT_HOST_COSTS,
    ):
        if mss <= 0:
            raise ValueError(f"bad MSS {mss}")
        self.mss = mss
        self.tso = tso
        self.chunk_bytes = chunk_bytes
        self.costs = costs
        self.account = CycleAccount()

    def send(self, template: Packet, total_bytes: int) -> List[Packet]:
        """Emit *total_bytes* as wire packets, charging TX costs.

        *template* provides addressing/ports; payload content is a
        repeating pattern (contents do not affect any result here).
        """
        packets: List[Packet] = []
        remaining = total_bytes
        seq = template.tcp.seq if template.is_tcp else 0
        while remaining > 0:
            chunk_len = min(self.chunk_bytes, remaining)
            self.account.charge(
                self.costs.tx_stack_per_chunk + self.costs.tx_copy_per_byte * chunk_len,
                mem_bytes=chunk_len,
                category="tx-stack",
            )
            chunk = template.copy()
            chunk.payload = bytes(chunk_len)
            chunk.tcp.seq = seq & 0xFFFFFFFF
            segments = segment_tcp(chunk, self.mss)
            if not self.tso:
                self.account.charge(
                    self.costs.tx_sw_segment_per_packet * len(segments), category="tx-gso"
                )
            for segment in segments:
                self.account.note_packet(len(segment.payload))
            packets.extend(segments)
            seq += chunk_len
            remaining -= chunk_len
        return packets
