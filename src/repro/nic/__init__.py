"""NIC offload models: LRO/GRO/TSO, RSS, DMA, queues, end-host pricing."""

from .dma import FULL_DMA, HEADER_ONLY_DMA, DmaModel, ScatterGatherList
from .endhost import ReceiverConfig, ReceiverModel, SenderModel
from .offloads import MergeContext, TcpCoalescer, UdpGroCoalescer, segment_tcp
from .queues import HairpinQueue, RxQueue
from .rss import DEFAULT_RSS_KEY, RssDistributor, toeplitz_hash

__all__ = [
    "TcpCoalescer",
    "UdpGroCoalescer",
    "MergeContext",
    "segment_tcp",
    "RssDistributor",
    "toeplitz_hash",
    "DEFAULT_RSS_KEY",
    "DmaModel",
    "ScatterGatherList",
    "FULL_DMA",
    "HEADER_ONLY_DMA",
    "RxQueue",
    "HairpinQueue",
    "ReceiverConfig",
    "ReceiverModel",
    "SenderModel",
]
