"""NIC/kernel offload engines: LRO, GRO, TSO/GSO, and UDP GRO.

These are *behavioural* models operating on real :class:`Packet`
objects: they decide what gets merged or split and emit byte-accurate
results.  Cycle costs are charged by their callers (the end-host
receiver model, the PXGW datapath) so the same engine can be priced as
NIC hardware (LRO: free per wire packet) or software (GRO: per-packet
merge cost).

The TCP coalescing rules follow Linux GRO semantics closely enough for
the paper's arguments to hold:

* only data segments of the same flow with exactly contiguous sequence
  numbers merge;
* SYN/FIN/RST/URG segments, pure ACKs, and IP fragments never merge;
* PSH flushes the context right after appending;
* out-of-order arrival flushes the existing context;
* a bounded number of concurrent merge contexts models NIC LRO session
  limits — eviction under flow interleaving is precisely what degrades
  aggregation in Figure 1c.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..packet import FlowKey, Packet, TCPFlags
from ..packet.builder import next_ip_id

__all__ = ["TcpCoalescer", "UdpGroCoalescer", "segment_tcp", "MergeContext"]

#: Flags that must never be merged into a coalesced segment.
_NO_MERGE_FLAGS = TCPFlags.SYN | TCPFlags.FIN | TCPFlags.RST | TCPFlags.URG


class MergeContext:
    """An in-progress coalesce of one flow's contiguous segments."""

    __slots__ = ("first", "chunks", "bytes", "next_seq", "count", "created_at", "last_at",
                 "last_ack", "last_window", "psh_seen")

    def __init__(self, packet: Packet, now: float):
        self.first = packet
        self.chunks: List[bytes] = [packet.payload]
        self.bytes = len(packet.payload)
        self.next_seq = (packet.tcp.seq + len(packet.payload)) & 0xFFFFFFFF
        self.count = 1
        self.created_at = now
        self.last_at = now
        self.last_ack = packet.tcp.ack
        self.last_window = packet.tcp.window
        self.psh_seen = bool(packet.tcp.flags & TCPFlags.PSH)

    def append(self, packet: Packet, now: float) -> None:
        self.chunks.append(packet.payload)
        self.bytes += len(packet.payload)
        self.next_seq = (packet.tcp.seq + len(packet.payload)) & 0xFFFFFFFF
        self.count += 1
        self.last_at = now
        self.last_ack = packet.tcp.ack
        self.last_window = packet.tcp.window
        self.psh_seen = self.psh_seen or bool(packet.tcp.flags & TCPFlags.PSH)

    def to_packet(self) -> Packet:
        """Materialize the merged segment."""
        if self.count == 1:
            return self.first
        merged = self.first.copy()
        merged.payload = b"".join(self.chunks)
        merged.tcp.ack = self.last_ack
        merged.tcp.window = self.last_window
        if self.psh_seen:
            merged.tcp.flags |= TCPFlags.PSH
        merged.ip.total_length = merged.ip.header_len + merged.tcp.header_len + len(merged.payload)
        merged.meta["merged_from"] = self.count
        return merged


class TcpCoalescer:
    """LRO/GRO-style TCP coalescing with bounded contexts.

    ``max_bytes`` bounds the merged payload (64 KB for LRO/GRO, the
    iMTU payload budget inside PXGW).  ``max_contexts`` models the
    NIC's concurrent LRO session limit.
    """

    def __init__(self, max_bytes: int = 65535, max_contexts: int = 16):
        self.max_bytes = max_bytes
        self.max_contexts = max_contexts
        self._contexts: "OrderedDict[FlowKey, MergeContext]" = OrderedDict()
        self.stats_merged_packets = 0
        self.stats_flushes = 0
        self.stats_evictions = 0

    def __len__(self) -> int:
        return len(self._contexts)

    def feed(self, packet: Packet, now: float = 0.0) -> List[Packet]:
        """Offer one packet; returns packets emitted downstream now."""
        if not packet.is_tcp or packet.is_fragment:
            return [packet]
        tcp = packet.tcp
        key = packet.flow_key()

        if tcp.flags & _NO_MERGE_FLAGS:
            # Control segments flush the flow's context and pass through.
            return self._flush_key(key) + [packet]

        if not packet.payload:
            # Pure ACKs pass through without disturbing merge state.
            return [packet]

        context = self._contexts.get(key)
        if context is not None:
            if (
                tcp.seq == context.next_seq
                and context.bytes + len(packet.payload) <= self.max_bytes
            ):
                context.append(packet, now)
                self._contexts.move_to_end(key)
                self.stats_merged_packets += 1
                if context.bytes >= self.max_bytes or tcp.psh:
                    return self._flush_key(key)
                return []
            # Out-of-order, overlap, or overflow: flush and restart.
            emitted = self._flush_key(key)
            emitted.extend(self._start(key, packet, now))
            return emitted

        return self._start(key, packet, now)

    def _start(self, key: FlowKey, packet: Packet, now: float) -> List[Packet]:
        emitted: List[Packet] = []
        if len(self._contexts) >= self.max_contexts:
            evicted_key, evicted = self._contexts.popitem(last=False)
            emitted.append(evicted.to_packet())
            self.stats_evictions += 1
            self.stats_flushes += 1
        context = MergeContext(packet, now)
        if packet.tcp.psh or len(packet.payload) >= self.max_bytes:
            emitted.append(context.to_packet())
            self.stats_flushes += 1
            return emitted
        self._contexts[key] = context
        return emitted

    def _flush_key(self, key: Optional[FlowKey]) -> List[Packet]:
        context = self._contexts.pop(key, None) if key is not None else None
        if context is None:
            return []
        self.stats_flushes += 1
        return [context.to_packet()]

    def flush(self, key: Optional[FlowKey] = None) -> List[Packet]:
        """Flush one flow's context, or all contexts when key is None."""
        if key is not None:
            return self._flush_key(key)
        emitted = [context.to_packet() for context in self._contexts.values()]
        self.stats_flushes += len(self._contexts)
        self._contexts.clear()
        return emitted

    def flush_older_than(self, now: float, max_age: float) -> List[Packet]:
        """Flush contexts idle longer than *max_age* (the LRO timer)."""
        stale = [
            key
            for key, context in self._contexts.items()
            if now - context.last_at >= max_age
        ]
        emitted = []
        for key in stale:
            emitted.extend(self._flush_key(key))
        return emitted

    def pending_packets(self) -> int:
        """Wire packets currently held inside contexts."""
        return sum(context.count for context in self._contexts.values())


class UdpGroCoalescer:
    """Linux UDP_GRO semantics: merge same-flow datagrams of equal length.

    Only *consecutive* datagrams merge, all inner payloads except the
    last must share one length, and the bundle is delivered as a single
    buffer with the datagram size carried out-of-band (``gso_size``).
    PX-caravan generalizes this; the coalescer here is what modified
    end hosts use to consume caravan bundles cheaply.
    """

    def __init__(self, max_bytes: int = 65535, max_contexts: int = 16):
        self.max_bytes = max_bytes
        self.max_contexts = max_contexts
        self._contexts: "OrderedDict[FlowKey, List[Packet]]" = OrderedDict()

    def feed(self, packet: Packet, now: float = 0.0) -> List[Packet]:
        """Offer one datagram; returns bundles emitted downstream."""
        if not packet.is_udp or packet.is_fragment:
            return [packet]
        key = packet.flow_key()
        held = self._contexts.get(key)
        if held is not None:
            segment_size = len(held[0].payload)
            if (
                len(packet.payload) <= segment_size
                and sum(len(p.payload) for p in held) + len(packet.payload) <= self.max_bytes
            ):
                held.append(packet)
                self._contexts.move_to_end(key)
                # A short datagram terminates the bundle (UDP_GRO rule).
                if len(packet.payload) < segment_size:
                    return self._flush_key(key)
                return []
            emitted = self._flush_key(key)
            emitted.extend(self._start(key, packet))
            return emitted
        return self._start(key, packet)

    def _start(self, key: FlowKey, packet: Packet) -> List[Packet]:
        emitted: List[Packet] = []
        if len(self._contexts) >= self.max_contexts:
            _evicted_key, evicted = self._contexts.popitem(last=False)
            emitted.append(self._bundle(evicted))
        self._contexts[key] = [packet]
        return emitted

    def _flush_key(self, key: FlowKey) -> List[Packet]:
        held = self._contexts.pop(key, None)
        if not held:
            return []
        return [self._bundle(held)]

    def flush(self) -> List[Packet]:
        """Flush every pending bundle (end of a NAPI poll)."""
        emitted = [self._bundle(held) for held in self._contexts.values()]
        self._contexts.clear()
        return emitted

    @staticmethod
    def _bundle(held: List[Packet]) -> Packet:
        if len(held) == 1:
            return held[0]
        merged = held[0].copy()
        merged.payload = b"".join(p.payload for p in held)
        merged.ip.total_length = merged.ip.header_len + 8 + len(merged.payload)
        merged.meta["merged_from"] = len(held)
        merged.meta["gso_size"] = len(held[0].payload)
        return merged


def segment_tcp(packet: Packet, mss: int) -> List[Packet]:
    """TSO/GSO: split a large TCP segment into MSS-sized segments.

    Sequence numbers advance per chunk; FIN/PSH ride only on the last
    segment and CWR only on the first, per the offload conventions.
    Fresh IP IDs are allocated for the tail segments, as NICs do.
    """
    if not packet.is_tcp:
        raise ValueError("segment_tcp needs a TCP packet")
    if mss <= 0:
        raise ValueError(f"bad MSS {mss}")
    if len(packet.payload) <= mss:
        return [packet]

    segments: List[Packet] = []
    payload = packet.payload
    total = len(payload)
    base_seq = packet.tcp.seq
    base_flags = packet.tcp.flags
    cursor = 0
    while cursor < total:
        chunk = payload[cursor : cursor + mss]
        segment = packet.copy()
        tcp = segment.tcp
        ip = segment.ip
        segment.payload = chunk
        tcp.seq = (base_seq + cursor) & 0xFFFFFFFF
        is_first = cursor == 0
        is_last = cursor + len(chunk) >= total
        flags = base_flags
        if not is_last:
            flags &= ~(TCPFlags.FIN | TCPFlags.PSH)
        if not is_first:
            flags &= ~TCPFlags.CWR
            ip.identification = next_ip_id()
        tcp.flags = flags
        ip.total_length = ip.header_len + tcp.header_len + len(chunk)
        segment.meta["split_from"] = total  # original payload size
        segments.append(segment)
        cursor += len(chunk)
    return segments
