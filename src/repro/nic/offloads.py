"""NIC/kernel offload engines: LRO, GRO, TSO/GSO, and UDP GRO.

These are *behavioural* models operating on real :class:`Packet`
objects: they decide what gets merged or split and emit byte-accurate
results.  Cycle costs are charged by their callers (the end-host
receiver model, the PXGW datapath) so the same engine can be priced as
NIC hardware (LRO: free per wire packet) or software (GRO: per-packet
merge cost).

The TCP coalescing rules follow Linux GRO semantics closely enough for
the paper's arguments to hold:

* only data segments of the same flow with exactly contiguous sequence
  numbers merge;
* SYN/FIN/RST/URG segments, pure ACKs, and IP fragments never merge;
* PSH flushes the context right after appending;
* out-of-order arrival flushes the existing context;
* a bounded number of concurrent merge contexts models NIC LRO session
  limits — eviction under flow interleaving is precisely what degrades
  aggregation in Figure 1c.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..packet import FlowKey, IPv4Header, Packet, TCPFlags, TCPHeader
from ..packet.builder import next_ip_id

__all__ = ["TcpCoalescer", "UdpGroCoalescer", "segment_tcp", "MergeContext"]

#: Flags that must never be merged into a coalesced segment.
_NO_MERGE_FLAGS = TCPFlags.SYN | TCPFlags.FIN | TCPFlags.RST | TCPFlags.URG


class MergeContext:
    """An in-progress coalesce of one flow's contiguous segments."""

    __slots__ = ("first", "chunks", "bytes", "next_seq", "count", "created_at", "last_at",
                 "last_ack", "last_window", "psh_seen")

    def __init__(self, packet: Packet, now: float):
        self.first = packet
        self.chunks: List[bytes] = [packet.payload]
        self.bytes = len(packet.payload)
        self.next_seq = (packet.tcp.seq + len(packet.payload)) & 0xFFFFFFFF
        self.count = 1
        self.created_at = now
        self.last_at = now
        self.last_ack = packet.tcp.ack
        self.last_window = packet.tcp.window
        self.psh_seen = bool(packet.tcp.flags & TCPFlags.PSH)

    def append(self, packet: Packet, now: float) -> None:
        self.chunks.append(packet.payload)
        self.bytes += len(packet.payload)
        self.next_seq = (packet.tcp.seq + len(packet.payload)) & 0xFFFFFFFF
        self.count += 1
        self.last_at = now
        self.last_ack = packet.tcp.ack
        self.last_window = packet.tcp.window
        self.psh_seen = self.psh_seen or bool(packet.tcp.flags & TCPFlags.PSH)

    def to_packet(self) -> Packet:
        """Materialize the merged segment."""
        if self.count == 1:
            return self.first
        merged = self.first.copy()
        merged.payload = b"".join(self.chunks)
        merged.tcp.ack = self.last_ack
        merged.tcp.window = self.last_window
        if self.psh_seen:
            merged.tcp.flags |= TCPFlags.PSH
        merged.ip.total_length = merged.ip.header_len + merged.tcp.header_len + len(merged.payload)
        merged.meta["merged_from"] = self.count
        return merged


class TcpCoalescer:
    """LRO/GRO-style TCP coalescing with bounded contexts.

    ``max_bytes`` bounds the merged payload (64 KB for LRO/GRO, the
    iMTU payload budget inside PXGW).  ``max_contexts`` models the
    NIC's concurrent LRO session limit.
    """

    def __init__(self, max_bytes: int = 65535, max_contexts: int = 16):
        self.max_bytes = max_bytes
        self.max_contexts = max_contexts
        self._contexts: "OrderedDict[FlowKey, MergeContext]" = OrderedDict()
        self.stats_merged_packets = 0
        self.stats_flushes = 0
        self.stats_evictions = 0

    def __len__(self) -> int:
        return len(self._contexts)

    def feed(self, packet: Packet, now: float = 0.0) -> List[Packet]:
        """Offer one packet; returns packets emitted downstream now."""
        if not packet.is_tcp or packet.is_fragment:
            return [packet]
        tcp = packet.tcp
        key = packet.flow_key()

        if tcp.flags & _NO_MERGE_FLAGS:
            # Control segments flush the flow's context and pass through.
            return self._flush_key(key) + [packet]

        if not packet.payload:
            # Pure ACKs pass through without disturbing merge state.
            return [packet]

        context = self._contexts.get(key)
        if context is not None:
            if (
                tcp.seq == context.next_seq
                and context.bytes + len(packet.payload) <= self.max_bytes
            ):
                context.append(packet, now)
                self._contexts.move_to_end(key)
                self.stats_merged_packets += 1
                if context.bytes >= self.max_bytes or tcp.psh:
                    return self._flush_key(key)
                return []
            # Out-of-order, overlap, or overflow: flush and restart.
            emitted = self._flush_key(key)
            emitted.extend(self._start(key, packet, now))
            return emitted

        return self._start(key, packet, now)

    def _start(self, key: FlowKey, packet: Packet, now: float) -> List[Packet]:
        emitted: List[Packet] = []
        if len(self._contexts) >= self.max_contexts:
            evicted_key, evicted = self._contexts.popitem(last=False)
            emitted.append(evicted.to_packet())
            self.stats_evictions += 1
            self.stats_flushes += 1
        context = MergeContext(packet, now)
        if packet.tcp.psh or len(packet.payload) >= self.max_bytes:
            emitted.append(context.to_packet())
            self.stats_flushes += 1
            return emitted
        self._contexts[key] = context
        return emitted

    def _flush_key(self, key: Optional[FlowKey]) -> List[Packet]:
        context = self._contexts.pop(key, None) if key is not None else None
        if context is None:
            return []
        self.stats_flushes += 1
        return [context.to_packet()]

    def flush(self, key: Optional[FlowKey] = None) -> List[Packet]:
        """Flush one flow's context, or all contexts when key is None."""
        if key is not None:
            return self._flush_key(key)
        emitted = [context.to_packet() for context in self._contexts.values()]
        self.stats_flushes += len(self._contexts)
        self._contexts.clear()
        return emitted

    def flush_older_than(self, now: float, max_age: float) -> List[Packet]:
        """Flush contexts idle longer than *max_age* (the LRO timer)."""
        stale = [
            key
            for key, context in self._contexts.items()
            if now - context.last_at >= max_age
        ]
        emitted = []
        for key in stale:
            emitted.extend(self._flush_key(key))
        return emitted

    def pending_packets(self) -> int:
        """Wire packets currently held inside contexts."""
        return sum(context.count for context in self._contexts.values())


class UdpGroCoalescer:
    """Linux UDP_GRO semantics: merge same-flow datagrams of equal length.

    Only *consecutive* datagrams merge, all inner payloads except the
    last must share one length, and the bundle is delivered as a single
    buffer with the datagram size carried out-of-band (``gso_size``).
    PX-caravan generalizes this; the coalescer here is what modified
    end hosts use to consume caravan bundles cheaply.
    """

    def __init__(self, max_bytes: int = 65535, max_contexts: int = 16):
        self.max_bytes = max_bytes
        self.max_contexts = max_contexts
        self._contexts: "OrderedDict[FlowKey, List[Packet]]" = OrderedDict()

    def feed(self, packet: Packet, now: float = 0.0) -> List[Packet]:
        """Offer one datagram; returns bundles emitted downstream."""
        if not packet.is_udp or packet.is_fragment:
            return [packet]
        key = packet.flow_key()
        held = self._contexts.get(key)
        if held is not None:
            segment_size = len(held[0].payload)
            if (
                len(packet.payload) <= segment_size
                and sum(len(p.payload) for p in held) + len(packet.payload) <= self.max_bytes
            ):
                held.append(packet)
                self._contexts.move_to_end(key)
                # A short datagram terminates the bundle (UDP_GRO rule).
                if len(packet.payload) < segment_size:
                    return self._flush_key(key)
                return []
            emitted = self._flush_key(key)
            emitted.extend(self._start(key, packet))
            return emitted
        return self._start(key, packet)

    def _start(self, key: FlowKey, packet: Packet) -> List[Packet]:
        emitted: List[Packet] = []
        if len(self._contexts) >= self.max_contexts:
            _evicted_key, evicted = self._contexts.popitem(last=False)
            emitted.append(self._bundle(evicted))
        self._contexts[key] = [packet]
        return emitted

    def _flush_key(self, key: FlowKey) -> List[Packet]:
        held = self._contexts.pop(key, None)
        if not held:
            return []
        return [self._bundle(held)]

    def flush(self) -> List[Packet]:
        """Flush every pending bundle (end of a NAPI poll)."""
        emitted = [self._bundle(held) for held in self._contexts.values()]
        self._contexts.clear()
        return emitted

    @staticmethod
    def _bundle(held: List[Packet]) -> Packet:
        if len(held) == 1:
            return held[0]
        merged = held[0].copy()
        merged.payload = b"".join(p.payload for p in held)
        merged.ip.total_length = merged.ip.header_len + 8 + len(merged.payload)
        merged.meta["merged_from"] = len(held)
        merged.meta["gso_size"] = len(held[0].payload)
        return merged


def segment_tcp(packet: Packet, mss: int) -> List[Packet]:
    """TSO/GSO: split a large TCP segment into MSS-sized segments.

    Sequence numbers advance per chunk; FIN/PSH ride only on the last
    segment and CWR only on the first, per the offload conventions.
    Fresh IP IDs are allocated for the tail segments, as NICs do.
    """
    if not packet.is_tcp:
        raise ValueError("segment_tcp needs a TCP packet")
    if mss <= 0:
        raise ValueError(f"bad MSS {mss}")
    if len(packet.payload) <= mss:
        return [packet]

    # Segments are constructed directly (header fields written once via
    # ``__new__``) rather than copy-then-mutate: on the split-heavy
    # downstream path this loop makes one packet per MSS chunk and was
    # the hottest site in the gateway profile.  Field values, flag
    # rules, and ``next_ip_id()`` draw order are identical to the old
    # copy-based loop, so wire bytes and digests are unchanged.
    segments: List[Packet] = []
    append = segments.append
    payload = packet.payload
    total = len(payload)
    tcp0 = packet.tcp
    ip0 = packet.ip
    base_seq = tcp0.seq
    base_flags = tcp0.flags
    header_len = ip0.header_len + tcp0.header_len
    meta = packet.meta
    timestamp = packet.timestamp
    fkey = packet._fkey  # seq/IP-ID changes never touch the flow key
    tail_flags = base_flags & ~(TCPFlags.FIN | TCPFlags.PSH)
    cursor = 0
    while cursor < total:
        chunk = payload[cursor : cursor + mss]
        chunk_len = len(chunk)
        is_first = cursor == 0
        flags = base_flags if cursor + chunk_len >= total else tail_flags
        if not is_first:
            flags &= ~TCPFlags.CWR
        tcp = TCPHeader.__new__(TCPHeader)
        tcp.src_port = tcp0.src_port
        tcp.dst_port = tcp0.dst_port
        tcp.seq = (base_seq + cursor) & 0xFFFFFFFF
        tcp.ack = tcp0.ack
        tcp.flags = flags
        tcp.window = tcp0.window
        tcp.checksum = tcp0.checksum
        tcp.urgent = tcp0.urgent
        tcp.options = list(tcp0.options)
        ip = IPv4Header.__new__(IPv4Header)
        ip.src = ip0.src
        ip.dst = ip0.dst
        ip.protocol = ip0.protocol
        ip.total_length = header_len + chunk_len
        ip.identification = ip0.identification if is_first else next_ip_id()
        ip.dont_fragment = ip0.dont_fragment
        ip.more_fragments = ip0.more_fragments
        ip.fragment_offset = ip0.fragment_offset
        ip.ttl = ip0.ttl
        ip.tos = ip0.tos
        ip.options = ip0.options
        segment = Packet.__new__(Packet)
        segment.ip = ip
        segment.l4 = tcp
        segment.payload = chunk
        segment.timestamp = timestamp
        seg_meta = dict(meta)
        seg_meta["split_from"] = total  # original payload size
        segment.meta = seg_meta
        segment._fkey = fkey
        segment._l4_shared = False
        append(segment)
        cursor += chunk_len
    return segments
