"""Receive-side scaling: Toeplitz hashing over the transport 4-tuple.

PXGW shards flows across worker cores with RSS so each core owns a
disjoint flow set and merge state needs no locking.  The hash below is
the real Microsoft Toeplitz construction with the well-known default
key, so flow→queue placement (and its imbalance) matches hardware.
"""

from __future__ import annotations

import struct
from typing import Sequence

from ..packet import FlowKey

__all__ = ["toeplitz_hash", "RssDistributor", "DEFAULT_RSS_KEY"]

#: The 40-byte default RSS key Microsoft published and most NICs ship.
DEFAULT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


def toeplitz_hash(data: bytes, key: bytes = DEFAULT_RSS_KEY) -> int:
    """Compute the 32-bit Toeplitz hash of *data* under *key*."""
    if len(key) < len(data) + 4:
        raise ValueError("RSS key too short for input")
    result = 0
    # For every set input bit, XOR in the 32-bit key window starting at
    # that bit position.
    key_bits = int.from_bytes(key, "big")
    total_key_bits = len(key) * 8
    bit_index = 0
    for byte in data:
        for bit in range(7, -1, -1):
            if byte & (1 << bit):
                shift = total_key_bits - 32 - bit_index
                window = (key_bits >> shift) & 0xFFFFFFFF
                result ^= window
            bit_index += 1
    return result


def flow_hash(key: FlowKey, rss_key: bytes = DEFAULT_RSS_KEY) -> int:
    """RSS hash input for IPv4 TCP/UDP: src ip, dst ip, src port, dst port."""
    data = struct.pack("!IIHH", key.src_ip, key.dst_ip, key.src_port, key.dst_port)
    return toeplitz_hash(data, rss_key)


class RssDistributor:
    """Maps flows onto *queues* receive queues via an indirection table."""

    def __init__(self, queues: int, key: bytes = DEFAULT_RSS_KEY, table_size: int = 128):
        if queues <= 0:
            raise ValueError("need at least one queue")
        self.queues = queues
        self.key = key
        #: The indirection table, round-robin initialized like drivers do.
        self.table = [index % queues for index in range(table_size)]
        self._cache: dict = {}
        #: Steering decisions landed on each queue (cached hits count:
        #: every call is one hardware steering decision).
        self.steered = [0] * queues

    def queue_for(self, flow: FlowKey) -> int:
        """The RX queue index this flow lands on."""
        cached = self._cache.get(flow)
        if cached is not None:
            self.steered[cached] += 1
            return cached
        queue = self.table[flow_hash(flow, self.key) % len(self.table)]
        self._cache[flow] = queue
        self.steered[queue] += 1
        return queue

    def distribution(self, flows: Sequence[FlowKey]) -> "list[int]":
        """Per-queue flow counts for a set of flows (imbalance analysis)."""
        counts = [0] * self.queues
        for flow in flows:
            counts[self.queue_for(flow)] += 1
        return counts
