"""The process-wide metrics registry: counters, gauges, histograms.

Prometheus-style *pull* model: the datapath never touches the registry
on its per-packet fast path.  Instead, instrumented components register
**collectors** — callables that, at scrape time, read the component's
live ad-hoc counters (``GatewayStats``, ``HealthMonitor`` streaks, NIC
ring occupancy, …) and publish them as registry series.  A scrape is
therefore free until somebody asks for one, and attaching a registry to
a running world cannot perturb its behaviour or its chaos digests.

Determinism rules (the chaos corpus and the CI determinism guard rely
on these):

* every value is keyed on **simulation time**, never wall clock;
* series render in sorted ``(name, labels)`` order, so two same-seed
  runs produce byte-identical ``to_prometheus_text()`` output;
* histogram buckets are **fixed log2 bounds** chosen at construction,
  never adapted to data.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LOG2_BUCKETS",
    "default_registry",
]

#: Default histogram bounds: powers of two from 1 B to 128 KiB, which
#: brackets every packet/buffer size the datapath produces (an iMTU
#: caravan tops out below 2**14; merge backlogs below 2**17).
LOG2_BUCKETS: Tuple[int, ...] = tuple(1 << exp for exp in range(18))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(key, value.replace("\\", r"\\").replace('"', r"\""))
        for key, value in labels
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically non-decreasing count (events, packets, bytes)."""

    kind = "counter"

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Pull-model update: publish a component's live running total.

        Collectors own the underlying counter; the registry only mirrors
        it, so (unlike :meth:`inc`) the new total replaces the old one.
        """
        if value < 0:
            raise ValueError(f"counter {self.name} total cannot be negative")
        self.value = value

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        return [(self.name, self.labels, self.value)]


class Gauge:
    """An instantaneous value that may go up and down (depth, mode)."""

    kind = "gauge"

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        return [(self.name, self.labels, self.value)]


class Histogram:
    """A fixed-bucket (log2 by default) distribution of observed values."""

    kind = "histogram"

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        bounds: Optional[Iterable[float]] = None,
    ):
        self.name = name
        self.labels = labels
        chosen = tuple(bounds) if bounds is not None else LOG2_BUCKETS
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.bounds: Tuple[float, ...] = chosen
        self.bucket_counts: List[int] = [0] * (len(chosen) + 1)  # + overflow
        self.sum: float = 0
        self.count: int = 0

    def observe(self, value: float, weight: int = 1) -> None:
        """Record *value* (*weight* times) into its bucket."""
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        self.bucket_counts[index] += weight
        self.sum += value * weight
        self.count += weight

    def load(self, value_counts: Dict[float, int]) -> None:
        """Pull-model update: replace contents from a value→count map.

        Used by collectors mirroring an existing histogram dict (e.g.
        ``GatewayStats.inbound_size_histogram``) idempotently — a second
        scrape must not double-count.
        """
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0
        self.count = 0
        for value, weight in value_counts.items():
            self.observe(value, weight)

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        out: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = []
        cumulative = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            cumulative += bucket
            out.append(
                (
                    self.name + "_bucket",
                    self.labels + (("le", _format_value(bound)),),
                    cumulative,
                )
            )
        cumulative += self.bucket_counts[-1]
        out.append((self.name + "_bucket", self.labels + (("le", "+Inf"),), cumulative))
        out.append((self.name + "_sum", self.labels, self.sum))
        out.append((self.name + "_count", self.labels, cumulative))
        return out


_METRIC_TYPES = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A named collection of metric series plus their collectors.

    One registry per observed world; :func:`default_registry` offers a
    process-wide instance for code that does not thread one through.
    """

    def __init__(self):
        #: family name -> (kind, help text)
        self._families: Dict[str, Tuple[str, str]] = {}
        #: (name, labels) -> instrument
        self._series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------
    # Series creation (get-or-create, idempotent per (name, labels))
    # ------------------------------------------------------------------
    def _instrument(self, kind: str, name: str, help: str, labels: Dict[str, str],
                    **extra):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        family = self._families.get(name)
        if family is None:
            self._families[name] = (kind, help)
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family[0]}, not a {kind}"
            )
        elif help and not family[1]:
            self._families[name] = (kind, help)
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        series = self._series.get(key)
        if series is None:
            series = _METRIC_TYPES[kind](name, key[1], **extra)
            self._series[key] = series
        return series

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        return self._instrument("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Get or create the gauge series ``name{labels}``."""
        return self._instrument("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Iterable[float]] = None,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram series ``name{labels}``."""
        return self._instrument("histogram", name, help, labels, bounds=bounds)

    # ------------------------------------------------------------------
    # Collectors (the pull model)
    # ------------------------------------------------------------------
    def register_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Add a scrape-time callback that publishes live component state."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector (a "scrape")."""
        for collector in self._collectors:
            collector(self)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _sorted_series(self):
        return sorted(self._series.items(), key=lambda item: item[0])

    def series_count(self) -> int:
        """Number of distinct (name, labels) series registered."""
        return len(self._series)

    def to_prometheus_text(self, collect: bool = True) -> str:
        """The registry in Prometheus text exposition format.

        Output is fully sorted, so identical registry contents render
        byte-identically — the determinism guard diffs this string.
        """
        if collect:
            self.collect()
        by_family: Dict[str, List[object]] = {}
        for (name, _labels), series in self._sorted_series():
            by_family.setdefault(name, []).append(series)
        lines: List[str] = []
        for name in sorted(by_family):
            kind, help = self._families[name]
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for series in by_family[name]:
                for sample_name, labels, value in series.samples():
                    lines.append(
                        f"{sample_name}{_format_labels(labels)} {_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, collect: bool = True) -> Dict[str, object]:
        """A JSON-friendly dump: one entry per series, sorted."""
        if collect:
            self.collect()
        out: List[Dict[str, object]] = []
        for (name, labels), series in self._sorted_series():
            entry: Dict[str, object] = {
                "name": name,
                "type": series.kind,
                "labels": dict(labels),
            }
            if isinstance(series, Histogram):
                entry["buckets"] = {
                    _format_value(bound): count
                    for bound, count in zip(series.bounds, series.bucket_counts)
                }
                entry["overflow"] = series.bucket_counts[-1]
                entry["sum"] = series.sum
                entry["count"] = series.count
            else:
                entry["value"] = series.value
            out.append(entry)
        return {"series": out}

    # ------------------------------------------------------------------
    # Snapshot / diff (the bench + chaos-oracle hooks)
    # ------------------------------------------------------------------
    def snapshot(self, collect: bool = True) -> Dict[str, float]:
        """A flat ``series-id -> value`` map of the current registry."""
        if collect:
            self.collect()
        flat: Dict[str, float] = {}
        for (_name, _labels), series in self._sorted_series():
            for sample_name, labels, value in series.samples():
                flat[sample_name + _format_labels(labels)] = value
        return flat

    @staticmethod
    def diff(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
        """Per-series deltas between two :meth:`snapshot` results.

        Series absent on one side diff against zero, so a bench or
        chaos run can report exactly what it moved.
        """
        deltas: Dict[str, float] = {}
        for key in sorted(set(before) | set(after)):
            delta = after.get(key, 0) - before.get(key, 0)
            if delta:
                deltas[key] = delta
        return deltas


_DEFAULT: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MetricsRegistry()
    return _DEFAULT
