"""Packet lifecycle spans: sim-time latency tracking for the PX datapath.

PR 4's registry answers "how many"; this module answers "how long".  A
:class:`SpanTracker` opens a span when a packet enters the gateway and
closes it when the packet (or its merged/split/bundled descendant)
leaves — the difference, in **sim time**, is the gateway residency the
paper's delayed-merging trade-off hinges on (PAPER.md §PXGW: merge
timeout vs. throughput).

Causality across the three shape-changing stages:

* **merge (N→1)** — each mergeable TCP ingress opens a span and
  enqueues ``(span, payload_bytes)`` on a per-flow byte FIFO mirroring
  ``TcpMergeEngine``'s buffers.  A spliced egress consumes its payload
  length head-first from the same FIFO; every parent whose bytes it
  carries closes (outcome ``merged``) and a finished child span of
  kind ``merged`` records the fan-in.
* **split (1→N)** — the ingress closes immediately (stage ``split``)
  and N finished ``split-segment`` children point back at it.
* **caravan (N→1→N)** — bundleable datagrams enqueue on a per-flow
  datagram FIFO; a materialized caravan consumes ``caravan_inner_count``
  entries (outcome ``bundled``) and records the batch wait from the
  first datagram's enqueue time.  The receive side closes the caravan
  span at ``caravan-open`` with N ``datagram`` children.

The tracker is deliberately dumb: the datapath tells it what happened
and it does arithmetic.  It never touches the simulator, RNGs, packet
bytes, or scheduling, which is why attaching it cannot perturb chaos
digests (the perturbation guard in ``tests/obs`` proves it).

The **span-balance identity** — ``opened == closed + dropped + open``
— is the conservation law the chaos oracle asserts over all 56 corpus
scenarios, alongside a byte/datagram reconciliation of the FIFOs
against the live merge engines.  ``anomalies`` counts every
impossibility (closing an unknown span, consuming bytes that were
never enqueued) and must stay zero.

Latency observations are kept as exact ``value -> count`` maps and
mirrored onto fixed-bucket registry histograms at scrape time via
:meth:`Histogram.load`, so exports stay byte-deterministic and the
per-packet cost is one dict update.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "LATENCY_BUCKETS",
    "GATEWAY_RESIDENCY_SECONDS",
    "MERGE_WAIT_SECONDS",
    "CARAVAN_BATCH_WAIT_SECONDS",
    "PROBE_RTT_SECONDS",
    "LATENCY_METRICS",
    "Span",
    "SpanTracker",
]

#: Fixed sub-second bucket ladder for sim-time latencies.  ``LOG2_BUCKETS``
#: in :mod:`repro.obs.registry` are integer *byte* bounds; latencies need
#: a 1-2-5 ladder from 10 µs to 5 s (the merge timeout is 1 ms, link
#: delays are 1-10 ms, PLPMTUD searches take 100s of ms).
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0,
)

GATEWAY_RESIDENCY_SECONDS = "px_gateway_residency_seconds"
MERGE_WAIT_SECONDS = "px_merge_wait_seconds"
CARAVAN_BATCH_WAIT_SECONDS = "px_caravan_batch_wait_seconds"
PROBE_RTT_SECONDS = "px_fpmtud_probe_rtt_seconds"

#: Every latency histogram the tracker feeds, in export order.
LATENCY_METRICS: Tuple[str, ...] = (
    CARAVAN_BATCH_WAIT_SECONDS,
    PROBE_RTT_SECONDS,
    GATEWAY_RESIDENCY_SECONDS,
    MERGE_WAIT_SECONDS,
)


class Span:
    """One packet's traversal of the gateway, in sim time.

    ``parents`` is a tuple of span ids: empty for an ingress span,
    the contributing ingress spans for a ``merged``/``caravan`` child,
    the split ingress for a ``split-segment``.  ``flow`` carries the
    packet's :class:`~repro.packet.flow.FlowKey` when the datapath
    attributed one — the hook cross-shard trace reconstruction keys on.
    """

    __slots__ = ("sid", "kind", "opened_at", "closed_at", "outcome", "parents",
                 "stage", "flow")

    def __init__(self, sid, kind, opened_at, closed_at, outcome, parents, stage,
                 flow=None):
        self.sid = sid
        self.kind = kind
        self.opened_at = opened_at
        self.closed_at = closed_at
        self.outcome = outcome
        self.parents = parents
        self.stage = stage
        self.flow = flow

    @property
    def duration(self) -> Optional[float]:
        """Sim seconds between open and close; ``None`` while open."""
        if self.closed_at is None:
            return None
        return self.closed_at - self.opened_at

    def to_dict(self) -> dict:
        """A JSON-ready, deterministic representation."""
        payload = {
            "sid": self.sid,
            "kind": self.kind,
            "opened_at": self.opened_at,
            "closed_at": self.closed_at,
            "outcome": self.outcome,
            "stage": self.stage,
            "parents": list(self.parents),
        }
        if self.flow is not None:
            payload["flow"] = str(self.flow)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.outcome if self.closed_at is not None else "open"
        return f"<Span #{self.sid} {self.kind}/{self.stage or '-'} {state}>"


class SpanTracker:
    """Opens, closes, and reconciles packet lifecycle spans.

    Span ids are sequential, so two same-seed runs produce byte-identical
    exports.  Finished spans land in a bounded ring (``capacity``); the
    counters and latency maps are exact regardless of shedding.
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: Balance counters — ``opened == closed + dropped + len(open)``.
        self.opened = 0
        self.closed = 0
        self.dropped = 0
        #: Impossibilities observed (unknown sid, FIFO under-run).  The
        #: chaos oracle requires this to stay zero.
        self.anomalies = 0
        self._next_sid = 0
        self._open: Dict[int, Span] = {}
        self._done: Deque[Span] = deque(maxlen=capacity)
        # Per-flow FIFOs mirroring the merge engines' buffers.
        # merge: flow -> deque of [sid, bytes_left, enqueued_at]
        # caravan: flow -> deque of (sid, enqueued_at)
        self._merge_fifo: Dict[object, Deque[list]] = {}
        self._caravan_fifo: Dict[object, Deque[tuple]] = {}
        self._fifo_bytes = 0
        self._fifo_datagrams = 0
        #: Exact latency observations per metric: value -> count.
        self._latency: Dict[str, Dict[float, int]] = {
            name: {} for name in LATENCY_METRICS
        }

    # ------------------------------------------------------------------
    # Core open/close API
    # ------------------------------------------------------------------
    def open(self, opened_at: float, kind: str = "packet",
             parents: Tuple[int, ...] = (), stage: Optional[str] = None,
             flow=None) -> int:
        """Open a span; returns its id for a later close/drop."""
        sid = self._next_sid
        self._next_sid = sid + 1
        self.opened += 1
        self._open[sid] = Span(sid, kind, opened_at, None, None, parents, stage,
                               flow)
        return sid

    def close(self, sid: int, closed_at: float, outcome: str = "egress") -> None:
        """Close an open span with a terminal outcome."""
        span = self._open.pop(sid, None)
        if span is None:
            self.anomalies += 1
            return
        span.closed_at = closed_at
        span.outcome = outcome
        self.closed += 1
        self._done.append(span)

    def drop(self, sid: int, at: float, reason: str) -> None:
        """Close an open span as dropped (counts in ``dropped``)."""
        span = self._open.pop(sid, None)
        if span is None:
            self.anomalies += 1
            return
        span.closed_at = at
        span.outcome = reason
        self.dropped += 1
        self._done.append(span)

    def sync(self, opened_at: float, closed_at: float, stage: str,
             kind: str = "packet", flow=None) -> int:
        """Fast path: a packet that entered and left in one call.

        Creates the span already finished (no open-dict round trip — this
        runs once per non-merging packet on the datapath) and records its
        gateway residency.
        """
        sid = self._next_sid
        self._next_sid = sid + 1
        self.opened += 1
        self.closed += 1
        self._done.append(Span(sid, kind, opened_at, closed_at, "egress", (),
                               stage, flow))
        bucket = self._latency[GATEWAY_RESIDENCY_SECONDS]
        delta = closed_at - opened_at
        bucket[delta] = bucket.get(delta, 0) + 1
        return sid

    def sync_drop(self, opened_at: float, at: float, reason: str,
                  flow=None) -> int:
        """Fast path: a packet dropped in the same call it arrived in."""
        sid = self._next_sid
        self._next_sid = sid + 1
        self.opened += 1
        self.dropped += 1
        self._done.append(Span(sid, "packet", opened_at, at, reason, (),
                               "drop", flow))
        return sid

    def derived(self, parents: Tuple[int, ...], kind: str, at: float,
                count: int = 1, flow=None) -> None:
        """Record *count* finished child spans produced at *at*.

        Children are born closed: a merged segment / caravan / split
        segment exists only at the instant the engine emits it, so the
        interesting latency lives on the parents, not here.
        """
        for _ in range(count):
            sid = self._next_sid
            self._next_sid = sid + 1
            self.opened += 1
            self.closed += 1
            self._done.append(Span(sid, kind, at, at, "egress", parents, None,
                                   flow))

    # ------------------------------------------------------------------
    # Merge (byte) FIFO — mirrors TcpMergeEngine buffers
    # ------------------------------------------------------------------
    def merge_enqueue(self, flow, sid: int, nbytes: int, at: float) -> None:
        """A span's payload entered the merge buffer for *flow*."""
        span = self._open.get(sid)
        if span is not None and span.flow is None:
            span.flow = flow
        fifo = self._merge_fifo.get(flow)
        if fifo is None:
            fifo = self._merge_fifo[flow] = deque()
        fifo.append([sid, nbytes, at])
        self._fifo_bytes += nbytes

    def merge_consume(self, flow, nbytes: int, at: float) -> Tuple[int, ...]:
        """A spliced segment of *nbytes* left the buffer for *flow*.

        Consumes head-first (the engines ship bytes FIFO per flow) and
        returns the parent span ids whose bytes the segment carries.
        Fully drained parents close with outcome ``merged`` and record
        both their merge wait and their gateway residency.
        """
        fifo = self._merge_fifo.get(flow)
        parents: List[int] = []
        while nbytes > 0:
            if not fifo:
                self.anomalies += 1
                break
            head = fifo[0]
            take = head[1] if head[1] <= nbytes else nbytes
            head[1] -= take
            nbytes -= take
            self._fifo_bytes -= take
            parents.append(head[0])
            if head[1] == 0:
                fifo.popleft()
                span = self._open.pop(head[0], None)
                if span is None:
                    self.anomalies += 1
                else:
                    span.closed_at = at
                    span.outcome = "merged"
                    self.closed += 1
                    self._done.append(span)
                    wait = self._latency[MERGE_WAIT_SECONDS]
                    delta = at - head[2]
                    wait[delta] = wait.get(delta, 0) + 1
                    res = self._latency[GATEWAY_RESIDENCY_SECONDS]
                    delta = at - span.opened_at
                    res[delta] = res.get(delta, 0) + 1
        if fifo is not None and not fifo:
            del self._merge_fifo[flow]
        return tuple(parents)

    # ------------------------------------------------------------------
    # Caravan (datagram) FIFO — mirrors CaravanMergeEngine contexts
    # ------------------------------------------------------------------
    def caravan_enqueue(self, flow, sid: int, at: float) -> None:
        """A datagram's span entered the caravan context for *flow*."""
        span = self._open.get(sid)
        if span is not None and span.flow is None:
            span.flow = flow
        fifo = self._caravan_fifo.get(flow)
        if fifo is None:
            fifo = self._caravan_fifo[flow] = deque()
        fifo.append((sid, at))
        self._fifo_datagrams += 1

    def caravan_consume(self, flow, count: int, at: float,
                        outcome: str = "bundled") -> Tuple[int, ...]:
        """*count* buffered datagrams left the context for *flow*."""
        fifo = self._caravan_fifo.get(flow)
        parents: List[int] = []
        for _ in range(count):
            if not fifo:
                self.anomalies += 1
                break
            sid, _enqueued_at = fifo.popleft()
            self._fifo_datagrams -= 1
            parents.append(sid)
            span = self._open.pop(sid, None)
            if span is None:
                self.anomalies += 1
            else:
                span.closed_at = at
                span.outcome = outcome
                self.closed += 1
                self._done.append(span)
                res = self._latency[GATEWAY_RESIDENCY_SECONDS]
                delta = at - span.opened_at
                res[delta] = res.get(delta, 0) + 1
        if fifo is not None and not fifo:
            del self._caravan_fifo[flow]
        return tuple(parents)

    def flush_fifos(self, at: float, outcome: str = "failover") -> int:
        """Close every FIFO-resident span (worker retired mid-merge).

        On failover the old worker's pending bytes are re-emitted from
        the checkpoint through :meth:`PXGateway.forward`, bypassing the
        worker — so their ingress spans must be settled here.  Returns
        the number of spans closed.
        """
        settled = 0
        for fifo in self._merge_fifo.values():
            for sid, _bytes_left, _at in fifo:
                self.close(sid, at, outcome)
                settled += 1
        for fifo in self._caravan_fifo.values():
            for sid, _at in fifo:
                self.close(sid, at, outcome)
                settled += 1
        self._merge_fifo.clear()
        self._caravan_fifo.clear()
        self._fifo_bytes = 0
        self._fifo_datagrams = 0
        return settled

    # ------------------------------------------------------------------
    # Latency observations
    # ------------------------------------------------------------------
    def observe(self, metric: str, value: float) -> None:
        """Record one latency observation for a known metric."""
        bucket = self._latency[metric]
        bucket[value] = bucket.get(value, 0) + 1

    def latency_values(self, metric: str) -> Dict[float, int]:
        """A copy of the exact ``value -> count`` map for *metric*."""
        return dict(self._latency[metric])

    def latency_count(self, metric: str) -> int:
        """Total observations recorded for *metric*."""
        return sum(self._latency[metric].values())

    def latency_median(self, metric: str) -> Optional[float]:
        """Median of the raw observations (lower of the two middles)."""
        values = self._latency[metric]
        total = sum(values.values())
        if total == 0:
            return None
        midpoint = (total - 1) // 2
        seen = 0
        for value in sorted(values):
            seen += values[value]
            if seen > midpoint:
                return value
        return None  # pragma: no cover - unreachable

    # ------------------------------------------------------------------
    # Reconciliation and export
    # ------------------------------------------------------------------
    def open_count(self) -> int:
        """Spans currently open (in flight or buffered in an engine)."""
        return len(self._open)

    def pending_merge_bytes(self) -> int:
        """Bytes the FIFOs believe the TCP merge engine is holding."""
        return self._fifo_bytes

    def pending_caravan_datagrams(self) -> int:
        """Datagrams the FIFOs believe the caravan engine is holding."""
        return self._fifo_datagrams

    @property
    def shed(self) -> int:
        """Finished spans evicted from the bounded ring."""
        return self.closed + self.dropped - len(self._done)

    def balance(self) -> dict:
        """The conservation-law view the chaos oracle asserts."""
        return {
            "opened": self.opened,
            "closed": self.closed,
            "dropped": self.dropped,
            "open": len(self._open),
        }

    @property
    def balanced(self) -> bool:
        """Whether the span-balance identity holds right now."""
        return self.opened == self.closed + self.dropped + len(self._open)

    def finished(self, kind: Optional[str] = None) -> List[Span]:
        """Retained finished spans, optionally filtered by kind."""
        if kind is None:
            return list(self._done)
        return [span for span in self._done if span.kind == kind]

    def kinds(self) -> Dict[str, int]:
        """Retained finished-span counts per kind, sorted by name."""
        counts: Dict[str, int] = {}
        for span in self._done:
            counts[span.kind] = counts.get(span.kind, 0) + 1
        return dict(sorted(counts.items()))

    def stages(self) -> Dict[str, int]:
        """Retained finished-span counts per stage label."""
        counts: Dict[str, int] = {}
        for span in self._done:
            if span.stage is not None:
                counts[span.stage] = counts.get(span.stage, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self, limit: Optional[int] = None, indent: Optional[int] = None) -> str:
        """Byte-deterministic JSON export (balance, latency, spans)."""
        spans: Iterable[Span] = self._done
        if limit is not None:
            spans = list(self._done)[-limit:]
        payload = {
            "balance": self.balance(),
            "anomalies": self.anomalies,
            "shed": self.shed,
            "kinds": self.kinds(),
            "stages": self.stages(),
            "latency": {
                name: {
                    "count": sum(values.values()),
                    "sum": sum(v * n for v, n in sorted(values.items())),
                }
                for name, values in sorted(self._latency.items())
            },
            "spans": [span.to_dict() for span in spans],
        }
        return json.dumps(payload, sort_keys=True, indent=indent,
                          separators=(",", ":") if indent is None else None)

    def to_jsonl(self, limit: Optional[int] = None) -> str:
        """One finished span per line — greppable, streamable."""
        spans: Iterable[Span] = self._done
        if limit is not None:
            spans = list(self._done)[-limit:]
        return "\n".join(
            json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
            for span in spans
        )
