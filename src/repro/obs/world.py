"""A seeded end-to-end world exercising every observed layer.

``run_observed_world(seed)`` builds one deterministic scenario that
touches all six instrumented layers — gateway, worker, resilience
(health + PMTU cache + failover), NIC (RSS + RX rings + hairpin), UPF,
and PMTUD — runs it to completion, and returns the world with a fully
populated :class:`Observability` bundle.  The ``repro metrics`` /
``repro trace`` CLI commands and the observability determinism guard
are built on it: the same seed must yield byte-identical
``to_prometheus_text()`` output and identical tracer sequences.

The world:

* a PXGW between a 9000 B b-network and a 1500 B external network,
  with the resilience layer attached;
* a TCP download (merge datapath) and upload (split datapath);
* UDP bursts inbound (gateway-built caravans) and a host-built caravan
  bulk send outbound (gateway-opened);
* one F-PMTUD probe across the gateway (fragmented on the eMTU link);
* a mid-run failover takeover, so the swapped-in standby carries the
  second half of the traffic (and the flush-timer re-arm is exercised);
* a NIC front-end model fed by a tap on the inside→gateway link:
  flows steer through RSS into bounded RX rings, mice hairpin;
* a standalone seeded UPF run (uplink decap + downlink encap).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .collectors import (
    Observability,
    observe_failover,
    observe_nic,
    observe_pmtud,
    observe_upf,
)
from .tracer import FlowTracer

__all__ = ["ObservedWorld", "WorkloadSchedule", "default_workload_schedule",
           "run_observed_world", "INTERNAL_MTU", "EXTERNAL_MTU"]

_IMTU = 9000
_EMTU = 1500
#: Physical link MTUs of the observed topology.  These are properties
#: of the *environment*, not of the deployed gateway: an injected
#: ``GatewayConfig`` may believe different MTUs (that mismatch is
#: exactly what the ops canary is designed to catch), but the wire
#: stays 9000 B inside / 1500 B outside.
INTERNAL_MTU = _IMTU
EXTERNAL_MTU = _EMTU
_PROBER_PORT = 52002
#: Packets at or below this size hairpin past the RX rings (mice).
_HAIRPIN_CUTOFF = 128


@dataclass(frozen=True)
class WorkloadSchedule:
    """A deterministic offered-load script for the observed world.

    The schedule is pure data — payload bytes and sim-time instants —
    so two worlds built from the *same* schedule see byte-identical
    offered load regardless of how their gateways are configured.
    That property is what makes twin-world comparisons
    (:mod:`repro.ops`) meaningful: any metric divergence between twins
    is attributable to the deployment, not the workload.

    ``inbound_bursts`` entries are ``(at, start, count)``: at sim time
    ``at``, send ``inbound_payloads[start:start + count]`` as plain UDP
    datagrams from the outside host (the gateway builds caravans).
    ``takeover_at``/``probe_at`` may be ``None`` to skip the failover
    takeover or the F-PMTUD probe entirely.
    """

    seed: int = 0
    download_bytes: int = 48_000
    upload_bytes: int = 24_000
    inbound_payloads: Tuple[bytes, ...] = ()
    inbound_bursts: Tuple[Tuple[float, int, int], ...] = ()
    outbound_payloads: Tuple[bytes, ...] = ()
    outbound_at: float = 0.70
    probe_at: Optional[float] = 0.40
    takeover_at: Optional[float] = 0.9
    settle_until: float = 0.2
    horizon: float = 3.0

    def offered_bytes(self) -> int:
        """Total application bytes this schedule offers (both ways)."""
        return (self.download_bytes + self.upload_bytes
                + sum(len(p) for p in self.inbound_payloads)
                + sum(len(p) for p in self.outbound_payloads))

    def to_dict(self) -> dict:
        """A JSON-safe description (payload *sizes*, not bytes)."""
        return {
            "seed": self.seed,
            "download_bytes": self.download_bytes,
            "upload_bytes": self.upload_bytes,
            "inbound_datagrams": len(self.inbound_payloads),
            "inbound_bursts": [list(b) for b in self.inbound_bursts],
            "outbound_datagrams": len(self.outbound_payloads),
            "outbound_at": self.outbound_at,
            "probe_at": self.probe_at,
            "takeover_at": self.takeover_at,
            "settle_until": self.settle_until,
            "horizon": self.horizon,
            "offered_bytes": self.offered_bytes(),
        }


def default_workload_schedule(seed: int = 0, scale: float = 1.0,
                              jitter: float = 0.0) -> WorkloadSchedule:
    """The canonical observed-world workload, as reusable data.

    At ``scale=1.0, jitter=0.0`` this reproduces the exact workload the
    observed world has always run (the default path stays
    byte-identical).  ``scale`` multiplies transfer sizes; ``jitter``
    perturbs the burst/probe instants by up to ``±jitter`` seconds,
    seeded from *seed*, for schedule-sensitivity studies.
    """
    if scale <= 0:
        raise ValueError("scale must be > 0")
    if jitter < 0:
        raise ValueError("jitter must be >= 0")
    in_size = max(1, int(500 * scale))
    out_size = max(1, int(600 * scale))
    times = {"in0": 0.30, "in1": 0.60, "out": 0.70, "probe": 0.40}
    if jitter:
        rng = random.Random(f"workload:{seed}")
        times = {key: round(at + rng.uniform(-jitter, jitter), 9)
                 for key, at in sorted(times.items())}
    return WorkloadSchedule(
        seed=seed,
        download_bytes=int(48_000 * scale),
        upload_bytes=int(24_000 * scale),
        inbound_payloads=tuple(
            bytes([1, i & 0xFF]) * in_size for i in range(24)),
        inbound_bursts=((times["in0"], 0, 12), (times["in1"], 12, 12)),
        outbound_payloads=tuple(
            bytes([2, i & 0xFF]) * out_size for i in range(12)),
        outbound_at=times["out"],
        probe_at=times["probe"],
    )


@dataclass
class ObservedWorld:
    """Everything one observed run built and measured."""

    seed: int
    obs: Observability
    topo: object
    gateway: object
    inside: object
    outside: object
    upf: object
    prober: object
    daemon: object
    failover: object
    rss: object
    queues: List[object]
    hairpin: object
    #: In-sim periodic scraper (repro.obs.TelemetryTimeline), stopped.
    timeline: object = None
    #: The timeline's AlertEngine with its recorded transitions.
    alerts: object = None
    notes: Dict[str, object] = field(default_factory=dict)
    #: The four directed links by role: ``int_out`` (inside→gateway),
    #: ``int_in``, ``ext_out`` (gateway→outside), ``ext_in``.
    links: Dict[str, object] = field(default_factory=dict)
    #: Registry snapshots captured at the requested ``snapshot_at``
    #: instants, keyed by sim time.
    snapshots: Dict[float, Dict[str, float]] = field(default_factory=dict)
    #: The deployed GatewayConfig and the workload script that ran.
    config: object = None
    schedule: object = None
    #: Always-on black-box ring (repro.obs.flight.FlightRecorder).
    flight: object = None
    #: Trace-context propagation (adoption hops from failover takeovers).
    trace: object = None


class _NicFrontend:
    """A link tap modelling the NIC receive path ahead of the worker.

    Every packet delivered on the tapped link is steered: mice go to
    the hairpin ring, everything with a flow key goes through RSS into
    its RX ring.  Rings are drained by a periodic poll, so the depth
    gauges show live occupancy and the drop counters stay honest.
    """

    def __init__(self, sim, rss, queues, hairpin, poll_interval: float = 0.01):
        self.sim = sim
        self.rss = rss
        self.queues = queues
        self.hairpin = hairpin
        self.poll_interval = poll_interval
        self._polling = False

    def __call__(self, event: str, packet, now: float) -> None:
        if event != "rx":
            return
        if packet.total_len <= _HAIRPIN_CUTOFF:
            self.hairpin.push(packet)
            return
        flow = packet.flow_key()
        if flow is None:
            return
        self.queues[self.rss.queue_for(flow)].push(packet)

    def start(self) -> None:
        if not self._polling:
            self._polling = True
            self.sim.schedule(self.poll_interval, self._poll)

    def _poll(self) -> None:
        for queue in self.queues:
            queue.poll(budget=64)
        self.hairpin.drain()
        self.sim.schedule(self.poll_interval, self._poll)


def _run_upf(rng: random.Random) -> object:
    """A standalone seeded UPF exercise: uplink decap + downlink encap."""
    from ..packet import GTPU_PORT, GTPUHeader, build_udp, str_to_ip
    from ..upf import Upf

    n3 = str_to_ip("10.100.0.1")
    gnb = str_to_ip("10.100.0.2")
    dn = str_to_ip("93.184.216.34")
    ue_base = str_to_ip("172.16.0.1")
    upf = Upf(n3_address=n3)
    sessions = 4
    for index in range(sessions):
        upf.sessions.create_session(
            seid=index, ue_ip=ue_base + index, uplink_teid=10_000 + index,
            gnb_teid=20_000 + index, gnb_ip=gnb,
        )
    for index in range(40):
        session = index % sessions
        if index % 2:
            # Downlink: data network toward a UE, encapsulated out.
            upf.process(build_udp(
                dn, ue_base + session, 80, 4000,
                payload=bytes(rng.randrange(256) for _ in range(600)),
            ))
        else:
            # Uplink: a GTP-U tunnel from the gNB, decapsulated.
            inner = build_udp(
                ue_base + session, dn, 4000, 80,
                payload=bytes(rng.randrange(256) for _ in range(500)),
            )
            inner_bytes = inner.to_bytes()
            gtpu = GTPUHeader(teid=10_000 + session)
            upf.process(build_udp(
                gnb, n3, GTPU_PORT, GTPU_PORT,
                payload=gtpu.pack(payload_len=len(inner_bytes)) + inner_bytes,
            ))
    return upf


def run_observed_world(
    seed: int = 0,
    until: Optional[float] = None,
    tracer_capacity: int = 8192,
    registry=None,
    scrape_interval: float = 0.05,
    config=None,
    schedule: Optional[WorkloadSchedule] = None,
    alert_rules=None,
    mutate: Optional[Callable[["ObservedWorld"], None]] = None,
    snapshot_at: Sequence[float] = (),
) -> ObservedWorld:
    """Build and run the observed world for *seed*; returns it populated.

    Beyond PR 4's metrics + tracer, the world now carries the full
    latency-aware stack: a :class:`SpanTracker` wired through the
    gateway/worker/prober, a :class:`TelemetryTimeline` scraping the
    registry every ``scrape_interval`` sim-seconds, and an
    :class:`AlertEngine` running :func:`default_alert_rules` at each
    scrape.  All exports are byte-identical across same-seed runs.

    The deployment and the offered load are injectable for twin-world
    comparisons (:mod:`repro.ops`): *config* deploys an alternative
    :class:`~repro.core.GatewayConfig` on the unchanged physical
    topology, *schedule* supplies the workload script (default:
    :func:`default_workload_schedule`), *alert_rules* replaces the
    stock SLO rules, *snapshot_at* captures registry snapshots at the
    given sim instants into ``world.snapshots``, and *mutate* is called
    with the constructed world after everything is scheduled but before
    any traffic runs — the hook point for fault/attack environments.
    All defaults leave the run byte-identical to the historical one.
    """
    from ..core import GatewayConfig, PXGateway
    from ..net import Topology
    from ..nic import HairpinQueue, RssDistributor, RxQueue
    from ..pmtud import FPmtudDaemon, FPmtudProber
    from ..resilience import FailoverManager
    from ..tcpstack import TCPConnection, TCPListener
    from .alerts import AlertEngine, default_alert_rules
    from .flight import FlightRecorder
    from .propagation import TracePropagation
    from .spans import SpanTracker
    from .timeline import TelemetryTimeline

    rng = random.Random(f"obs-world:{seed}")
    if schedule is None:
        schedule = default_workload_schedule(seed)
    if until is None:
        until = schedule.horizon
    obs = Observability(
        registry=registry,
        tracer=FlowTracer(tracer_capacity),
        spans=SpanTracker(),
    )

    topo = Topology(seed=880_000 + seed)
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    if config is None:
        config = GatewayConfig(
            imtu=_IMTU, emtu=_EMTU,
            elephant_threshold_packets=2, header_only_dma=True,
        )
    gateway = PXGateway(topo.sim, "pxgw", config=config)
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=_IMTU, bandwidth_bps=10e9, delay=5e-5)
    topo.link(gateway, outside, mtu=_EMTU, bandwidth_bps=10e9, delay=5e-5)
    topo.build_routes()
    _, gw_iface, int_out, int_in = topo.edge(inside, gateway)
    _, _, ext_out, ext_in = topo.edge(gateway, outside)
    gateway.mark_internal(gw_iface)
    gateway.enable_resilience()
    gateway.attach_observability(obs)

    # The in-sim scraper + SLO alerting, started before any traffic so
    # the first window sees the ramp-up.
    if alert_rules is None:
        alert_rules = default_alert_rules(gateway="pxgw")
    alerts = AlertEngine(alert_rules)
    timeline = TelemetryTimeline(
        topo.sim, obs.registry, interval=scrape_interval, alerts=alerts
    ).start()

    # Failover: periodic checkpoints plus one mid-run takeover, so the
    # standby worker (and the re-armed flush timer) carry the tail of
    # the transfers.
    failover = FailoverManager(gateway, interval=0.25).start()
    observe_failover(obs, failover)
    # Trace-context propagation: takeovers stamp adoption hops on every
    # checkpointed flow.  Pure bookkeeping — no RNG, no sim events.
    trace = TracePropagation(seed=seed)
    failover.propagation = trace
    if schedule.takeover_at is not None:
        topo.sim.schedule_at(schedule.takeover_at, failover.takeover)

    # NIC front-end on the inside→gateway link.
    rss = RssDistributor(queues=4)
    queues = [RxQueue(index, capacity=512) for index in range(4)]
    hairpin = HairpinQueue(capacity=256)
    frontend = _NicFrontend(topo.sim, rss, queues, hairpin)
    int_out.add_tap(frontend)
    frontend.start()
    observe_nic(obs, queues=queues, hairpin=hairpin, rss=rss)

    # TCP both ways: download exercises merge, upload exercises split.
    download, upload = schedule.download_bytes, schedule.upload_bytes
    down_listener = TCPListener(outside, 80, mss=_EMTU - 40)
    up_listener = TCPListener(outside, 9100, mss=_EMTU - 40)
    down = TCPConnection(inside, 40000, outside.ip, 80, mss=_IMTU - 40)
    up = TCPConnection(inside, 40001, outside.ip, 9100, mss=_IMTU - 40)
    down.connect()
    up.connect()

    # UDP caravans both ways.
    inside.enable_caravan_stack(_IMTU)
    received_in: List[bytes] = []
    received_out: List[bytes] = []
    inside.on_udp(4433, lambda p, h: received_in.append(p.payload))
    outside.on_udp(5544, lambda p, h: received_out.append(p.payload))
    burst_in = schedule.inbound_payloads

    def inbound_burst(start: int, count: int) -> None:
        for payload in burst_in[start:start + count]:
            outside.send_udp(inside.ip, 4433, 4433, payload)

    for burst_at, start, count in schedule.inbound_bursts:
        topo.sim.schedule_at(burst_at, inbound_burst, start, count)
    if schedule.outbound_payloads:
        topo.sim.schedule_at(schedule.outbound_at, inside.send_udp_bulk,
                             outside.ip, 5544, 5544,
                             list(schedule.outbound_payloads))

    # F-PMTUD across the gateway: the probe fragments on the eMTU link.
    daemon = FPmtudDaemon(outside)
    prober = FPmtudProber(inside, src_port=_PROBER_PORT)
    prober.tracer = obs.tracer
    prober.spans = obs.spans
    observe_pmtud(obs, prober=prober, daemon=daemon)
    pmtud_results: list = []
    if schedule.probe_at is not None:
        topo.sim.schedule_at(
            schedule.probe_at, prober.probe, outside.ip, _IMTU,
            pmtud_results.append,
        )

    world = ObservedWorld(
        seed=seed,
        obs=obs,
        topo=topo,
        gateway=gateway,
        inside=inside,
        outside=outside,
        upf=None,
        prober=prober,
        daemon=daemon,
        failover=failover,
        rss=rss,
        queues=queues,
        hairpin=hairpin,
        timeline=timeline,
        alerts=alerts,
        links={"int_out": int_out, "int_in": int_in,
               "ext_out": ext_out, "ext_in": ext_in},
        config=config,
        schedule=schedule,
        # Always-on black box: pure pull-model references, so the ring
        # is free until someone dumps it.
        flight=FlightRecorder(name=f"world{seed}").wire(
            spans=obs.spans, tracer=obs.tracer,
            timeline=timeline, alerts=alerts,
        ),
        trace=trace,
    )

    # Mid-run registry snapshots (for staged guardrail evaluation) and
    # the environment hook.  Both are no-ops on the default path, so
    # the historical event-sequence numbering — and with it every
    # pinned digest — is untouched.
    if snapshot_at:
        def capture(instant: float) -> None:
            world.snapshots[instant] = obs.registry.snapshot()

        for instant in snapshot_at:
            topo.sim.schedule_at(instant, capture, instant)
    if mutate is not None:
        mutate(world)

    # Let the handshakes settle, then start the bulk transfers.
    topo.run(until=schedule.settle_until)
    if download:
        down_listener.connections[0].send_bulk(download)
    if upload:
        up.send_bulk(upload)
    topo.run(until=until)

    # Stop the scraper before the out-of-sim UPF exercise so the last
    # recorded window reflects only in-sim activity.
    timeline.stop()

    # Standalone UPF exercise (no topology needed).
    upf = _run_upf(rng)
    observe_upf(obs, upf)

    world.upf = upf
    world.notes = {
        "downloaded": down.bytes_delivered,
        "uploaded": up_listener.connections[0].bytes_delivered
        if up_listener.connections else 0,
        "datagrams_in": len(received_in),
        "datagrams_out": len(received_out),
        "pmtu": pmtud_results[-1].pmtu if pmtud_results else None,
    }
    return world
