"""A seeded end-to-end world exercising every observed layer.

``run_observed_world(seed)`` builds one deterministic scenario that
touches all six instrumented layers — gateway, worker, resilience
(health + PMTU cache + failover), NIC (RSS + RX rings + hairpin), UPF,
and PMTUD — runs it to completion, and returns the world with a fully
populated :class:`Observability` bundle.  The ``repro metrics`` /
``repro trace`` CLI commands and the observability determinism guard
are built on it: the same seed must yield byte-identical
``to_prometheus_text()`` output and identical tracer sequences.

The world:

* a PXGW between a 9000 B b-network and a 1500 B external network,
  with the resilience layer attached;
* a TCP download (merge datapath) and upload (split datapath);
* UDP bursts inbound (gateway-built caravans) and a host-built caravan
  bulk send outbound (gateway-opened);
* one F-PMTUD probe across the gateway (fragmented on the eMTU link);
* a mid-run failover takeover, so the swapped-in standby carries the
  second half of the traffic (and the flush-timer re-arm is exercised);
* a NIC front-end model fed by a tap on the inside→gateway link:
  flows steer through RSS into bounded RX rings, mice hairpin;
* a standalone seeded UPF run (uplink decap + downlink encap).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .collectors import (
    Observability,
    observe_failover,
    observe_nic,
    observe_pmtud,
    observe_upf,
)
from .tracer import FlowTracer

__all__ = ["ObservedWorld", "run_observed_world"]

_IMTU = 9000
_EMTU = 1500
_PROBER_PORT = 52002
#: Packets at or below this size hairpin past the RX rings (mice).
_HAIRPIN_CUTOFF = 128


@dataclass
class ObservedWorld:
    """Everything one observed run built and measured."""

    seed: int
    obs: Observability
    topo: object
    gateway: object
    inside: object
    outside: object
    upf: object
    prober: object
    daemon: object
    failover: object
    rss: object
    queues: List[object]
    hairpin: object
    #: In-sim periodic scraper (repro.obs.TelemetryTimeline), stopped.
    timeline: object = None
    #: The timeline's AlertEngine with its recorded transitions.
    alerts: object = None
    notes: Dict[str, object] = field(default_factory=dict)


class _NicFrontend:
    """A link tap modelling the NIC receive path ahead of the worker.

    Every packet delivered on the tapped link is steered: mice go to
    the hairpin ring, everything with a flow key goes through RSS into
    its RX ring.  Rings are drained by a periodic poll, so the depth
    gauges show live occupancy and the drop counters stay honest.
    """

    def __init__(self, sim, rss, queues, hairpin, poll_interval: float = 0.01):
        self.sim = sim
        self.rss = rss
        self.queues = queues
        self.hairpin = hairpin
        self.poll_interval = poll_interval
        self._polling = False

    def __call__(self, event: str, packet, now: float) -> None:
        if event != "rx":
            return
        if packet.total_len <= _HAIRPIN_CUTOFF:
            self.hairpin.push(packet)
            return
        flow = packet.flow_key()
        if flow is None:
            return
        self.queues[self.rss.queue_for(flow)].push(packet)

    def start(self) -> None:
        if not self._polling:
            self._polling = True
            self.sim.schedule(self.poll_interval, self._poll)

    def _poll(self) -> None:
        for queue in self.queues:
            queue.poll(budget=64)
        self.hairpin.drain()
        self.sim.schedule(self.poll_interval, self._poll)


def _run_upf(rng: random.Random) -> object:
    """A standalone seeded UPF exercise: uplink decap + downlink encap."""
    from ..packet import GTPU_PORT, GTPUHeader, build_udp, str_to_ip
    from ..upf import Upf

    n3 = str_to_ip("10.100.0.1")
    gnb = str_to_ip("10.100.0.2")
    dn = str_to_ip("93.184.216.34")
    ue_base = str_to_ip("172.16.0.1")
    upf = Upf(n3_address=n3)
    sessions = 4
    for index in range(sessions):
        upf.sessions.create_session(
            seid=index, ue_ip=ue_base + index, uplink_teid=10_000 + index,
            gnb_teid=20_000 + index, gnb_ip=gnb,
        )
    for index in range(40):
        session = index % sessions
        if index % 2:
            # Downlink: data network toward a UE, encapsulated out.
            upf.process(build_udp(
                dn, ue_base + session, 80, 4000,
                payload=bytes(rng.randrange(256) for _ in range(600)),
            ))
        else:
            # Uplink: a GTP-U tunnel from the gNB, decapsulated.
            inner = build_udp(
                ue_base + session, dn, 4000, 80,
                payload=bytes(rng.randrange(256) for _ in range(500)),
            )
            inner_bytes = inner.to_bytes()
            gtpu = GTPUHeader(teid=10_000 + session)
            upf.process(build_udp(
                gnb, n3, GTPU_PORT, GTPU_PORT,
                payload=gtpu.pack(payload_len=len(inner_bytes)) + inner_bytes,
            ))
    return upf


def run_observed_world(
    seed: int = 0,
    until: float = 3.0,
    tracer_capacity: int = 8192,
    registry=None,
    scrape_interval: float = 0.05,
) -> ObservedWorld:
    """Build and run the observed world for *seed*; returns it populated.

    Beyond PR 4's metrics + tracer, the world now carries the full
    latency-aware stack: a :class:`SpanTracker` wired through the
    gateway/worker/prober, a :class:`TelemetryTimeline` scraping the
    registry every ``scrape_interval`` sim-seconds, and an
    :class:`AlertEngine` running :func:`default_alert_rules` at each
    scrape.  All exports are byte-identical across same-seed runs.
    """
    from ..core import GatewayConfig, PXGateway
    from ..net import Topology
    from ..nic import HairpinQueue, RssDistributor, RxQueue
    from ..pmtud import FPmtudDaemon, FPmtudProber
    from ..resilience import FailoverManager
    from ..tcpstack import TCPConnection, TCPListener
    from .alerts import AlertEngine, default_alert_rules
    from .spans import SpanTracker
    from .timeline import TelemetryTimeline

    rng = random.Random(f"obs-world:{seed}")
    obs = Observability(
        registry=registry,
        tracer=FlowTracer(tracer_capacity),
        spans=SpanTracker(),
    )

    topo = Topology(seed=880_000 + seed)
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    config = GatewayConfig(
        imtu=_IMTU, emtu=_EMTU,
        elephant_threshold_packets=2, header_only_dma=True,
    )
    gateway = PXGateway(topo.sim, "pxgw", config=config)
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=_IMTU, bandwidth_bps=10e9, delay=5e-5)
    topo.link(gateway, outside, mtu=_EMTU, bandwidth_bps=10e9, delay=5e-5)
    topo.build_routes()
    _, gw_iface, int_out, _int_in = topo.edge(inside, gateway)
    gateway.mark_internal(gw_iface)
    gateway.enable_resilience()
    gateway.attach_observability(obs)

    # The in-sim scraper + SLO alerting, started before any traffic so
    # the first window sees the ramp-up.
    alerts = AlertEngine(default_alert_rules(gateway="pxgw"))
    timeline = TelemetryTimeline(
        topo.sim, obs.registry, interval=scrape_interval, alerts=alerts
    ).start()

    # Failover: periodic checkpoints plus one mid-run takeover, so the
    # standby worker (and the re-armed flush timer) carry the tail of
    # the transfers.
    failover = FailoverManager(gateway, interval=0.25).start()
    observe_failover(obs, failover)
    topo.sim.schedule_at(0.9, failover.takeover)

    # NIC front-end on the inside→gateway link.
    rss = RssDistributor(queues=4)
    queues = [RxQueue(index, capacity=512) for index in range(4)]
    hairpin = HairpinQueue(capacity=256)
    frontend = _NicFrontend(topo.sim, rss, queues, hairpin)
    int_out.add_tap(frontend)
    frontend.start()
    observe_nic(obs, queues=queues, hairpin=hairpin, rss=rss)

    # TCP both ways: download exercises merge, upload exercises split.
    download, upload = 48_000, 24_000
    down_listener = TCPListener(outside, 80, mss=_EMTU - 40)
    up_listener = TCPListener(outside, 9100, mss=_EMTU - 40)
    down = TCPConnection(inside, 40000, outside.ip, 80, mss=_IMTU - 40)
    up = TCPConnection(inside, 40001, outside.ip, 9100, mss=_IMTU - 40)
    down.connect()
    up.connect()

    # UDP caravans both ways.
    inside.enable_caravan_stack(_IMTU)
    received_in: List[bytes] = []
    received_out: List[bytes] = []
    inside.on_udp(4433, lambda p, h: received_in.append(p.payload))
    outside.on_udp(5544, lambda p, h: received_out.append(p.payload))
    burst_in = [bytes([1, i & 0xFF]) * 500 for i in range(24)]
    burst_out = [bytes([2, i & 0xFF]) * 600 for i in range(12)]

    def inbound_burst(start: int) -> None:
        for payload in burst_in[start:start + 12]:
            outside.send_udp(inside.ip, 4433, 4433, payload)

    topo.sim.schedule_at(0.30, inbound_burst, 0)
    topo.sim.schedule_at(0.60, inbound_burst, 12)
    topo.sim.schedule_at(0.70, inside.send_udp_bulk,
                         outside.ip, 5544, 5544, burst_out)

    # F-PMTUD across the gateway: the probe fragments on the eMTU link.
    daemon = FPmtudDaemon(outside)
    prober = FPmtudProber(inside, src_port=_PROBER_PORT)
    prober.tracer = obs.tracer
    prober.spans = obs.spans
    observe_pmtud(obs, prober=prober, daemon=daemon)
    pmtud_results: list = []
    topo.sim.schedule_at(
        0.40, prober.probe, outside.ip, _IMTU, pmtud_results.append
    )

    # Let the handshakes settle, then start the bulk transfers.
    topo.run(until=0.2)
    down_listener.connections[0].send_bulk(download)
    up.send_bulk(upload)
    topo.run(until=until)

    # Stop the scraper before the out-of-sim UPF exercise so the last
    # recorded window reflects only in-sim activity.
    timeline.stop()

    # Standalone UPF exercise (no topology needed).
    upf = _run_upf(rng)
    observe_upf(obs, upf)

    return ObservedWorld(
        seed=seed,
        obs=obs,
        topo=topo,
        gateway=gateway,
        inside=inside,
        outside=outside,
        upf=upf,
        prober=prober,
        daemon=daemon,
        failover=failover,
        rss=rss,
        queues=queues,
        hairpin=hairpin,
        timeline=timeline,
        alerts=alerts,
        notes={
            "downloaded": down.bytes_delivered,
            "uploaded": up_listener.connections[0].bytes_delivered
            if up_listener.connections else 0,
            "datagrams_in": len(received_in),
            "datagrams_out": len(received_out),
            "pmtu": pmtud_results[-1].pmtu if pmtud_results else None,
        },
    )
