"""Span-like flow tracing into a bounded ring buffer.

A :class:`FlowTracer` records structured dict events along a packet's
path through the gateway — ingress → classify → merge/split|caravan →
egress — plus control-plane lifecycles (PMTUD probes, worker mode
transitions, failover swaps, stall windows).  Events are plain dicts so
they serialize to JSON unchanged, and every event is stamped with
**simulation time** (the caller passes ``sim.now``; the tracer never
reads a wall clock), which keeps two same-seed runs' event sequences
identical.

The buffer is a fixed-capacity ring: tracing a long run keeps the most
recent ``capacity`` events and counts what it shed, so an always-on
tracer can never grow without bound.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

__all__ = ["FlowTracer"]


def _hashable(value):
    """Recursively convert lists/tuples/dicts to hashable tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted(
            (key, _hashable(item)) for key, item in value.items()
        ))
    return value


class FlowTracer:
    """A bounded ring buffer of structured trace events."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._events: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        #: Total events ever recorded (including ones the ring shed).
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events shed by the ring (recorded - retained)."""
        return self.recorded - len(self._events)

    # ------------------------------------------------------------------
    def record(self, time: float, kind: str, **fields: object) -> None:
        """Append one event.

        *time* is simulation time; *kind* names the event ("ingress",
        "merge", "health-transition", …); *fields* must be
        JSON-serializable (callers stringify flow keys).
        """
        event: Dict[str, object] = {"time": time, "kind": kind}
        event.update(fields)
        self._events.append(event)
        self.recorded += 1

    # ------------------------------------------------------------------
    def events(self, kind: Optional[str] = None) -> List[Dict[str, object]]:
        """Retained events in arrival order, optionally one *kind* only."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def kinds(self) -> Dict[str, int]:
        """Retained event count per kind (sorted by kind)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            kind = event["kind"]
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def sequence(self) -> List[tuple]:
        """A hashable, order-preserving fingerprint of retained events.

        Two same-seed runs must produce equal sequences — the
        determinism guard compares these directly.  List- and
        dict-valued fields are normalized to (nested) tuples, so every
        entry really is hashable — callers can ``set()`` or dict-key
        them.
        """
        return [
            tuple(sorted(
                ((key, _hashable(value)) for key, value in event.items()),
                key=lambda kv: kv[0],
            ))
            for event in self._events
        ]

    def clear(self) -> None:
        """Drop every retained event (the recorded total is kept)."""
        self._events.clear()

    def to_json(self) -> Dict[str, object]:
        """A JSON-friendly dump: metadata plus the retained events."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": list(self._events),
        }
