"""Unified observability: metrics registry, flow tracing, exporters
(see ``docs/OBSERVABILITY.md`` for the metric catalog and CLI examples).

The layer the ROADMAP's "production-scale" north star requires: every
quantitative claim the PXGW makes (merge ratios, caravan occupancy,
per-packet cycle cost, F-PMTUD convergence) becomes an exported metric
series or a trace event instead of an ad-hoc counter buried in a
component.

Design rules:

* **Pull, not push** — components keep their cheap ad-hoc counters;
  scrape-time *collectors* mirror them onto the registry.  Attaching a
  registry adds zero per-packet work, so chaos digests and perf
  numbers are unaffected.
* **Sim time only** — nothing in an export ever reads a wall clock, so
  two same-seed runs are byte-identical (the determinism guard diffs
  ``to_prometheus_text()`` directly).
* **Tracing is opt-in** — :class:`FlowTracer` and :class:`SpanTracker`
  hooks are guarded with ``is not None`` everywhere; unattached
  datapaths pay nothing.
* **Latency lives in sim time** — :class:`SpanTracker` spans open at
  gateway ingress and close at egress/drop with parent/child causality
  across merge, split, and caravan stages; :class:`TelemetryTimeline`
  scrapes the registry periodically *inside* the simulation; and
  :class:`AlertEngine` turns scrapes into PENDING→FIRING→RESOLVED
  transitions stamped in sim time.  All three export byte-identically
  across same-seed runs.

See ``docs/OBSERVABILITY.md`` for the metric catalog and CLI examples.
"""

from .alerts import (
    AlertEngine,
    AlertRule,
    burn_rate_rules,
    default_alert_rules,
    default_burn_rules,
)
from .collectors import (
    Observability,
    observe_failover,
    observe_fleet,
    observe_gateway,
    observe_nic,
    observe_pmtud,
    observe_spans,
    observe_upf,
    record_bench_report,
)
from .flight import FlightRecorder
from .incident import (
    TRIGGER_KINDS,
    build_incident_bundle,
    bundle_to_json,
    config_digest,
    run_trigger_matrix,
)
from .propagation import TraceContext, TracePropagation
from .registry import (
    LOG2_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .spans import LATENCY_BUCKETS, LATENCY_METRICS, Span, SpanTracker
from .timeline import TelemetryTimeline
from .tracer import FlowTracer
from .world import (
    ObservedWorld,
    WorkloadSchedule,
    default_workload_schedule,
    run_observed_world,
)

__all__ = [
    "AlertEngine",
    "AlertRule",
    "Counter",
    "FlightRecorder",
    "FlowTracer",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "LATENCY_METRICS",
    "LOG2_BUCKETS",
    "MetricsRegistry",
    "Observability",
    "ObservedWorld",
    "Span",
    "SpanTracker",
    "TRIGGER_KINDS",
    "TelemetryTimeline",
    "TraceContext",
    "TracePropagation",
    "build_incident_bundle",
    "bundle_to_json",
    "burn_rate_rules",
    "config_digest",
    "default_alert_rules",
    "default_burn_rules",
    "default_registry",
    "observe_failover",
    "observe_fleet",
    "observe_gateway",
    "observe_nic",
    "observe_pmtud",
    "observe_spans",
    "observe_upf",
    "record_bench_report",
    "run_observed_world",
    "run_trigger_matrix",
    "WorkloadSchedule",
    "default_workload_schedule",
]
