"""Deterministic incident bundles: packaged evidence for one trigger.

When something goes wrong — an alert fires, the chaos oracle rejects a
run, a canary rolls back, a fleet shard dies — the operator's first
question is *what exactly happened*, and the answer must be assembled
from rings that are still warm.  :func:`build_incident_bundle` packages
that answer deterministically:

* the :class:`~repro.obs.flight.FlightRecorder` window around the
  trigger (per world or per shard);
* the firing alerts with their cited transition history;
* the reconstructed cross-shard trace for the implicated flows
  (:class:`~repro.obs.propagation.TracePropagation` journeys joined
  with flow-attributed spans), plus a consistency verdict;
* a registry snapshot and the active guardrails;
* a digest of the exact gateway config that was running.

Everything is a pure function of sim state, so two same-seed processes
build byte-identical bundles — the CI ``incident`` job runs the whole
trigger matrix twice and diffs the files.

The four stock trigger scenarios (``alert``, ``rollback``,
``shard-loss``, ``oracle``) live here too, behind lazy imports so this
module stays importable from ``repro.obs`` without dragging in the
fleet and ops layers at package-init time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "TRIGGER_KINDS",
    "alert_trigger_bundle",
    "build_incident_bundle",
    "bundle_to_json",
    "config_digest",
    "oracle_trigger_bundle",
    "rollback_trigger_bundle",
    "run_trigger_matrix",
    "shard_loss_trigger_bundle",
]

#: Every trigger the bundle builder recognises, in matrix order.
TRIGGER_KINDS = ("alert-firing", "canary-rollback", "shard-loss",
                 "chaos-oracle", "shard-drain")


def config_digest(config) -> Dict[str, Any]:
    """A stable digest (plus the full dump) of one gateway config."""
    payload = dataclasses.asdict(config)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return {
        "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
        "config": payload,
    }


def build_incident_bundle(
    kind: str,
    time: float,
    *,
    window: float = 1.0,
    detail: Optional[Dict[str, Any]] = None,
    flights: Sequence = (),
    alerts: Optional[Dict[str, Any]] = None,
    registry=None,
    guardrails=None,
    config=None,
    trace=None,
    trackers: Optional[Dict[Any, Any]] = None,
    flows: Sequence = (),
    owner_of=None,
) -> Dict[str, Any]:
    """Assemble one deterministic incident bundle.

    ``kind`` is one of :data:`TRIGGER_KINDS`; ``time`` is the trigger's
    sim time and ``window`` how many sim-seconds of flight-recorder
    history to cite before it.  ``alerts`` maps a label (world or shard
    name) to its :class:`~repro.obs.alerts.AlertEngine`; ``trace`` is
    the fleet's :class:`TracePropagation` and ``flows`` the implicated
    flows whose journeys the bundle reconstructs against the per-shard
    ``trackers``.  ``owner_of`` is the steering table's non-perturbing
    ownership peek used by the consistency check.
    """
    if kind not in TRIGGER_KINDS:
        raise ValueError(f"unknown trigger kind {kind!r} (use {TRIGGER_KINDS})")
    since = time - window

    bundle: Dict[str, Any] = {
        "schema": "repro-incident/1",
        "trigger": {"kind": kind, "time": time, "detail": detail or {}},
        "window": {"since": since, "until": time},
    }

    bundle["flight"] = {
        recorder.name: recorder.to_dict(since=since, until=time)
        for recorder in flights
    }

    if alerts:
        cited: Dict[str, Any] = {}
        for label in sorted(alerts):
            engine = alerts[label]
            fired = engine.fired_by(time)
            firing = engine.firing_at(time)
            states = engine.states_at(time)
            # Cite every rule that ever fired plus anything not-ok at
            # the cut (a rule still PENDING when a shard died is
            # evidence, not noise).
            interesting = set(fired) | set(firing) | {
                rule for rule, state in states.items() if state != "ok"
            }
            history = [entry for entry in engine.history()
                       if entry["time"] <= time
                       and entry["rule"] in interesting]
            cited[label] = {
                "fired": fired,
                "firing": firing,
                "states": states,
                "history": history,
            }
        bundle["alerts"] = cited
    else:
        bundle["alerts"] = {}

    trace_section: Dict[str, Any] = {
        "flows": [str(flow) for flow in flows],
        "journeys": [],
        "consistent": True,
        "problems": [],
    }
    if trace is not None:
        journeys: List[dict] = []
        for flow in flows:
            journey = trace.reconstruct(flow, trackers)
            if journey is not None:
                journeys.append(journey)
        problems = trace.verify(flows, owner_of=owner_of, trackers=trackers)
        trace_section["journeys"] = journeys
        trace_section["problems"] = problems
        trace_section["consistent"] = not problems
        trace_section["summary"] = trace.summary()
    bundle["trace"] = trace_section

    bundle["metrics"] = (
        dict(sorted(registry.snapshot().items())) if registry is not None
        else {}
    )
    bundle["guardrails"] = (
        [rail.to_dict() for rail in guardrails] if guardrails else []
    )
    bundle["config"] = config_digest(config) if config is not None else None
    return bundle


def bundle_to_json(bundle: Dict[str, Any],
                   indent: Optional[int] = None) -> str:
    """Byte-deterministic serialization of one bundle (or a matrix)."""
    if indent is None:
        return json.dumps(bundle, sort_keys=True, separators=(",", ":"))
    return json.dumps(bundle, sort_keys=True, indent=indent)


# ----------------------------------------------------------------------
# Stock trigger scenarios — one per trigger class the issue names.
# Imports are lazy: each pulls in exactly the layers its scenario needs.
# ----------------------------------------------------------------------

def alert_trigger_bundle(seed: int = 0) -> Dict[str, Any]:
    """Alert-firing trigger: a merge-disabled world trips the SLO rules.

    Runs the seeded observed world with delayed merging switched off
    (the ops corpus' ``merge-disabled-config`` regression), so the
    ``merge-ratio-floor`` rule deterministically fires; the bundle is
    cut at the first firing transition.
    """
    from dataclasses import replace

    from ..core.config import GatewayConfig
    from .alerts import default_alert_rules, default_burn_rules
    from .world import run_observed_world

    config = replace(
        GatewayConfig(imtu=9000, emtu=1500, header_only_dma=True),
        delayed_merge=False,
        elephant_threshold_packets=1_000_000,
    )
    rules = default_alert_rules("pxgw") + default_burn_rules("pxgw")
    world = run_observed_world(seed=seed, config=config, alert_rules=rules)
    engine = world.alerts
    firings = engine.firings()
    at = firings[0]["time"] if firings else world.topo.sim.now
    checkpoint = world.failover.last_checkpoint
    flows = [record[0] for record in checkpoint.flows][:8] if checkpoint else []
    worker = world.gateway.worker.index
    return build_incident_bundle(
        "alert-firing",
        at,
        detail={"rules": sorted({t["rule"] for t in firings}), "seed": seed},
        flights=[world.flight],
        alerts={"world": engine},
        registry=world.obs.registry,
        config=world.config,
        trace=world.trace,
        trackers={worker: world.obs.spans},
        flows=flows,
    )


def rollback_trigger_bundle(seed: int = 0,
                            incident: str = "mis-sized-mtu-rollout"
                            ) -> Dict[str, Any]:
    """Canary-rollback trigger: replay an ops regression incident.

    The twin-world canary rolls the candidate back and its report now
    embeds the bundle; this just unwraps it.
    """
    from ..ops.incidents import run_incident

    report = run_incident(incident, seed=seed)
    bundle = report.get("incident_bundle")
    if bundle is None:
        raise RuntimeError(
            f"incident {incident!r} did not roll back — no bundle")
    return bundle


def shard_loss_trigger_bundle(seed: int = 101) -> Dict[str, Any]:
    """Fleet shard-loss trigger: an observed maintenance-mode loss run."""
    from ..fleet.chaos import run_loss_scenario

    result = run_loss_scenario("mixed", seed, loss_mode="maintenance",
                               observe=True)
    if result.incident is None:
        raise RuntimeError("observed loss scenario produced no bundle")
    return result.incident


def oracle_trigger_bundle(seed: int = 101) -> Dict[str, Any]:
    """Chaos-oracle trigger: a sabotaged run the oracle must reject.

    The ``stale-checkpoint`` sabotage restores the victim from a
    checkpoint captured long before the kill, so the maintenance-mode
    zero-loss differential fails and the oracle's violations become the
    bundle's trigger detail.
    """
    from ..fleet.chaos import run_loss_scenario

    result = run_loss_scenario("mixed", seed, loss_mode="maintenance",
                               observe=True, sabotage="stale-checkpoint")
    if result.incident is None:
        raise RuntimeError("sabotaged loss scenario produced no bundle")
    if result.incident["trigger"]["kind"] != "chaos-oracle":
        raise RuntimeError("sabotage did not trip the chaos oracle")
    return result.incident


def run_trigger_matrix(seed: int = 0) -> Dict[str, Any]:
    """All four stock triggers in one deterministic document."""
    return {
        "schema": "repro-incident-matrix/1",
        "seed": seed,
        "bundles": {
            "alert": alert_trigger_bundle(seed=seed),
            "rollback": rollback_trigger_bundle(seed=seed),
            "shard-loss": shard_loss_trigger_bundle(seed=101 + seed),
            "oracle": oracle_trigger_bundle(seed=101 + seed),
        },
    }
