"""Deterministic SLO alerting over registry snapshots.

Production observability is scrapes + alert rules; this module is the
sim-time equivalent.  An :class:`AlertRule` declares a condition over
registry series (absolute value, windowed rate, ratio of two series,
or a label-summed value) plus an optional **for-duration** — the rule
must stay breached that long before it fires, exactly like Prometheus'
``for:`` clause.  An :class:`AlertEngine` evaluates every rule at each
:class:`~repro.obs.timeline.TelemetryTimeline` tick and records
PENDING → FIRING → RESOLVED transitions stamped in sim time.

States are ``ok`` / ``pending`` / ``firing``; a ``firing → ok``
transition *is* the resolution (listed by :meth:`AlertEngine.resolutions`).
Everything is driven by snapshot dictionaries, so two same-seed runs
produce byte-identical transition logs — alerts are test oracles here,
not best-effort notifications.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["AlertRule", "AlertEngine", "adversarial_alert_rules",
           "burn_rate_rules", "default_alert_rules", "default_burn_rules",
           "OK", "PENDING", "FIRING"]

OK = "ok"
PENDING = "pending"
FIRING = "firing"

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
}

_KINDS = ("value", "rate", "ratio", "sum", "burn")

#: Human-readable labels for every legal state edge.  ``firing → ok``
#: *is* the resolution; ``pending → ok`` means the condition cleared
#: before the for-duration elapsed (never fired).
_EDGES = {
    (OK, PENDING): "pending",
    (OK, FIRING): "fired",
    (PENDING, FIRING): "fired",
    (PENDING, OK): "cleared",
    (FIRING, OK): "resolved",
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO condition over registry series.

    ``kind`` selects how the observed value is computed at each tick:

    * ``value`` — the snapshot value of ``series`` (0 when absent).
    * ``sum``   — the sum of every snapshot key starting with ``series``
      (collapses a label dimension).
    * ``rate``  — this window's delta of ``series`` divided by the
      window length, in units/second.
    * ``ratio`` — snapshot ``series`` divided by snapshot
      ``denominator``; no data (denominator 0) evaluates to ``None``
      and never breaches.
    * ``burn``  — multi-window error-budget burn rate (the SRE-book
      construction): the burn of ``series`` over ``denominator``
      against ``budget`` is measured over **both** ``fast_window`` and
      ``slow_window`` sim-seconds and the observed value is the *lower*
      of the two, so a breach means the budget is burning at that
      multiple over the short window *and* the long one.  Windows are
      clipped to the available scrape history (a 60 s window on a 3 s
      world measures burn since the first scrape); the engine keeps
      the bounded snapshot log this needs only when burn rules are
      installed.

    ``for_duration`` is sim-seconds the condition must hold before
    PENDING escalates to FIRING; 0 fires immediately.
    """

    name: str
    series: str
    op: str
    threshold: float
    kind: str = "value"
    for_duration: float = 0.0
    denominator: Optional[str] = None
    description: str = ""
    fast_window: float = 0.0
    slow_window: float = 0.0
    budget: float = 1.0

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r} (use {sorted(_OPS)})")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown kind {self.kind!r} (use {_KINDS})")
        if self.kind == "ratio" and not self.denominator:
            raise ValueError("ratio rules need a denominator series")
        if self.kind == "burn":
            if not self.denominator:
                raise ValueError("burn rules need a denominator series")
            if self.fast_window <= 0 or self.slow_window < self.fast_window:
                raise ValueError(
                    "burn rules need 0 < fast_window <= slow_window")
            if self.budget <= 0:
                raise ValueError("burn rules need a positive budget")
        if self.for_duration < 0:
            raise ValueError("for_duration must be >= 0")

    def value(self, snapshot: Dict[str, float], deltas: Dict[str, float],
              window: Optional[float]) -> Optional[float]:
        """The observed value at this tick; ``None`` means no data."""
        if self.kind == "value":
            return snapshot.get(self.series, 0.0)
        if self.kind == "sum":
            return sum(v for k, v in snapshot.items() if k.startswith(self.series))
        if self.kind == "rate":
            if not window:
                return None
            return deltas.get(self.series, 0.0) / window
        if self.kind == "burn":
            # Needs scrape history; the engine computes this and hands
            # the result straight to ``breached``.
            return None
        denominator = snapshot.get(self.denominator, 0.0)
        if denominator == 0:
            return None
        return snapshot.get(self.series, 0.0) / denominator

    def breached(self, value: Optional[float]) -> bool:
        """Whether *value* violates the rule (no data never breaches)."""
        return value is not None and _OPS[self.op](value, self.threshold)

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "series": self.series,
            "op": self.op,
            "threshold": self.threshold,
            "kind": self.kind,
            "for_duration": self.for_duration,
            "denominator": self.denominator,
            "description": self.description,
        }
        if self.kind == "burn":
            payload["fast_window"] = self.fast_window
            payload["slow_window"] = self.slow_window
            payload["budget"] = self.budget
        return payload


@dataclass
class AlertEngine:
    """Evaluates rules at each scrape and logs sim-time transitions."""

    rules: Tuple[AlertRule, ...]
    transitions: List[dict] = field(default_factory=list)
    evaluations: int = 0

    def __post_init__(self):
        self.rules = tuple(self.rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError("alert rule names must be unique")
        self._state: Dict[str, str] = {rule.name: OK for rule in self.rules}
        self._pending_since: Dict[str, float] = {}
        # Burn rules need scrape history; keep a bounded (time, snapshot)
        # log only when they're installed so value/rate/ratio-only
        # engines pay nothing new.
        self._burn_lookback = max(
            (rule.slow_window for rule in self.rules if rule.kind == "burn"),
            default=0.0,
        )
        self._scrapes: List[Tuple[float, Dict[str, float]]] = []

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, now: float, snapshot: Dict[str, float],
                 deltas: Optional[Dict[str, float]] = None,
                 window: Optional[float] = None) -> None:
        """Run every rule against one scrape (timeline calls this)."""
        if deltas is None:
            deltas = {}
        self.evaluations += 1
        if self._burn_lookback > 0:
            self._scrapes.append((now, dict(snapshot)))
            # Keep one scrape at or before ``now - lookback`` as the
            # far baseline; everything older is unreachable.
            horizon = now - self._burn_lookback
            while len(self._scrapes) >= 2 and self._scrapes[1][0] <= horizon:
                self._scrapes.pop(0)
        for rule in self.rules:
            if rule.kind == "burn":
                value = self._burn_value(rule, now, snapshot)
            else:
                value = rule.value(snapshot, deltas, window)
            state = self._state[rule.name]
            if rule.breached(value):
                if state == OK:
                    if rule.for_duration > 0:
                        self._pending_since[rule.name] = now
                        self._go(rule.name, PENDING, now, value)
                    else:
                        self._go(rule.name, FIRING, now, value)
                elif state == PENDING:
                    if now - self._pending_since[rule.name] >= rule.for_duration:
                        self._go(rule.name, FIRING, now, value)
            elif state != OK:
                # pending cleared, or firing resolved
                self._pending_since.pop(rule.name, None)
                self._go(rule.name, OK, now, value)

    def _burn_value(self, rule: AlertRule, now: float,
                    snapshot: Dict[str, float]) -> Optional[float]:
        """min(burn over fast window, burn over slow window), or None.

        A window's burn is ``(Δseries / Δdenominator) / budget`` between
        the newest scrape at or before ``now - window`` (clipped to the
        oldest available scrape) and the current snapshot.  No earlier
        scrape or no denominator progress means no data.
        """
        history = self._scrapes[:-1]  # the current scrape was just appended
        if not history:
            return None

        def _window_burn(window: float) -> Optional[float]:
            target = now - window
            base = None
            for time, snap in reversed(history):
                if time <= target:
                    base = snap
                    break
            if base is None:
                base = history[0][1]
            err = snapshot.get(rule.series, 0.0) - base.get(rule.series, 0.0)
            total = (snapshot.get(rule.denominator, 0.0)
                     - base.get(rule.denominator, 0.0))
            if total <= 0:
                return None
            return (err / total) / rule.budget

        fast = _window_burn(rule.fast_window)
        slow = _window_burn(rule.slow_window)
        if fast is None or slow is None:
            return None
        return fast if fast <= slow else slow

    def _go(self, name: str, to_state: str, now: float,
            value: Optional[float]) -> None:
        from_state = self._state[name]
        self._state[name] = to_state
        self.transitions.append({
            "time": now,
            "rule": name,
            "from": from_state,
            "to": to_state,
            "value": value,
        })

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state(self, name: str) -> str:
        """The current state of one rule."""
        return self._state[name]

    def states(self) -> Dict[str, str]:
        """Current state of every rule, sorted by rule name."""
        return dict(sorted(self._state.items()))

    def firing(self) -> List[str]:
        """Names of rules currently firing."""
        return sorted(name for name, state in self._state.items()
                      if state == FIRING)

    def firings(self) -> List[dict]:
        """All transitions into FIRING, in order."""
        return [t for t in self.transitions if t["to"] == FIRING]

    def resolutions(self) -> List[dict]:
        """All FIRING→OK transitions (the resolutions), in order."""
        return [t for t in self.transitions
                if t["from"] == FIRING and t["to"] == OK]

    def history(self, rule: Optional[str] = None) -> List[dict]:
        """The deterministic sim-time transition history, with edges.

        Every recorded transition, in evaluation order, annotated with
        a global sequence number and the edge label (``pending`` /
        ``fired`` / ``resolved`` / ``cleared``) — the evidence format
        canary verdicts cite.  Flapping sequences (resolved →
        re-pending → re-fired) appear in full: the engine records one
        entry per state change and never coalesces repeats.  *rule*
        filters to one rule while keeping global sequence numbers.
        """
        entries = []
        for seq, transition in enumerate(self.transitions):
            if rule is not None and transition["rule"] != rule:
                continue
            entry = dict(transition)
            entry["seq"] = seq
            entry["edge"] = _EDGES[(transition["from"], transition["to"])]
            entries.append(entry)
        return entries

    def states_at(self, time: float) -> Dict[str, str]:
        """Every rule's state as of sim *time* (inclusive), by name.

        Reconstructed from the transition log, so it works on finished
        engines — the canary controller replays the log to evaluate
        each rollout stage retrospectively at its observation horizon.
        """
        states = {rule.name: OK for rule in self.rules}
        for transition in self.transitions:
            if transition["time"] <= time:
                states[transition["rule"]] = transition["to"]
        return dict(sorted(states.items()))

    def firing_at(self, time: float) -> List[str]:
        """Names of rules in FIRING state as of sim *time*."""
        return sorted(name for name, state in self.states_at(time).items()
                      if state == FIRING)

    def fired_by(self, time: float) -> List[str]:
        """Names of rules that entered FIRING at or before sim *time*."""
        return sorted({t["rule"] for t in self.transitions
                       if t["to"] == FIRING and t["time"] <= time})

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        """Byte-deterministic JSON: rules, history, final states."""
        payload = {
            "rules": [rule.to_dict() for rule in self.rules],
            "transitions": self.transitions,
            "history": self.history(),
            "states": self.states(),
            "evaluations": self.evaluations,
        }
        return json.dumps(payload, sort_keys=True, indent=indent,
                          separators=(",", ":") if indent is None else None)


def default_alert_rules(gateway: str = "pxgw") -> Tuple[AlertRule, ...]:
    """The stock SLO rules for one observed PXGW.

    These encode the paper's operating envelope: the gateway should be
    merging (else PX costs cycles for nothing), not dropping, healthy,
    and hitting its PMTU clamp cache.
    """
    labels = f'{{gateway="{gateway}"}}'
    return (
        AlertRule(
            name="merge-ratio-floor",
            kind="ratio",
            series=f"px_gateway_merged_packets_total{labels}",
            denominator=f"px_gateway_rx_packets_total{labels}",
            op="<", threshold=0.02, for_duration=0.2,
            description="Merged-packet share of ingress collapsed: the "
                        "delayed-merge engine is idling while still "
                        "charging per-packet cycles.",
        ),
        AlertRule(
            name="drop-rate-ceiling",
            kind="rate",
            series=f"px_gateway_dropped_packets_total{labels}",
            op=">", threshold=0.0,
            description="The gateway dropped packets this window "
                        "(no-route or malformed caravans).",
        ),
        AlertRule(
            name="health-degraded-dwell",
            kind="value",
            series=f"px_health_state{labels}",
            op=">=", threshold=1, for_duration=0.1,
            description="Health monitor away from HEALTHY for 100 ms — "
                        "the datapath is flushing merges or bypassing.",
        ),
        AlertRule(
            name="pmtu-cache-miss-spike",
            kind="rate",
            series=f"px_pmtu_cache_misses_total{labels}",
            op=">", threshold=200.0,
            description="PMTU clamp-cache miss burst: outbound splits "
                        "are re-probing instead of reusing cached PMTUs.",
        ),
    )


def burn_rate_rules(series: str, denominator: str, budget: float = 1e-3,
                    name: str = "error-budget-burn") -> Tuple[AlertRule, ...]:
    """Multi-window burn-rate rules over an error/total series pair.

    Two alarms per the multiwindow construction, scaled to sim time:
    a **fast** pair (1 s / 5 s windows at 14.4× burn — the paging
    alarm) and a **slow** pair (5 s / 60 s windows at 6× burn — the
    ticket alarm).  ``budget`` is the tolerated error fraction of
    ``denominator`` (default 0.1%).
    """
    return (
        AlertRule(
            name=f"{name}-fast",
            kind="burn",
            series=series,
            denominator=denominator,
            op=">=", threshold=14.4,
            fast_window=1.0, slow_window=5.0, budget=budget,
            description="Error budget burning at >=14.4x over both the "
                        "1 s and 5 s windows — page-severity burn.",
        ),
        AlertRule(
            name=f"{name}-slow",
            kind="burn",
            series=series,
            denominator=denominator,
            op=">=", threshold=6.0,
            fast_window=5.0, slow_window=60.0, budget=budget,
            description="Error budget burning at >=6x over both the "
                        "5 s and 60 s windows — sustained burn.",
        ),
    )


def default_burn_rules(gateway: str = "pxgw",
                       budget: float = 1e-3) -> Tuple[AlertRule, ...]:
    """The stock burn-rate pair: dropped packets against ingress."""
    labels = f'{{gateway="{gateway}"}}'
    return burn_rate_rules(
        series=f"px_gateway_dropped_packets_total{labels}",
        denominator=f"px_gateway_rx_packets_total{labels}",
        budget=budget,
    )


def adversarial_alert_rules(gateway: str = "pxgw",
                            agent: str = "fpmtud") -> Tuple[AlertRule, ...]:
    """The stock rules plus attack-detection rules.

    Used by :mod:`repro.chaos.attacks`: a PMTUD attack should be
    *visible*, not just survived.  A forged-report flood shows up twice
    — the hardened prober's rejection counter spikes, and the starved
    clamp cache breaches the stock miss-rate ceiling.
    """
    return default_alert_rules(gateway) + (
        AlertRule(
            name="pmtud-rejected-reports",
            kind="rate",
            series=f'px_pmtud_rejected_reports_total{{agent="{agent}"}}',
            op=">", threshold=100.0,
            description="The prober is rejecting fragment reports at "
                        "flood rate — forged or lying reports are "
                        "being thrown at the discovery path.",
        ),
        AlertRule(
            name="pmtu-cache-poison-attempts",
            kind="rate",
            series=f'px_pmtu_cache_poison_rejected_total{{gateway="{gateway}"}}',
            op=">", threshold=20.0,
            description="The PMTU cache is refusing unsolicited "
                        "learns (implausible or raising values) at a "
                        "rate consistent with active poisoning.",
        ),
    )
