"""Thin adapters publishing each layer's ad-hoc counters as metrics.

Every ``observe_*`` function registers a scrape-time collector on an
:class:`Observability` bundle's registry.  The collectors close over
the *owning* object (gateway, UPF, NIC model), not over its current
sub-objects, so a worker swapped in by failover is picked up on the
next scrape automatically.

Metric naming convention (see ``docs/OBSERVABILITY.md``)::

    px_<layer>_<noun>[_<unit>]_total   counters
    px_<layer>_<noun>[_<unit>]         gauges
    px_<layer>_<noun>_<unit>           histograms (base unit in name)

Layers: ``gateway``, ``worker``, ``health``, ``failover``, ``pmtu_cache``,
``negotiation``, ``nic``, ``upf``, ``pmtud``, ``bench``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .registry import MetricsRegistry
from .spans import LATENCY_BUCKETS, LATENCY_METRICS, SpanTracker
from .tracer import FlowTracer

__all__ = [
    "Observability",
    "observe_gateway",
    "observe_failover",
    "observe_fleet",
    "observe_nic",
    "observe_spans",
    "observe_upf",
    "observe_pmtud",
    "record_bench_report",
]


class Observability:
    """A registry plus optional tracer and span tracker.

    The tracer and span tracker may be ``None`` for metrics-only
    attachment (the default; chaos worlds add spans explicitly): every
    trace and span call site guards on the attribute, so a metrics-only
    bundle adds zero work to the datapath.  When a span tracker is
    supplied, its latency histograms and balance counters are published
    on the registry via :func:`observe_spans` automatically.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[FlowTracer] = None,
        spans: Optional[SpanTracker] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.spans = spans
        if spans is not None:
            observe_spans(self, spans)

    def trace(self, time: float, kind: str, **fields: object) -> None:
        """Record a trace event if a tracer is attached (else no-op)."""
        if self.tracer is not None:
            self.tracer.record(time, kind, **fields)


# ----------------------------------------------------------------------
# Span tracker (lifecycle latency)
# ----------------------------------------------------------------------
def observe_spans(obs: Observability, tracker: SpanTracker) -> None:
    """Publish a span tracker's balance counters and latency histograms.

    The four latency histograms use the sub-second ``LATENCY_BUCKETS``
    ladder (not the byte-oriented ``LOG2_BUCKETS`` default) and are
    mirrored idempotently from the tracker's exact value->count maps
    via :meth:`Histogram.load`, keeping scrapes byte-deterministic.
    """

    def collect(registry: MetricsRegistry) -> None:
        registry.counter(
            "px_spans_opened_total", "Spans opened at gateway ingress"
        ).set_total(tracker.opened)
        registry.counter(
            "px_spans_closed_total", "Spans closed at egress"
        ).set_total(tracker.closed)
        registry.counter(
            "px_spans_dropped_total", "Spans closed as dropped"
        ).set_total(tracker.dropped)
        registry.counter(
            "px_spans_anomalies_total", "Span accounting impossibilities"
        ).set_total(tracker.anomalies)
        registry.counter(
            "px_spans_shed_total", "Finished spans evicted from the ring"
        ).set_total(tracker.shed)
        registry.gauge(
            "px_spans_open", "Spans currently open (in flight or buffered)"
        ).set(tracker.open_count())
        for metric in LATENCY_METRICS:
            registry.histogram(
                metric, "Sim-time latency distribution",
                bounds=LATENCY_BUCKETS,
            ).load(tracker.latency_values(metric))

    obs.registry.register_collector(collect)


# ----------------------------------------------------------------------
# Gateway + worker + attached resilience
# ----------------------------------------------------------------------
def observe_gateway(obs: Observability, gateway, name: Optional[str] = None) -> None:
    """Publish a PXGateway's full counter surface (worker, resilience).

    Reads ``gateway.worker`` (and ``gateway.health`` / ``pmtu_cache`` /
    ``negotiator``) at scrape time, so failover swaps and late resilience
    attachment are always reflected.
    """
    label = name if name is not None else gateway.name

    def collect(registry: MetricsRegistry) -> None:
        worker = gateway.worker
        stats = worker.stats

        def counter(metric: str, value, help: str = "", **labels) -> None:
            registry.counter(metric, help, gateway=label, **labels).set_total(value)

        def gauge(metric: str, value, help: str = "", **labels) -> None:
            registry.gauge(metric, help, gateway=label, **labels).set(value)

        counter("px_gateway_rx_packets_total", stats.rx_packets,
                "Packets offered to the worker pipeline.")
        counter("px_gateway_tx_packets_total", stats.tx_packets,
                "Packets emitted by the worker pipeline.")
        counter("px_gateway_merged_packets_total", stats.merged_packets,
                "Full-iMTU segments spliced by the merge engine.")
        counter("px_gateway_split_segments_total", stats.split_segments,
                "Segments produced by outbound splitting.")
        counter("px_gateway_caravans_built_total", stats.caravans_built,
                "PX-caravan bundles assembled.")
        counter("px_gateway_caravans_opened_total", stats.caravans_opened,
                "PX-caravan bundles opened back into datagrams.")
        counter("px_gateway_caravans_suppressed_total", stats.caravans_suppressed,
                "Datagrams sent plain because negotiation withheld bundling.")
        counter("px_gateway_malformed_caravans_total", stats.malformed_caravans,
                "Caravans the split engine refused to open.")
        counter("px_gateway_hairpinned_packets_total", stats.hairpinned,
                "Mice bounced through the NIC hairpin.")
        counter("px_gateway_mss_rewrites_total", stats.mss_rewrites,
                "SYN/SYN-ACK MSS options rewritten.")
        counter("px_gateway_hdo_fallbacks_total", stats.hdo_fallbacks,
                "Header-only DMA packets charged at full-DMA rates.")
        counter("px_gateway_passthrough_packets_total", stats.passthrough_packets,
                "Data packets forwarded unmerged while DEGRADED.")
        counter("px_gateway_bypassed_packets_total", stats.bypassed_packets,
                "Packets hairpinned past the pipeline in BYPASS mode.")
        counter("px_gateway_dropped_packets_total", gateway.dropped,
                "Packets dropped for lack of a route.")
        counter("px_gateway_untranslated_packets_total", gateway.untranslated,
                "Packets forwarded whole to an equal-or-larger-iMTU peer.")
        counter("px_gateway_tcp_payload_bytes_total", stats.tcp_payload_in,
                "TCP payload bytes through the merge/split engines.",
                direction="in")
        counter("px_gateway_tcp_payload_bytes_total", stats.tcp_payload_out,
                direction="out")
        counter("px_gateway_udp_datagrams_total", stats.udp_datagrams_in,
                "UDP datagrams through the caravan engines.", direction="in")
        counter("px_gateway_udp_datagrams_total", stats.udp_datagrams_out,
                direction="out")
        counter("px_gateway_udp_datagrams_malformed_total",
                stats.udp_datagrams_malformed,
                "Datagrams discarded inside damaged caravans.")
        gauge("px_gateway_pending_merge_bytes", worker.merge.pending_bytes(),
              "TCP payload bytes buffered across merge contexts.")
        gauge("px_gateway_pending_caravan_datagrams",
              worker.caravan_merge.pending_packets(),
              "Datagrams buffered across caravan contexts.")
        gauge("px_gateway_conversion_yield", stats.conversion_yield,
              "Fraction of inbound data packets at full iMTU.")
        registry.histogram(
            "px_gateway_inbound_packet_bytes",
            "Sizes of data packets emitted toward the b-network.",
            gateway=label,
        ).load(stats.inbound_size_histogram)

        from ..core.worker import WorkerMode

        gauge("px_worker_mode", WorkerMode.ALL.index(worker.mode),
              "Datapath mode (0=normal, 1=degraded, 2=bypass).")
        gauge("px_worker_index", worker.index,
              "Index of the worker currently serving the datapath.")
        counter("px_worker_cycles_total", worker.account.cycles,
                "CPU cycles charged by the cost model.")
        counter("px_worker_merge_evictions_total", worker.merge.evictions,
                "Merge contexts evicted by capacity pressure.")
        gauge("px_worker_merge_contexts", len(worker.merge),
              "Open TCP merge contexts.")
        gauge("px_worker_caravan_contexts", len(worker.caravan_merge),
              "Open caravan merge contexts.")
        gauge("px_worker_flows", len(worker.flows),
              "Flow-table entries owned by the worker.")

        health = gateway.health
        if health is not None:
            from ..resilience.health import HealthState

            gauge("px_health_state", HealthState.ORDER.index(health.state),
                  "Gateway health (0=healthy, 1=degraded, 2=bypass).")
            counter("px_health_beats_total", health.beats,
                    "Watchdog heartbeats evaluated.")
            counter("px_health_bad_beats_total", health.bad_beats,
                    "Heartbeats with at least one bad signal.")
            counter("px_health_transitions_total", len(health.transitions),
                    "Health state transitions recorded.")
            for signal, count in health.signal_counts.items():
                counter("px_health_signals_total", count,
                        "Beats on which each bad-health signal fired.",
                        signal=signal)

        cache = gateway.pmtu_cache
        if cache is not None:
            counter("px_pmtu_cache_hits_total", cache.hits,
                    "Live PMTU-cache lookups answered.")
            counter("px_pmtu_cache_misses_total", cache.misses,
                    "PMTU-cache lookups that missed or had expired.")
            counter("px_pmtu_cache_expirations_total", cache.expirations,
                    "Entries dropped by TTL expiry.")
            counter("px_pmtu_cache_invalidations_total", cache.invalidations,
                    "Entries flushed by invalidation (route changes).")
            counter("px_pmtu_cache_poison_rejected_total",
                    getattr(cache, "poison_rejected", 0),
                    "Unsolicited learns refused by the hardening policy "
                    "(implausible values or raises over live entries).")
            counter("px_pmtu_cache_contradictions_total",
                    getattr(cache, "contradictions", 0),
                    "Cached entries dropped because a fresh probe "
                    "measurement contradicted them.")
            gauge("px_pmtu_cache_entries", len(cache),
                  "Live PMTU-cache entries.")

        negotiator = gateway.negotiator
        if negotiator is not None:
            counter("px_negotiation_queries_total", negotiator.queries_sent,
                    "Caravan CAP-QUERY probes sent.")
            counter("px_negotiation_acks_total", negotiator.acks_received,
                    "CAP-ACK answers received.")
            counter("px_negotiation_negative_verdicts_total",
                    negotiator.negative_verdicts,
                    "Peers placed in the negative cache after silence.")
            counter("px_negotiation_suppressed_bundles_total",
                    negotiator.suppressed_bundles,
                    "Bundling decisions withheld pending/denied capability.")

    obs.registry.register_collector(collect)


def observe_failover(obs: Observability, manager, name: Optional[str] = None) -> None:
    """Publish a FailoverManager's checkpoint/takeover counters."""
    label = name if name is not None else manager.gateway.name

    def collect(registry: MetricsRegistry) -> None:
        registry.counter(
            "px_failover_checkpoints_total",
            "Worker checkpoints captured.", gateway=label,
        ).set_total(manager.checkpoints_taken)
        registry.counter(
            "px_failover_takeovers_total",
            "Standby-worker takeovers performed.", gateway=label,
        ).set_total(manager.takeovers)
        last = manager.last_checkpoint
        registry.gauge(
            "px_failover_checkpoint_pending_packets",
            "Pending merge packets in the last checkpoint.", gateway=label,
        ).set(len(last.pending) if last is not None else 0)

    obs.registry.register_collector(collect)


# ----------------------------------------------------------------------
# Gateway fleet: per-shard series plus tier-level rebalance counters
# ----------------------------------------------------------------------
def observe_fleet(obs: Observability, fleet, name: str = "fleet0") -> None:
    """Publish a GatewayFleet: per-shard series plus tier aggregates.

    Per-shard series carry a ``shard`` label so dashboards can spot an
    imbalanced or dying member; the dead are still scraped (frozen at
    their final values) so a loss is visible as a flatline plus an
    ``alive`` gauge drop, not a vanished series.
    """

    def collect(registry: MetricsRegistry) -> None:
        for shard in fleet.shards:
            worker = shard.worker
            label = str(shard.id)

            def counter(metric: str, value, help: str = "") -> None:
                registry.counter(
                    metric, help, fleet=name, shard=label
                ).set_total(value)

            counter("px_fleet_shard_rx_packets_total", worker.stats.rx_packets,
                    "Packets steered into this shard.")
            counter("px_fleet_shard_tx_packets_total", worker.stats.tx_packets,
                    "Packets emitted by this shard.")
            counter("px_fleet_shard_flow_evictions_total",
                    worker.flows.evictions,
                    "Flow-table evictions (capacity + idle expiry).")
            counter("px_fleet_shard_steered_total",
                    fleet.steering.steered[shard.id],
                    "Steering decisions landed on this shard.")
            counter("px_fleet_shard_adopted_flows_total", shard.adopted_flows,
                    "Flow records adopted from rebalances.")
            counter("px_fleet_shard_donated_flows_total", shard.donated_flows,
                    "Flow records donated to rebalances.")
            counter("px_fleet_shard_cycles_total", worker.account.cycles,
                    "Modeled CPU cycles consumed by this shard.")
            registry.gauge(
                "px_fleet_shard_flows",
                "Live flow records in this shard's table.",
                fleet=name, shard=label,
            ).set(len(worker.flows))
            registry.gauge(
                "px_fleet_shard_alive", "1 while the shard is alive.",
                fleet=name, shard=label,
            ).set(1 if shard.alive else 0)
        registry.counter(
            "px_fleet_rebalances_total",
            "Flow-rebalance operations (loss, drain, rejoin).", fleet=name,
        ).set_total(fleet.rebalances)
        registry.counter(
            "px_fleet_flows_migrated_total",
            "Flow records moved between shards.", fleet=name,
        ).set_total(fleet.flows_migrated)
        registry.counter(
            "px_fleet_shard_losses_total",
            "Shards lost (crash or maintenance removal).", fleet=name,
        ).set_total(fleet.shard_losses)
        registry.counter(
            "px_fleet_reshards_total",
            "Steering membership changes applied.", fleet=name,
        ).set_total(fleet.steering.reshards)
        registry.counter(
            "px_fleet_steering_cache_hits_total",
            "Steering decisions resolved from the flow cache.", fleet=name,
        ).set_total(fleet.steering.cache_hits)
        registry.counter(
            "px_fleet_steering_cache_misses_total",
            "Steering decisions that walked the rendezvous ring.", fleet=name,
        ).set_total(fleet.steering.cache_misses)
        registry.counter(
            "px_fleet_retired_tx_packets_total",
            "Egress credited to dead shards' checkpoints.", fleet=name,
        ).set_total(fleet.retired.tx_packets)
        registry.gauge(
            "px_fleet_live_shards", "Shards currently alive.", fleet=name,
        ).set(len(fleet.live_shards()))

    obs.registry.register_collector(collect)


# ----------------------------------------------------------------------
# NIC: receive rings, hairpin, RSS steering
# ----------------------------------------------------------------------
def observe_nic(
    obs: Observability,
    queues: Iterable = (),
    hairpin=None,
    rss=None,
    nic: str = "nic0",
) -> None:
    """Publish RX-ring depth/drops, hairpin traffic, and RSS steering."""
    rings = list(queues)

    def collect(registry: MetricsRegistry) -> None:
        for ring in rings:
            labels = {"nic": nic, "queue": str(ring.index)}
            registry.gauge("px_nic_queue_depth",
                           "Descriptors waiting in the RX ring.",
                           **labels).set(len(ring))
            registry.gauge("px_nic_queue_peak_depth",
                           "High-water mark of the RX ring.",
                           **labels).set(ring.peak_depth)
            registry.counter("px_nic_queue_enqueued_total",
                             "Packets accepted into the RX ring.",
                             **labels).set_total(ring.enqueued)
            registry.counter("px_nic_queue_dropped_total",
                             "Packets dropped because the RX ring was full.",
                             **labels).set_total(ring.dropped)
        if hairpin is not None:
            registry.gauge("px_nic_hairpin_depth",
                           "Packets waiting in the hairpin ring.",
                           nic=nic).set(len(hairpin))
            registry.counter("px_nic_hairpin_forwarded_total",
                             "Packets the NIC forwarded host-free.",
                             nic=nic).set_total(hairpin.forwarded)
            registry.counter("px_nic_hairpin_dropped_total",
                             "Packets dropped at a full hairpin ring.",
                             nic=nic).set_total(hairpin.dropped)
        if rss is not None:
            for queue, steered in enumerate(rss.steered):
                registry.counter("px_nic_rss_steered_total",
                                 "Steering decisions landing on each RX queue.",
                                 nic=nic, queue=str(queue)).set_total(steered)

    obs.registry.register_collector(collect)


# ----------------------------------------------------------------------
# UPF pipeline
# ----------------------------------------------------------------------
def observe_upf(obs: Observability, upf, name: str = "upf0") -> None:
    """Publish a UPF's pipeline counters and per-rule hit counts."""

    def collect(registry: MetricsRegistry) -> None:
        stats = upf.stats

        def counter(metric: str, value, help: str = "", **labels) -> None:
            registry.counter(metric, help, upf=name, **labels).set_total(value)

        counter("px_upf_uplink_packets_total", stats.uplink_packets,
                "Uplink (GTP-U decap) packets forwarded.")
        counter("px_upf_downlink_packets_total", stats.downlink_packets,
                "Downlink (GTP-U encap) packets forwarded.")
        counter("px_upf_dropped_packets_total", stats.dropped_no_match,
                "Packets dropped per cause.", cause="no_match")
        counter("px_upf_dropped_packets_total", stats.dropped_gate,
                cause="gate")
        counter("px_upf_dropped_packets_total", stats.dropped_malformed,
                cause="malformed")
        counter("px_upf_dropped_packets_total", stats.dropped_mbr, cause="mbr")
        counter("px_upf_buffered_packets_total", stats.buffered,
                "Packets parked by a BUFFER FAR.")
        counter("px_upf_cycles_total", upf.account.cycles,
                "CPU cycles charged by the UPF cost model.")
        for (direction, seid, pdr_id), hits in upf.rule_hits.items():
            counter("px_upf_rule_hits_total", hits,
                    "PDR match counts per session rule.",
                    direction=direction, seid=str(seid), pdr=str(pdr_id))

    obs.registry.register_collector(collect)


# ----------------------------------------------------------------------
# PMTUD agents
# ----------------------------------------------------------------------
def observe_pmtud(obs: Observability, prober=None, daemon=None,
                  name: str = "fpmtud") -> None:
    """Publish F-PMTUD probe/report lifecycle counters."""

    def collect(registry: MetricsRegistry) -> None:
        if prober is not None:
            registry.counter("px_pmtud_probes_sent_total",
                             "F-PMTUD probes launched.",
                             agent=name).set_total(prober.probes_sent)
            registry.counter("px_pmtud_reports_received_total",
                             "Daemon reports received by the prober.",
                             agent=name).set_total(prober.reports_received)
            registry.counter("px_pmtud_timeouts_total",
                             "Probes abandoned on timeout.",
                             agent=name).set_total(prober.timeouts)
            registry.gauge("px_pmtud_probes_in_flight",
                           "Probes awaiting a report or timeout.",
                           agent=name).set(prober.pending_probes())
            registry.counter("px_pmtud_rejected_reports_total",
                             "Reports dropped by hardening validation.",
                             agent=name).set_total(
                                 getattr(prober, "rejected_reports", 0))
            for reason, count in sorted(
                    getattr(prober, "rejections", {}).items()):
                registry.counter("px_pmtud_rejections_total",
                                 "Report rejections by validation reason.",
                                 agent=name, reason=reason).set_total(count)
            if prober.last_pmtu is not None:
                registry.gauge("px_pmtud_last_pmtu_bytes",
                               "Most recent discovered path MTU.",
                               agent=name).set(prober.last_pmtu)
        if daemon is not None:
            registry.counter("px_pmtud_daemon_reports_sent_total",
                             "Fragment-size reports sent by the daemon.",
                             agent=name).set_total(daemon.reports_sent)

    obs.registry.register_collector(collect)


# ----------------------------------------------------------------------
# Bench harness hook
# ----------------------------------------------------------------------
def record_bench_report(registry: MetricsRegistry, report: dict) -> None:
    """Mirror a ``repro bench`` report into *registry* (one-shot push).

    Lets a bench run export alongside datapath metrics and lets callers
    :meth:`~MetricsRegistry.diff` registries across bench invocations.
    """
    for row in report.get("results", []):
        labels = {"bench": row["bench"]}
        registry.gauge("px_bench_pkts_per_sec",
                       "Median benchmark throughput.", **labels).set(
            row["pkts_per_sec"])
        registry.gauge("px_bench_ns_per_pkt",
                       "Median per-packet latency.", **labels).set(
            row["ns_per_pkt"])
        registry.gauge("px_bench_reps", "Timed repetitions.", **labels).set(
            row["reps"])
