"""Black-box flight recorder: an always-on, bounded, replayable record.

The recorder answers the question the ISSUE's adversarial papers keep
raising: *what did this world (or this fleet shard) see in the seconds
before the alert fired?*  It follows the obs layer's "pull, not push"
rule — the recorder holds **references** to the instruments a world
already carries (span tracker, flow tracer, telemetry timeline, alert
engine) and only materialises a merged, time-sorted window at dump
time.  Attaching one therefore adds zero per-packet work, which is why
the 56 chaos digests and the pinned trace fingerprint stay
byte-identical with a recorder on board (see
``tests/obs/test_perturbation_guard.py``).

Two small push surfaces exist for hosts that have no timeline of their
own (fleet shards) or that want lifecycle marks in the record:

* :meth:`FlightRecorder.note` — bounded ring of lifecycle marks
  (shard-loss, drain, rollback, checkpoint sweeps);
* :meth:`FlightRecorder.add_sample` — bounded ring of windowed metric
  deltas, mirroring what :class:`~repro.obs.timeline.TelemetryTimeline`
  would have scraped.

Everything is stamped in sim time and serialises with sorted keys and
compact separators, so two same-seed processes dump byte-identical
JSON — the property the CI ``incident`` job diffs across processes.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["FlightRecorder"]

# Fixed source order used when merging entries that share a timestamp;
# the sort below is stable, so this order is part of the byte contract.
_SOURCE_ORDER = ("mark", "metrics", "alert", "trace", "span")


class FlightRecorder:
    """Bounded black-box ring for one world or one fleet shard.

    ``capacity`` bounds the *pushed* rings (marks and samples); the
    pulled sources are already bounded by their own rings (the span
    tracker's ``_done`` ring, the flow tracer's deque, the timeline's
    ``max_samples``).
    """

    def __init__(self, name: str = "world", capacity: int = 4096) -> None:
        self.name = name
        self.capacity = int(capacity)
        self._marks: deque = deque(maxlen=self.capacity)
        self._samples: deque = deque(maxlen=self.capacity)
        self.marks_recorded = 0
        self.samples_recorded = 0
        self._spans = None
        self._tracer = None
        self._timeline = None
        self._alerts = None

    # ------------------------------------------------------------------
    # wiring (pull sources)
    # ------------------------------------------------------------------

    def wire(self, spans=None, tracer=None, timeline=None, alerts=None):
        """Register pull sources; returns ``self`` for chaining."""
        if spans is not None:
            self._spans = spans
        if tracer is not None:
            self._tracer = tracer
        if timeline is not None:
            self._timeline = timeline
        if alerts is not None:
            self._alerts = alerts
        return self

    @property
    def sources(self) -> Dict[str, bool]:
        return {
            "spans": self._spans is not None,
            "tracer": self._tracer is not None,
            "timeline": self._timeline is not None,
            "alerts": self._alerts is not None,
        }

    # ------------------------------------------------------------------
    # push surfaces (lifecycle marks, shard-local metric windows)
    # ------------------------------------------------------------------

    def note(self, time: float, kind: str, **fields: Any) -> None:
        """Record a lifecycle mark (shard-loss, drain, rollback, ...)."""
        mark = {"time": time, "mark": kind}
        mark.update(fields)
        self._marks.append(mark)
        self.marks_recorded += 1

    def add_sample(self, time: float, deltas: Dict[str, float]) -> None:
        """Record a windowed metric-delta sample (timeline-less hosts)."""
        self._samples.append({"time": time, "deltas": dict(deltas)})
        self.samples_recorded += 1

    # ------------------------------------------------------------------
    # dump
    # ------------------------------------------------------------------

    def window(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
        kinds=None,
    ) -> List[Dict[str, Any]]:
        """Merged, time-sorted entries within ``[since, until]``.

        Entries are collected per source in a fixed order and merged
        with a stable sort on ``time``, so the output is a pure
        function of sim state — byte-identical across same-seed runs.
        """
        entries: List[Dict[str, Any]] = []
        for mark in self._marks:
            entry = {"kind": "mark"}
            entry.update(mark)
            entries.append(entry)
        for sample in self._samples:
            entries.append(
                {"time": sample["time"], "kind": "metrics",
                 "deltas": sample["deltas"]}
            )
        if self._timeline is not None:
            for sample in self._timeline.samples:
                entries.append(
                    {"time": sample["time"], "kind": "metrics",
                     "deltas": sample["deltas"]}
                )
        if self._alerts is not None:
            for transition in self._alerts.transitions:
                entries.append(
                    {"time": transition["time"], "kind": "alert",
                     "rule": transition["rule"],
                     "from": transition["from"], "to": transition["to"],
                     "value": transition["value"]}
                )
        if self._tracer is not None:
            for event in self._tracer.events():
                entries.append(
                    {"time": event["time"], "kind": "trace", "event": event}
                )
        if self._spans is not None:
            for span in self._spans.finished():
                closed = span.closed_at
                entries.append(
                    {"time": closed, "kind": "span", "span": span.to_dict()}
                )
        if since is not None:
            entries = [e for e in entries if e["time"] >= since]
        if until is not None:
            entries = [e for e in entries if e["time"] <= until]
        if kinds is not None:
            wanted = set(kinds)
            entries = [e for e in entries if e["kind"] in wanted]
        entries.sort(key=lambda e: (e["time"], _SOURCE_ORDER.index(e["kind"])))
        return entries

    def counts(
        self, since: Optional[float] = None, until: Optional[float] = None
    ) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for entry in self.window(since=since, until=until):
            tally[entry["kind"]] = tally.get(entry["kind"], 0) + 1
        return tally

    def to_dict(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
        kinds=None,
    ) -> Dict[str, Any]:
        entries = self.window(since=since, until=until, kinds=kinds)
        counts: Dict[str, int] = {}
        for entry in entries:
            counts[entry["kind"]] = counts.get(entry["kind"], 0) + 1
        return {
            "schema": "repro-flight/1",
            "name": self.name,
            "capacity": self.capacity,
            "window": {"since": since, "until": until},
            "counts": counts,
            "shed": {
                "marks": self.marks_recorded - len(self._marks),
                "samples": self.samples_recorded - len(self._samples),
            },
            "sources": self.sources,
            "entries": entries,
        }

    def to_json(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
        indent: Optional[int] = None,
    ) -> str:
        payload = self.to_dict(since=since, until=until)
        if indent is None:
            return json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return json.dumps(payload, sort_keys=True, indent=indent)
