"""Cross-shard trace-context propagation for fleet worlds.

A flow's journey through a sharded fleet is decided in four places:
the first :class:`~repro.fleet.steering.FleetSteering` cache miss
(**ingress**), any later fresh decision that lands on a different
shard (**handoff**), checkpoint rebalance after a shard loss or drain
(**rebalance**), and failover/rejoin adoption (**adoption**).  Each of
those places stamps a *hop* onto the flow's :class:`TraceContext`, so
the per-shard :class:`~repro.obs.spans.SpanTracker` rings — which now
carry flow attribution — reconcile into one end-to-end journey.

Design constraints, in order:

* **Zero cost on the hot path.**  The steering hook fires only on
  cache *misses* (the slow path that already walks the rendezvous
  ring); cached steering decisions pay nothing.  Hops are plain dict
  appends — no RNG, no sim events — so the 56 fleet-loss digests stay
  byte-identical with propagation attached.
* **Deterministic identity.**  ``trace_id`` is a pure function of the
  flow's Toeplitz hash and the world seed (SplitMix64-mixed), never a
  random draw, so two same-seed processes mint identical ids.
* **Verifiable.**  :meth:`TracePropagation.verify` cross-checks the
  hop chain against the steering table and the per-shard span rings;
  the incident-bundle teeth test corrupts propagation and watches this
  check fail.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from ..nic.rss import DEFAULT_RSS_KEY, flow_hash

__all__ = ["TraceContext", "TracePropagation"]

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer (same mix the fleet steering stage uses)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class TraceContext:
    """One flow's causal journey: a trace id plus an ordered hop chain."""

    __slots__ = ("trace_id", "flow", "hops")

    def __init__(self, trace_id: str, flow) -> None:
        self.trace_id = trace_id
        self.flow = flow
        self.hops: List[Dict[str, Any]] = []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "flow": str(self.flow),
            "hops": list(self.hops),
        }


class TracePropagation:
    """Mints trace contexts at fleet ingress and records shard hops.

    Wire it with :meth:`~repro.fleet.fleet.GatewayFleet.attach_trace`
    (which points ``FleetSteering.on_decision`` here) or hang it on a
    :class:`~repro.resilience.failover.FailoverManager` as
    ``propagation`` to record takeover adoptions in a single world.
    """

    def __init__(self, seed: int = 0, key: bytes = DEFAULT_RSS_KEY) -> None:
        self.seed = int(seed)
        self.key = key
        self._seed_mix = _mix64(self.seed ^ 0x7C0FFEE5)
        self.contexts: Dict[Any, TraceContext] = {}
        self.ingresses = 0
        self.handoffs = 0
        self.rebalances = 0
        self.adoptions = 0
        #: Sim time of the current batch; hosts refresh this before
        #: feeding packets so cache-miss hops carry a real timestamp.
        self._now = 0.0
        self._suppress = False

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def trace_id(self, flow) -> str:
        """Deterministic 64-bit trace id for ``flow`` under this seed."""
        return format(_mix64(flow_hash(flow, self.key) ^ self._seed_mix), "016x")

    def _context(self, flow) -> TraceContext:
        ctx = self.contexts.get(flow)
        if ctx is None:
            ctx = TraceContext(self.trace_id(flow), flow)
            self.contexts[flow] = ctx
        return ctx

    def _hop(self, ctx: TraceContext, time: float, shard, kind: str,
             detail: Optional[str] = None) -> None:
        seq = len(ctx.hops)
        ctx.hops.append({
            "seq": seq,
            "parent": seq - 1 if seq else None,
            "time": time,
            "shard": shard,
            "kind": kind,
            "detail": detail,
        })

    # ------------------------------------------------------------------
    # hop recorders
    # ------------------------------------------------------------------

    @contextmanager
    def suppressed(self):
        """Mute the steering hook (rebalance records hops explicitly)."""
        self._suppress = True
        try:
            yield
        finally:
            self._suppress = False

    def decision(self, flow, shard: int) -> None:
        """Steering cache-miss hook: ingress or cross-shard handoff."""
        if self._suppress:
            return
        ctx = self.contexts.get(flow)
        if ctx is None:
            ctx = self._context(flow)
            self._hop(ctx, self._now, shard, "ingress")
            self.ingresses += 1
        elif ctx.hops and ctx.hops[-1]["shard"] != shard:
            self._hop(ctx, self._now, shard, "handoff")
            self.handoffs += 1

    def rebalance(self, flow, src: int, dst: int, time: float,
                  reason: str = "shard-loss") -> None:
        """Checkpoint rebalance moved ``flow`` from ``src`` to ``dst``."""
        ctx = self._context(flow)
        if not ctx.hops:
            self._hop(ctx, time, src, "ingress", detail="checkpointed")
            self.ingresses += 1
        self._hop(ctx, time, dst, "rebalance", detail=f"{reason}:shard{src}")
        self.rebalances += 1

    def adopt(self, flow, shard, time: float,
              reason: str = "failover") -> None:
        """A standby (worker or shard) adopted ``flow`` from a checkpoint."""
        ctx = self._context(flow)
        self._hop(ctx, time, shard, "adoption", detail=reason)
        self.adoptions += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def journey(self, flow) -> Optional[Dict[str, Any]]:
        ctx = self.contexts.get(flow)
        return None if ctx is None else ctx.to_dict()

    def journeys(self, flows: Optional[Sequence] = None) -> List[Dict[str, Any]]:
        if flows is None:
            return [ctx.to_dict() for ctx in self.contexts.values()]
        out = []
        for flow in flows:
            journey = self.journey(flow)
            if journey is not None:
                out.append(journey)
        return out

    def reconstruct(self, flow, trackers: Optional[Dict[Any, Any]] = None
                    ) -> Optional[Dict[str, Any]]:
        """Journey plus the flow's finished spans from each shard ring.

        ``trackers`` maps shard id → :class:`SpanTracker`; only spans
        whose ``flow`` attribution matches are pulled in, so the result
        is the end-to-end record the bundle cites.
        """
        journey = self.journey(flow)
        if journey is None:
            return None
        spans: Dict[str, List[dict]] = {}
        for shard_id in sorted((trackers or {}), key=str):
            tracker = trackers[shard_id]
            matched = [span.to_dict() for span in tracker.finished()
                       if span.flow == flow]
            if matched:
                spans[str(shard_id)] = matched
        journey["spans"] = spans
        return journey

    def verify(self, flows: Sequence, owner_of=None,
               trackers: Optional[Dict[Any, Any]] = None) -> List[str]:
        """Cross-check hop chains; returns human-readable problems.

        Checks, per flow: a context exists; the parent chain is intact;
        the last hop agrees with the steering table's current owner
        (``owner_of`` — a non-perturbing peek); and every shard whose
        span ring holds spans for the flow appears somewhere in the hop
        chain.  An empty list means the propagation is consistent.
        """
        problems: List[str] = []
        for flow in flows:
            label = str(flow)
            ctx = self.contexts.get(flow)
            if ctx is None or not ctx.hops:
                problems.append(f"no trace context for flow {label}")
                continue
            for index, hop in enumerate(ctx.hops):
                want = index - 1 if index else None
                if hop["seq"] != index or hop["parent"] != want:
                    problems.append(
                        f"broken parent chain at hop {index} for flow {label}"
                    )
                    break
            if owner_of is not None:
                owner = owner_of(flow)
                last = ctx.hops[-1]["shard"]
                if isinstance(last, int) and owner != last:
                    problems.append(
                        f"last hop shard {last} != steering owner {owner} "
                        f"for flow {label}"
                    )
            if trackers:
                hop_shards = {hop["shard"] for hop in ctx.hops}
                for shard_id, tracker in trackers.items():
                    if shard_id in hop_shards:
                        continue
                    if any(span.flow == flow for span in tracker.finished()):
                        problems.append(
                            f"spans on shard {shard_id} but no hop "
                            f"for flow {label}"
                        )
        return problems

    def summary(self) -> Dict[str, int]:
        return {
            "contexts": len(self.contexts),
            "ingresses": self.ingresses,
            "handoffs": self.handoffs,
            "rebalances": self.rebalances,
            "adoptions": self.adoptions,
        }
