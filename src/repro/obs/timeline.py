"""In-sim telemetry timeline: periodic scrapes as a deterministic series.

PR 4 scraped the registry once at end-of-run — a photo finish.  A
:class:`TelemetryTimeline` turns the registry into a film: it schedules
itself on the simulator every ``interval`` sim-seconds, snapshots the
registry (running the collectors), and records the **windowed deltas**
of every series that moved.  Because the scrapes happen in sim time,
two same-seed runs produce byte-identical timelines — the determinism
contract carries over from the registry exports.

The timeline is also the alert engine's clock: when an
:class:`~repro.obs.alerts.AlertEngine` is attached, every tick feeds it
the fresh snapshot + deltas so PENDING→FIRING→RESOLVED transitions are
stamped with exact sim timestamps.

Safety: ticks only *read* component state (collectors are pull-model
and idempotent) and consume simulator event slots without touching any
RNG, so attaching a timeline cannot change packet behavior — the chaos
perturbation guard runs all 56 corpus scenarios with a timeline
attached and demands byte-identical digests.  Every world in this repo
runs under an explicit horizon (``topo.run(until=...)``), so the
self-rescheduling tick cannot prolong a run.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .registry import MetricsRegistry

__all__ = ["TelemetryTimeline"]


class TelemetryTimeline:
    """Periodic in-sim registry scrapes with windowed deltas.

    Parameters
    ----------
    sim:
        The :class:`repro.sim.Simulator` driving the world.
    registry:
        The :class:`MetricsRegistry` to scrape.
    interval:
        Sim-seconds between scrapes.
    alerts:
        Optional :class:`repro.obs.alerts.AlertEngine` evaluated at
        every tick with the fresh snapshot and window deltas.
    max_samples:
        Bound on retained samples; the oldest are shed (counted in
        ``shed``) so long-horizon worlds stay bounded.
    """

    def __init__(self, sim, registry: MetricsRegistry, interval: float = 0.05,
                 alerts=None, max_samples: Optional[int] = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.alerts = alerts
        self.max_samples = max_samples
        self.samples: List[dict] = []
        self.ticks = 0
        self.shed = 0
        self.started_at: Optional[float] = None
        self._baseline: Optional[Dict[str, float]] = None
        self._handle = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TelemetryTimeline":
        """Take the baseline snapshot and schedule the first tick."""
        if self._handle is not None:
            return self  # already running
        self.started_at = self.sim.now
        self._baseline = self.registry.snapshot()
        self._handle = self.sim.schedule(self.interval, self._tick)
        return self

    def stop(self) -> None:
        """Cancel the pending tick (recorded samples are kept)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        """Whether a tick is currently scheduled."""
        return self._handle is not None

    def _tick(self) -> None:
        now = self.sim.now
        snapshot = self.registry.snapshot()
        deltas = MetricsRegistry.diff(self._baseline, snapshot)
        self.ticks += 1
        self.samples.append({"time": now, "deltas": deltas})
        if self.max_samples is not None and len(self.samples) > self.max_samples:
            self.samples.pop(0)
            self.shed += 1
        self._baseline = snapshot
        if self.alerts is not None:
            self.alerts.evaluate(now, snapshot, deltas, self.interval)
        self._handle = self.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rates(self, sample: dict) -> Dict[str, float]:
        """A sample's deltas converted to per-second rates."""
        return {key: value / self.interval for key, value in sample["deltas"].items()}

    def totals(self) -> Dict[str, float]:
        """Sum of deltas per series across all retained samples."""
        out: Dict[str, float] = {}
        for sample in self.samples:
            for key, value in sample["deltas"].items():
                out[key] = out.get(key, 0) + value
        return dict(sorted(out.items()))

    def series(self, key: str) -> List[tuple]:
        """``(time, delta)`` pairs for one series id, ticks it moved in."""
        return [(sample["time"], sample["deltas"][key])
                for sample in self.samples if key in sample["deltas"]]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _header(self) -> dict:
        return {
            "interval": self.interval,
            "started_at": self.started_at,
            "ticks": self.ticks,
            "shed": self.shed,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Byte-deterministic JSON: header + the retained samples."""
        payload = dict(self._header())
        payload["samples"] = self.samples
        return json.dumps(payload, sort_keys=True, indent=indent,
                          separators=(",", ":") if indent is None else None)

    def to_jsonl(self) -> str:
        """Streamable export: one header line, then one line per tick."""
        lines = [json.dumps({"timeline": self._header()}, sort_keys=True,
                            separators=(",", ":"))]
        lines.extend(
            json.dumps(sample, sort_keys=True, separators=(",", ":"))
            for sample in self.samples
        )
        return "\n".join(lines)
