"""The horizontal gateway tier: N worker shards behind flow steering.

A :class:`GatewayFleet` is the city-scale generalization of
:class:`repro.core.GatewayDatapath`: instead of co-located worker cores
behind one RSS indirection table, it runs N independent
:class:`~repro.core.worker.GatewayWorker` shards behind the
rendezvous-hash :class:`~.steering.FleetSteering` stage, each with a
*bounded* flow table whose LRU eviction (capacity and idle expiry)
absorbs city-scale flow churn.

What the fleet adds over the single instance:

* **shard loss** — :meth:`~GatewayFleet.fail_shard` retires a shard
  from steering and redistributes its checkpointed flow records onto
  the survivors *that now own those flows* (the rendezvous map decides,
  so a rebalanced flow's next packet finds its state exactly where
  steering sends it).  The checkpoint's pending half-merged packets are
  flushed — never dropped — and its counters fold into a fleet-level
  retired aggregate so the conservation identities keep balancing.
* **health-driven drain** — a shard pushed to BYPASS by its
  :class:`~repro.resilience.health.HealthMonitor` stops receiving new
  flows (:meth:`drain_shard`); on recovery, :meth:`rejoin_shard` wins
  back exactly the flows the rendezvous map returns to it, with the
  survivors donating the corresponding records.
* **fleet conservation** — the per-worker identities extend to the
  tier: live payload in == live payload out + still-buffered, summed
  over live shards plus the retired aggregate.

Checkpoints reuse PR 2's :func:`repro.resilience.failover.checkpoint_worker`
wholesale; the supervisor module wires the PR 2 ``HealthMonitor`` /
``FailoverManager`` classes themselves onto shards.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.caravan import caravan_inner_count, is_caravan
from ..core.config import GatewayConfig
from ..core.stats import GatewayStats
from ..core.worker import GatewayWorker
from ..cpu import DEFAULT_GATEWAY_COSTS, CpuSpec, CycleAccount, GatewayCosts
from ..packet import Packet
from ..resilience.failover import WorkerCheckpoint, checkpoint_worker
from .steering import FleetSteering

__all__ = ["FleetShard", "GatewayFleet"]


class FleetShard:
    """One fleet member: a gateway worker plus its lifecycle state."""

    def __init__(self, worker: GatewayWorker, shard_id: int):
        self.worker = worker
        self.id = shard_id
        self.alive = True
        #: True while health has drained the shard out of steering.
        self.drained = False
        self.checkpoint: Optional[WorkerCheckpoint] = None
        self.checkpoints_taken = 0
        #: Flow records this shard adopted from rebalances.
        self.adopted_flows = 0
        #: Flow records this shard donated to rebalances.
        self.donated_flows = 0

    @property
    def in_steering(self) -> bool:
        return self.alive and not self.drained


class GatewayFleet:
    """N gateway shards behind a flow-consistent steering stage."""

    def __init__(
        self,
        config: GatewayConfig,
        shards: int = 4,
        costs: GatewayCosts = DEFAULT_GATEWAY_COSTS,
        steering_seed: int = 0xF1EE7,
        flow_idle_timeout: float = 30.0,
    ):
        if shards <= 0:
            raise ValueError("need at least one shard")
        self.config = config
        self.costs = costs
        self.flow_idle_timeout = flow_idle_timeout
        self.shards = [
            FleetShard(GatewayWorker(config, costs=costs, index=index), index)
            for index in range(shards)
        ]
        self.steering = FleetSteering(shards, seed=steering_seed)
        #: Counters of shards that died, folded so fleet-level
        #: conservation keeps balancing after a loss.
        self.retired = GatewayStats()
        self.rebalances = 0
        self.flows_migrated = 0
        self.shard_losses = 0
        self._virtual_now = 0.0
        #: Optional TracePropagation (see :meth:`attach_trace`).
        self.trace = None

    def attach_trace(self, trace):
        """Wire cross-shard trace-context propagation onto the fleet.

        Points the steering stage's cache-miss hook at *trace* (so
        ingress/handoff hops cost nothing on the cached hot path) and
        keeps a reference so rebalance/drain/rejoin stamp their hops
        with real batch timestamps.  Returns *trace* for chaining.
        """
        self.trace = trace
        self.steering.on_decision = trace.decision
        return trace

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def shard_for(self, packet: Packet) -> FleetShard:
        """The shard steering assigns to *packet*."""
        key = packet.flow_key()
        if key is None:
            return self.shards[self.steering.shard_for_unkeyed()]
        return self.shards[self.steering.shard_for(key)]

    def process(self, packet: Packet, bound: str, now: float = 0.0) -> List[Packet]:
        """Process one packet on its steering-assigned shard."""
        if self.trace is not None:
            self.trace._now = now
        return self.shard_for(packet).worker.process(packet, bound, now)

    def process_batch(
        self, packets: "List[Tuple[Packet, str]]", now: float = 0.0
    ) -> List[Packet]:
        """Steer one poll burst and run each share as a worker batch.

        The fleet twin of
        :meth:`repro.core.GatewayDatapath.process_batch`: packets bucket
        per ``(shard, bound)`` in arrival order, each bucket runs
        through :meth:`~repro.core.worker.GatewayWorker.process_batch`,
        and egress comes out bucket-grouped in first-seen order.
        """
        if self.trace is not None:
            self.trace._now = now
        shares: Dict[Tuple[int, str], List[Packet]] = {}
        shard_for = self.shard_for
        for packet, bound in packets:
            slot = (shard_for(packet).id, bound)
            share = shares.get(slot)
            if share is None:
                shares[slot] = [packet]
            else:
                share.append(packet)
        outputs: List[Packet] = []
        shards = self.shards
        for (index, bound), share in shares.items():
            outputs.extend(shards[index].worker.process_batch(share, bound, now))
        return outputs

    def end_batch(self, now: float) -> List[Packet]:
        """Poll-batch boundary on every live shard (merge-timeout flush)."""
        outputs: List[Packet] = []
        for shard in self.shards:
            if shard.alive:
                outputs.extend(shard.worker.end_batch(now))
        return outputs

    def process_stream(
        self,
        stream: "Iterable[Tuple[Packet, str]]",
        batch_interval: float = 1.5e-6,
        final_flush: bool = True,
        on_batch=None,
    ) -> List[Packet]:
        """Drive a (packet, bound) stream through the fleet in poll batches.

        ``on_batch(batch_index, now)``, when given, fires after every
        poll batch — the chaos harness uses it to kill a shard
        mid-burst; anything it returns is ignored, but packets it
        flushes via fleet methods land in the shared egress list the
        caller gets back (fail_shard returns them; see
        :mod:`repro.fleet.chaos`).
        """
        outputs: List[Packet] = []
        now = self._virtual_now
        poll_batch = self.config.poll_batch
        chunk: List[Tuple[Packet, str]] = []
        append = chunk.append
        batch_index = 0
        for item in stream:
            append(item)
            if len(chunk) >= poll_batch:
                outputs.extend(self.process_batch(chunk, now))
                chunk = []
                append = chunk.append
                now += batch_interval
                outputs.extend(self.end_batch(now))
                if on_batch is not None:
                    flushed = on_batch(batch_index, now)
                    if flushed:
                        outputs.extend(flushed)
                batch_index += 1
        if chunk:
            outputs.extend(self.process_batch(chunk, now))
        if final_flush:
            now += self.config.merge_timeout * 2
            outputs.extend(self.end_batch(now))
        self._virtual_now = now
        return outputs

    def expire_idle(self, now: float) -> int:
        """Expire idle flows on every live shard; returns total removed."""
        removed = 0
        for shard in self.shards:
            if shard.alive:
                removed += shard.worker.flows.expire_idle(now, self.flow_idle_timeout)
        return removed

    # ------------------------------------------------------------------
    # Checkpoints and shard loss
    # ------------------------------------------------------------------
    def checkpoint_shard(self, index: int, now: float) -> WorkerCheckpoint:
        """Capture one live shard (reuses PR 2's checkpoint format)."""
        shard = self.shards[index]
        if not shard.alive:
            raise ValueError(f"shard {index} is not alive")
        shard.checkpoint = checkpoint_worker(shard.worker, now)
        shard.checkpoints_taken += 1
        return shard.checkpoint

    def checkpoint_all(self, now: float) -> None:
        """Periodic fleet-wide checkpoint sweep."""
        for shard in self.shards:
            if shard.alive:
                self.checkpoint_shard(shard.id, now)

    def fail_shard(
        self,
        index: int,
        now: float,
        checkpoint: Optional[WorkerCheckpoint] = None,
    ) -> List[Packet]:
        """Kill shard *index* and rebalance it onto the survivors.

        Without *checkpoint* (planned maintenance / the zero-loss
        drill) the dying shard is checkpointed at this instant, so
        nothing at all is lost.  With it (the crash case, normally the
        shard's last periodic capture) traffic processed after the
        capture is not replayed; end-to-end retransmission covers the
        staleness window, exactly as single-gateway failover does.

        Returns the checkpoint's pending half-merged packets — the
        caller must forward them (they are flushed, never dropped).
        Flow records redistribute to whichever survivor the rendezvous
        map now assigns each flow, so affinity survives the loss.
        """
        shard = self.shards[index]
        if not shard.alive:
            raise ValueError(f"shard {index} is already dead")
        if checkpoint is None:
            checkpoint = checkpoint_worker(shard.worker, now)
        if not shard.drained:
            self.steering.remove(index)
        shard.alive = False
        shard.drained = False
        self.shard_losses += 1
        # The dead shard's accounting survives in the retired aggregate:
        # the checkpoint's counters are self-consistent (payload_in
        # includes the pending bytes), and crediting the re-emitted
        # pending as egress balances it exactly — mirroring what
        # restore_worker does when a standby adopts a checkpoint.
        self.retired.merge(checkpoint.stats)
        flushed: List[Packet] = []
        for packet in checkpoint.pending:
            self.retired.tx_packets += 1
            if packet.is_tcp:
                self.retired.tcp_payload_out += len(packet.payload)
            elif packet.is_udp:
                self.retired.udp_datagrams_out += caravan_inner_count(packet)
                if is_caravan(packet):
                    self.retired.caravans_built += 1
            flushed.append(packet)
        if shard.worker.spans is not None:
            # Buffered-byte spans on the dead shard settle as failover
            # closures; the survivors' trackers are untouched.
            shard.worker.spans.flush_fifos(now, outcome="failover")
        self._rebalance_records(checkpoint.flows, donor=shard, now=now,
                                reason="shard-loss")
        return flushed

    def _rebalance_records(self, records: List[tuple], donor: FleetShard,
                           now: float = 0.0,
                           reason: str = "rebalance") -> None:
        """Hand flow records to the shards steering now assigns them to."""
        if not records:
            return
        buckets: Dict[int, List[tuple]] = {}
        steering = self.steering
        trace = self.trace
        if trace is not None:
            # Rebalance hops are recorded explicitly below with the
            # donor attached; mute the generic cache-miss hook so each
            # move lands as exactly one hop.
            with trace.suppressed():
                for record in records:
                    target = steering.shard_for(record[0])
                    bucket = buckets.get(target)
                    if bucket is None:
                        buckets[target] = [record]
                    else:
                        bucket.append(record)
                    trace.rebalance(record[0], donor.id, target, now,
                                    reason=reason)
        else:
            for record in records:
                target = steering.shard_for(record[0])
                bucket = buckets.get(target)
                if bucket is None:
                    buckets[target] = [record]
                else:
                    bucket.append(record)
        for target, share in buckets.items():
            adopted = self.shards[target].worker.flows.adopt(share)
            self.shards[target].adopted_flows += adopted
        donor.donated_flows += len(records)
        self.rebalances += 1
        self.flows_migrated += len(records)

    # ------------------------------------------------------------------
    # Health-driven drain / rejoin
    # ------------------------------------------------------------------
    def drain_shard(self, index: int, now: float) -> int:
        """Steer a (BYPASS-health) shard's flows away; returns count moved.

        The shard stays alive — its datapath mode change (and the
        zero-loss merge flush that goes with it) is the health
        monitor's job — but new traffic re-steers to the survivors and
        its flow records follow, so the classifier verdicts survive.
        """
        shard = self.shards[index]
        if not shard.alive or shard.drained:
            return 0
        self.steering.remove(index)
        shard.drained = True
        records = shard.worker.flows.snapshot()
        for record in records:
            shard.worker.flows.remove(record[0])
        self._rebalance_records(records, donor=shard, now=now, reason="drain")
        return len(records)

    def rejoin_shard(self, index: int, now: float) -> int:
        """Return a recovered shard to steering; returns flows won back.

        The rendezvous map moves exactly the flows whose top weight the
        shard holds; the survivors donate those records back, so the
        returning shard starts warm instead of re-classifying its whole
        flow population.
        """
        shard = self.shards[index]
        if not shard.alive or not shard.drained:
            return 0
        self.steering.restore(index)
        shard.drained = False
        returned: List[tuple] = []
        trace = self.trace
        for donor in self.shards:
            if donor.id == index or not donor.alive:
                continue
            if trace is not None:
                with trace.suppressed():
                    donated = [
                        record
                        for record in donor.worker.flows.snapshot()
                        if self.steering.shard_for(record[0]) == index
                    ]
                for record in donated:
                    trace.rebalance(record[0], donor.id, index, now,
                                    reason="rejoin")
            else:
                donated = [
                    record
                    for record in donor.worker.flows.snapshot()
                    if self.steering.shard_for(record[0]) == index
                ]
            for record in donated:
                donor.worker.flows.remove(record[0])
            if donated:
                donor.donated_flows += len(donated)
                returned.extend(donated)
        if returned:
            adopted = shard.worker.flows.adopt(returned)
            shard.adopted_flows += adopted
            self.rebalances += 1
            self.flows_migrated += len(returned)
        return len(returned)

    # ------------------------------------------------------------------
    # Aggregation and conservation
    # ------------------------------------------------------------------
    def live_shards(self) -> List[FleetShard]:
        return [shard for shard in self.shards if shard.alive]

    def combined_stats(self) -> GatewayStats:
        """Aggregate stats: live shards plus the retired aggregate."""
        total = GatewayStats()
        for shard in self.shards:
            if shard.alive:
                total.merge(shard.worker.stats)
        total.merge(self.retired)
        return total

    def combined_account(self) -> CycleAccount:
        total = CycleAccount()
        for shard in self.shards:
            if shard.alive:
                total.merge(shard.worker.account)
        return total

    def pending_tcp_bytes(self) -> int:
        return sum(
            shard.worker.merge.pending_bytes()
            for shard in self.shards if shard.alive
        )

    def pending_datagrams(self) -> int:
        return sum(
            shard.worker.caravan_merge.pending_packets()
            for shard in self.shards if shard.alive
        )

    def conservation_errors(self) -> "Dict[str, int]":
        """Fleet-level conservation identity (empty dict = balanced)."""
        return self.combined_stats().conservation_errors(
            pending_tcp_bytes=self.pending_tcp_bytes(),
            pending_datagrams=self.pending_datagrams(),
        )

    @property
    def conversion_yield(self) -> float:
        return self.combined_stats().conversion_yield

    def reset_measurement(self) -> None:
        """Zero stats/cycles keeping datapath state (bench warm-up)."""
        for shard in self.shards:
            shard.worker.stats = GatewayStats()
            shard.worker.account = CycleAccount()
        self.retired = GatewayStats()

    # ------------------------------------------------------------------
    # Modeled throughput
    # ------------------------------------------------------------------
    def sustainable_throughput_pps(self, spec: CpuSpec) -> float:
        """Modeled packets/s on *spec*, one core per live shard.

        Shards run on distinct cores, so wall time is the hottest
        shard's cycle demand over the clock — the paper's §1 claim that
        the most-loaded RX queue bounds the system, now at fleet scale.
        Returns 0.0 for an unmeasured fleet.
        """
        live = self.live_shards()
        if len(live) > spec.cores:
            raise ValueError(
                f"{spec.name} has {spec.cores} cores for {len(live)} live shards"
            )
        packets = sum(shard.worker.account.packets for shard in live)
        if packets == 0:
            return 0.0
        max_cycles = max(shard.worker.account.cycles for shard in live)
        if max_cycles <= 0:
            return 0.0
        return packets * spec.clock_hz / max_cycles

    def shard_balance(self) -> "Dict[str, float]":
        """Load-balance figures across live shards (1.0 = perfect)."""
        live = self.live_shards()
        counts = [shard.worker.stats.rx_packets for shard in live]
        total = sum(counts)
        if not counts or total == 0:
            return {"max_over_mean": 0.0, "min_over_mean": 0.0}
        mean = total / len(counts)
        return {
            "max_over_mean": max(counts) / mean,
            "min_over_mean": min(counts) / mean,
        }

    def summary(self) -> "Dict[str, object]":
        """JSON-friendly fleet digest (CLI + tests)."""
        stats = self.combined_stats()
        return {
            "shards": len(self.shards),
            "live": len(self.live_shards()),
            "shard_losses": self.shard_losses,
            "rebalances": self.rebalances,
            "flows_migrated": self.flows_migrated,
            "rx_packets": stats.rx_packets,
            "tx_packets": stats.tx_packets,
            "flows": sum(
                len(shard.worker.flows) for shard in self.shards if shard.alive
            ),
            "evictions": sum(
                shard.worker.flows.evictions for shard in self.shards if shard.alive
            ),
            "conservation_errors": self.conservation_errors(),
            "balance": self.shard_balance(),
        }
