"""Health-driven fleet supervision: PR 2's monitors, one per shard.

The resilience layer's :class:`~repro.resilience.health.HealthMonitor`
and :class:`~repro.resilience.failover.FailoverManager` were written
against the single-gateway surface (``sim`` / ``worker`` / ``forward`` /
``swap_worker`` / ``obs``).  Rather than fork fleet-specific variants,
:class:`ShardPort` adapts one :class:`~.fleet.FleetShard` to exactly
that surface, so the battle-tested state machines run unmodified per
shard.

:class:`FleetSupervisor` then closes the loop the issue asks for —
**rebalancing on HEALTHY → DEGRADED → BYPASS transitions**:

* each shard gets a monitor (heartbeats on a shared simulator clock)
  and a failover manager (periodic checkpoints);
* :meth:`~FleetSupervisor.reconcile` maps monitor verdicts onto
  steering membership: a shard judged BYPASS is drained (its flows
  re-steer to the survivors), a recovered shard rejoins and wins its
  flows back;
* :meth:`~FleetSupervisor.crash_shard` kills a shard from its *last
  periodic checkpoint* (the crash model: post-checkpoint work is not
  replayed, retransmission covers it), while
  :meth:`~FleetSupervisor.maintain_shard` uses a fresh checkpoint for
  a provably zero-loss planned removal.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.worker import GatewayWorker
from ..packet import Packet
from ..resilience.failover import FailoverManager
from ..resilience.health import HealthMonitor, HealthPolicy, HealthState
from ..sim import Simulator
from .fleet import FleetShard, GatewayFleet

__all__ = ["ShardPort", "FleetSupervisor"]


class ShardPort:
    """Adapts one fleet shard to the gateway surface PR 2 expects.

    The resilience classes touch ``sim``, ``worker``, ``config``,
    ``obs``, ``name``, ``_stall_until``, ``forward`` and
    ``swap_worker`` — nothing else — so this thin port is the whole
    integration.  Forwarded packets (mode-change flushes, takeover
    re-emissions) collect in :attr:`egress` for the caller to drain.
    """

    def __init__(self, shard: FleetShard, sim: Simulator, obs=None):
        self.shard = shard
        self.sim = sim
        self.obs = obs
        self.name = f"fleet-shard{shard.id}"
        self.config = shard.worker.config
        #: Watchdog input: the shard's datapath is considered stalled
        #: until this simulated time (chaos/tests set it directly).
        self._stall_until = 0.0
        #: Packets the resilience layer emitted through this port.
        self.egress: List[Packet] = []

    @property
    def worker(self) -> GatewayWorker:
        return self.shard.worker

    def forward(self, packet: Packet) -> None:
        self.egress.append(packet)

    def swap_worker(self, standby: GatewayWorker) -> GatewayWorker:
        """In-shard worker replacement (keeps the span tracker wired)."""
        old = self.shard.worker
        standby.spans = old.spans
        self.shard.worker = standby
        return old

    def drain_egress(self) -> List[Packet]:
        out, self.egress = self.egress, []
        return out


class FleetSupervisor:
    """Per-shard health monitoring plus steering reconciliation."""

    def __init__(
        self,
        fleet: GatewayFleet,
        sim: Optional[Simulator] = None,
        policy: Optional[HealthPolicy] = None,
        checkpoint_interval: float = 0.1,
        obs=None,
        flight=None,
    ):
        self.fleet = fleet
        self.sim = sim or Simulator()
        self.policy = policy or HealthPolicy()
        self.ports = [ShardPort(shard, self.sim, obs=obs) for shard in fleet.shards]
        self.monitors = [HealthMonitor(port, self.policy) for port in self.ports]
        self.managers = [
            FailoverManager(port, interval=checkpoint_interval) for port in self.ports
        ]
        #: (time, shard, action) reconciliation history.
        self.actions: List[tuple] = []
        #: Optional :class:`~repro.obs.flight.FlightRecorder` — drains
        #: and removals leave marks on it, and each becomes a
        #: deterministic incident bundle in :attr:`incidents`.
        self.flight = flight
        #: Incident bundles built for drain/crash/maintenance events.
        self.incidents: List[dict] = []

    # ------------------------------------------------------------------
    def start(self) -> "FleetSupervisor":
        """Start every live shard's monitor and checkpoint manager."""
        for shard, monitor, manager in zip(
            self.fleet.shards, self.monitors, self.managers
        ):
            if shard.alive:
                monitor.start()
                manager.start()
        return self

    def stop(self) -> None:
        for monitor, manager in zip(self.monitors, self.managers):
            monitor.stop()
            manager.stop()

    def run(self, duration: float) -> None:
        """Advance the shared clock, reconciling after the quiesce."""
        self.sim.run(until=self.sim.now + duration)
        self.reconcile(self.sim.now)

    # ------------------------------------------------------------------
    def reconcile(self, now: float) -> List[tuple]:
        """Align steering membership with health verdicts.

        A live shard judged BYPASS leaves steering (drain: its flows
        re-steer and migrate to the survivors — the monitor has already
        flushed its merge state via the mode change, so nothing is
        buffered behind).  A shard back out of BYPASS rejoins and wins
        its rendezvous share back.  Returns the actions taken.
        """
        taken: List[tuple] = []
        for shard, monitor in zip(self.fleet.shards, self.monitors):
            if not shard.alive:
                continue
            bypassed = monitor.state == HealthState.BYPASS
            if bypassed and not shard.drained:
                if len(self.fleet.steering.live_shards()) > 1:
                    moved = self.fleet.drain_shard(shard.id, now)
                    taken.append((now, shard.id, f"drain:{moved}"))
                    self._record_incident("shard-drain", now, shard.id,
                                          {"moved": moved})
            elif not bypassed and shard.drained:
                returned = self.fleet.rejoin_shard(shard.id, now)
                taken.append((now, shard.id, f"rejoin:{returned}"))
                if self.flight is not None:
                    self.flight.note(now, "shard-rejoin", shard=shard.id,
                                     returned=returned)
        self.actions.extend(taken)
        return taken

    # ------------------------------------------------------------------
    def crash_shard(self, index: int) -> List[Packet]:
        """Kill shard *index* from its last periodic checkpoint.

        The crash model: whatever the shard did after that capture is
        gone (end-to-end retransmission covers it); the checkpoint's
        flows and pending segments rebalance onto the survivors.
        """
        manager = self.managers[index]
        self.monitors[index].stop()
        manager.stop()
        checkpoint = manager.last_checkpoint
        if checkpoint is None:
            raise RuntimeError(f"shard {index} has no checkpoint; start() first")
        flushed = self.fleet.fail_shard(index, self.sim.now, checkpoint=checkpoint)
        self._record_incident(
            "shard-loss", self.sim.now, index,
            {"mode": "crash", "flushed": len(flushed),
             "checkpoint_age": self.sim.now - checkpoint.taken_at},
        )
        return flushed

    def maintain_shard(self, index: int) -> List[Packet]:
        """Planned removal: fresh checkpoint at this instant, zero loss."""
        self.monitors[index].stop()
        self.managers[index].stop()
        flushed = self.fleet.fail_shard(index, self.sim.now, checkpoint=None)
        self._record_incident(
            "shard-loss", self.sim.now, index,
            {"mode": "maintenance", "flushed": len(flushed)},
        )
        return flushed

    def _record_incident(self, kind: str, now: float, shard_id: int,
                         detail: Dict[str, object]) -> None:
        """Mark the flight recorder and package an incident bundle.

        Only active when a recorder is attached — plain supervision runs
        carry zero observability cost.  The bundle cites the recorder's
        window up to *now* and, when the fleet has trace propagation
        attached, the reconstructed journeys of the flows the event
        rebalanced.
        """
        if self.flight is None:
            return
        from ..obs.incident import build_incident_bundle

        self.flight.note(now, kind, shard=shard_id, **detail)
        trace = self.fleet.trace
        flows: List[object] = []
        trackers = None
        if trace is not None:
            flows = [
                ctx.flow for ctx in trace.contexts.values()
                if any(hop["kind"] == "rebalance" and hop["shard"] != shard_id
                       for hop in ctx.hops)
            ][:8]
            trackers = {
                shard.id: shard.worker.spans
                for shard in self.fleet.shards
                if shard.worker.spans is not None
            }
        self.incidents.append(build_incident_bundle(
            kind,
            now,
            window=now,
            detail={"shard": shard_id, **detail},
            flights=[self.flight],
            trace=trace,
            trackers=trackers,
            flows=flows,
            owner_of=self.fleet.steering.owner_of,
            config=self.fleet.config,
        ))

    def replace_worker(self, index: int, reason: str = "maintenance") -> GatewayWorker:
        """In-shard standby swap (shard stays in steering throughout)."""
        return self.managers[index].takeover(reason=reason)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest for the CLI and reports."""
        return {
            "shards": [
                {
                    "id": shard.id,
                    "alive": shard.alive,
                    "drained": shard.drained,
                    "health": monitor.state,
                    "beats": monitor.beats,
                    "bad_beats": monitor.bad_beats,
                    "checkpoints": manager.checkpoints_taken,
                    "takeovers": manager.takeovers,
                }
                for shard, monitor, manager in zip(
                    self.fleet.shards, self.monitors, self.managers
                )
            ],
            "actions": [list(action) for action in self.actions],
        }
