"""Flow-consistent steering across a mutable fleet of gateway shards.

A single PXGW instance shards flows over worker cores with the RSS
indirection table (:class:`repro.nic.rss.RssDistributor`).  That scheme
breaks at fleet scale: removing a shard renumbers the modulo, moving
almost *every* flow — and a moved flow lands on a shard that holds none
of its state (classifier verdict, merge affinity), so a single failure
would cold-start the whole city.

The fleet therefore steers with rendezvous (highest-random-weight)
hashing layered on the same Toeplitz flow hash the NICs use:

* each (flow, shard) pair gets a deterministic 64-bit weight derived
  from the flow's RSS hash and the shard's seed;
* a flow is served by the *live* shard with the highest weight;
* removing a shard moves exactly the flows that shard owned (their next
  highest weight is unchanged for everyone else), and restoring it
  moves exactly those flows back — flow affinity survives membership
  churn by construction.

Packets without a parseable 4-tuple (fragments, ICMP) round-robin over
the live shards, mirroring the NIC fallback.
"""

from __future__ import annotations

from typing import Dict, List

from ..nic.rss import DEFAULT_RSS_KEY, flow_hash
from ..packet import FlowKey

__all__ = ["FleetSteering"]

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a deterministic, well-mixed 64-bit hash."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class FleetSteering:
    """Rendezvous-hash steering over the live subset of N shards."""

    def __init__(self, shards: int, seed: int = 0xF1EE7, key: bytes = DEFAULT_RSS_KEY):
        if shards <= 0:
            raise ValueError("need at least one shard")
        self.shards = shards
        self.key = key
        #: Per-shard weight seeds; frozen at construction so the flow →
        #: shard map is a pure function of (flow, live membership).
        self._shard_seeds = [_mix64(seed + index + 1) for index in range(shards)]
        self._live = [True] * shards
        self._cache: Dict[FlowKey, int] = {}
        self._flow_hashes: Dict[FlowKey, int] = {}
        #: Steering decisions landed on each shard (cache hits count —
        #: every call models one hardware steering decision).
        self.steered = [0] * shards
        #: Cache effectiveness: hits resolve in one dict probe, misses
        #: walk the rendezvous ring (exported via ``observe_fleet``).
        self.cache_hits = 0
        self.cache_misses = 0
        #: Membership changes applied (removals + restores).
        self.reshards = 0
        self._rr = 0
        #: Optional hook fired on every cache-*miss* decision with
        #: ``(flow, shard)`` — the trace-propagation attach point.  The
        #: cached hot path never fires it, so tracing costs nothing per
        #: packet.
        self.on_decision = None

    # ------------------------------------------------------------------
    def live_shards(self) -> List[int]:
        """Indices of shards currently receiving traffic."""
        return [index for index, live in enumerate(self._live) if live]

    def is_live(self, shard: int) -> bool:
        return self._live[shard]

    def remove(self, shard: int) -> None:
        """Take *shard* out of the steering map (death or drain)."""
        if not self._live[shard]:
            return
        if sum(self._live) == 1:
            raise ValueError("cannot remove the last live shard")
        self._live[shard] = False
        self.reshards += 1
        # Only flows owned by the removed shard change target; dropping
        # just their cache entries keeps every other flow's assignment
        # untouched (and provably unchanged, by the rendezvous property).
        self._cache = {
            flow: owner for flow, owner in self._cache.items() if owner != shard
        }

    def restore(self, shard: int) -> None:
        """Return *shard* to the steering map."""
        if self._live[shard]:
            return
        self._live[shard] = True
        self.reshards += 1
        # The restored shard wins back exactly the flows whose top
        # weight it holds; every cached assignment must be re-judged
        # against it.  (Weights are cached, so this is cheap.)
        self._cache.clear()

    # ------------------------------------------------------------------
    def shard_for(self, flow: FlowKey) -> int:
        """The live shard serving *flow* under the current membership."""
        cached = self._cache.get(flow)
        if cached is not None:
            self.cache_hits += 1
            self.steered[cached] += 1
            return cached
        self.cache_misses += 1
        base = self._flow_hashes.get(flow)
        if base is None:
            base = flow_hash(flow, self.key)
            self._flow_hashes[flow] = base
        best = -1
        best_weight = -1
        live = self._live
        seeds = self._shard_seeds
        for index in range(self.shards):
            if not live[index]:
                continue
            weight = _mix64(base ^ seeds[index])
            if weight > best_weight:
                best_weight = weight
                best = index
        self._cache[flow] = best
        self.steered[best] += 1
        if self.on_decision is not None:
            self.on_decision(flow, best)
        return best

    def owner_of(self, flow: FlowKey) -> int:
        """Pure peek at *flow*'s owner under the current membership.

        Unlike :meth:`shard_for` this never mutates the cache, the
        counters, or fires ``on_decision`` — verification code can ask
        who owns a flow without perturbing the steering state.
        """
        cached = self._cache.get(flow)
        if cached is not None:
            return cached
        base = self._flow_hashes.get(flow)
        if base is None:
            base = flow_hash(flow, self.key)
        best = -1
        best_weight = -1
        for index in range(self.shards):
            if not self._live[index]:
                continue
            weight = _mix64(base ^ self._shard_seeds[index])
            if weight > best_weight:
                best_weight = weight
                best = index
        return best

    def shard_for_unkeyed(self) -> int:
        """Round-robin fallback for packets without a flow key."""
        live = self.live_shards()
        self._rr = (self._rr + 1) % len(live)
        shard = live[self._rr]
        self.steered[shard] += 1
        return shard

    # ------------------------------------------------------------------
    def distribution(self, flows) -> List[int]:
        """Per-shard flow counts for *flows* (imbalance analysis)."""
        counts = [0] * self.shards
        for flow in flows:
            counts[self.shard_for(flow)] += 1
        return counts
