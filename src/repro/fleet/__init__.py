"""City-scale gateway fleet: sharded workers, flow steering, rebalance.

The package generalizes the single PXGW instance of :mod:`repro.core`
to a fleet of N worker shards behind a flow-consistent steering stage,
with bounded per-shard flow tables, checkpointed shard-loss rebalance,
and health-driven drain/rejoin (reusing :mod:`repro.resilience`).
"""

from .fleet import FleetShard, GatewayFleet
from .steering import FleetSteering
from .supervisor import FleetSupervisor, ShardPort

__all__ = [
    "FleetShard",
    "FleetSteering",
    "FleetSupervisor",
    "GatewayFleet",
    "ShardPort",
]
