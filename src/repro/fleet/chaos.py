"""Chaos harness for the fleet: worker-shard loss under city load.

The single-gateway chaos corpus (:mod:`repro.chaos.scenarios`) proves
the datapath survives link-level abuse; the fleet corpus proves the
*tier* survives losing a member mid-burst.  Each scenario:

1. replays a seeded city-scale burst through an N-shard fleet, with a
   **per-shard** span tracker attached (span FIFO flushes are global
   per tracker, so sharing one across shards would let a dead shard's
   failover flush corrupt the survivors' accounting);
2. checkpoints the fleet periodically, exactly as the supervisor's
   :class:`~repro.resilience.failover.FailoverManager` would;
3. kills a seeded victim shard mid-burst — ``crash`` mode resumes from
   the last periodic checkpoint (the staleness-bounded model), while
   ``maintenance`` mode checkpoints at the instant of death (provably
   zero-loss);
4. finishes the burst on the survivors and runs the oracle:
   fleet conservation identities, zero-loss packet accounting
   (maintenance mode), per-shard span balance with zero anomalies,
   flow-affinity consistency (every surviving flow record sits on the
   shard steering says owns it), and a deterministic egress digest.

Scenario seeds derive from the same ``(profile, seed)`` corpus grid as
the link-chaos suite, so the 56-scenario machinery is shared.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..chaos.oracle import InvariantOracle, summarize_packet
from ..chaos.scenarios import PROFILES
from ..core.config import GatewayConfig
from ..obs.spans import SpanTracker
from ..workload import CityScaleProfile, CityScaleWorkload
from .fleet import GatewayFleet

__all__ = ["FleetScenarioResult", "run_loss_scenario", "fleet_corpus"]


def fleet_corpus(count: int = 56) -> "List[Tuple[str, int, str]]":
    """The fleet loss corpus: (profile, seed, loss_mode) grid.

    Reuses the link-chaos profile rotation and seed spacing so the two
    corpora stay aligned; loss mode alternates crash/maintenance.
    """
    return [
        (PROFILES[i % len(PROFILES)], 101 + 7 * i,
         "crash" if i % 2 == 0 else "maintenance")
        for i in range(count)
    ]


def _city_profile(profile: str, seed: int) -> CityScaleProfile:
    """Map a chaos profile name onto a city population shape."""
    if profile == "tcp":
        return CityScaleProfile(
            total_flows=400, concurrency=60, udp_fraction=0.0,
            elephant_fraction=0.25, seed=seed,
        )
    if profile == "caravan":
        return CityScaleProfile(
            total_flows=400, concurrency=60, udp_fraction=1.0,
            elephant_fraction=0.25, seed=seed,
        )
    if profile == "pmtud":
        # Small-payload mice churn: stresses steering + table eviction.
        return CityScaleProfile(
            total_flows=600, concurrency=80, udp_fraction=0.3,
            elephant_fraction=0.02, mouse_mean_packets=3,
            tcp_payload=512, udp_payload=400, seed=seed,
        )
    return CityScaleProfile(  # "mixed"
        total_flows=500, concurrency=70, udp_fraction=0.3,
        elephant_fraction=0.10, seed=seed,
    )


@dataclass
class FleetScenarioResult:
    """One fleet loss scenario's outcome."""

    profile: str
    seed: int
    loss_mode: str
    victim: int
    packets: int
    egress: int
    flows_migrated: int
    digest: str
    violations: List[str] = field(default_factory=list)
    #: Deterministic incident bundle (observe=True runs only).
    incident: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _shard_snapshot(shard) -> "Dict[str, float]":
    """A tiny deterministic per-shard scrape for the alert engines."""
    stats = shard.worker.stats
    return {
        "shard_rx_packets": float(stats.rx_packets),
        "shard_malformed_caravans": float(stats.malformed_caravans),
        "shard_flow_evictions": float(shard.worker.flows.evictions),
    }


def _shard_alert_rules():
    """Per-shard SLO rules for observed fleet runs.

    A burn-rate pair (malformed caravans against ingress), an
    immediately-firing liveness rule, and an eviction-pressure rule
    whose for-duration is far beyond the burst's virtual clock — the
    latter is deliberately left PENDING when a shard dies mid-burst
    (the ``history()`` replay case the tests pin down).
    """
    from ..obs.alerts import AlertRule, burn_rate_rules

    return burn_rate_rules(
        "shard_malformed_caravans", "shard_rx_packets", budget=1e-3,
    ) + (
        AlertRule(
            name="shard-ingress-active", kind="value",
            series="shard_rx_packets", op=">", threshold=0.0,
            description="The shard has seen traffic (fires immediately).",
        ),
        AlertRule(
            name="shard-table-pressure", kind="value",
            series="shard_flow_evictions", op=">", threshold=0.0,
            for_duration=1.0,
            description="Flow-table evictions observed; dwells pending "
                        "far longer than any burst's virtual clock.",
        ),
    )


def run_loss_scenario(
    profile: str,
    seed: int,
    loss_mode: str = "crash",
    shards: int = 4,
    packets: int = 1_000,
    flow_table_capacity: int = 256,
    checkpoint_every: int = 4,
    config: Optional[GatewayConfig] = None,
    observe: bool = False,
    sabotage: Optional[str] = None,
) -> FleetScenarioResult:
    """One worker-loss-under-load scenario; see the module docstring.

    With ``observe=True`` the run carries the full post-incident layer:
    cross-shard trace propagation on the steering stage, a flight
    recorder per shard plus one for the fleet, and a per-shard
    :class:`~repro.obs.alerts.AlertEngine` evaluated at every
    checkpoint sweep — and the result ships a deterministic incident
    bundle (trigger ``shard-loss``, or ``chaos-oracle`` when the oracle
    found violations).  All of it is bookkeeping off the datapath, so
    the egress digest is identical with or without it.

    ``sabotage="stale-checkpoint"`` restores the victim from the
    checkpoint captured at the *first* sweep regardless of loss mode —
    a deliberately broken recovery that the zero-loss differential
    oracle must reject (the chaos-oracle bundle trigger).
    """
    if loss_mode not in ("crash", "maintenance"):
        raise ValueError(f"unknown loss mode {loss_mode!r}")
    if sabotage not in (None, "stale-checkpoint"):
        raise ValueError(f"unknown sabotage {sabotage!r}")
    config = config or GatewayConfig(flow_table_capacity=flow_table_capacity)
    fleet = GatewayFleet(config, shards=shards, steering_seed=seed)
    trackers: List[SpanTracker] = []
    for shard in fleet.shards:
        tracker = SpanTracker()
        shard.worker.spans = tracker
        trackers.append(tracker)

    trace = None
    fleet_flight = None
    shard_flights: List[object] = []
    engines: List[object] = []
    if observe:
        from ..obs.alerts import AlertEngine
        from ..obs.flight import FlightRecorder
        from ..obs.propagation import TracePropagation

        trace = fleet.attach_trace(TracePropagation(seed=seed))
        fleet_flight = FlightRecorder(name="fleet")
        shard_flights = [
            FlightRecorder(name=f"shard{shard.id}").wire(spans=tracker)
            for shard, tracker in zip(fleet.shards, trackers)
        ]
        engines = [AlertEngine(_shard_alert_rules()) for _ in fleet.shards]

    workload = CityScaleWorkload(_city_profile(profile, seed))
    stream = list(workload.packets(packets))
    victim = seed % shards
    # Kill mid-burst: after roughly 40% of the poll batches.
    kill_at_batch = max(1, (packets // config.poll_batch) * 2 // 5)
    state: Dict[str, object] = {
        "killed": False, "checkpoint_at": 0.0,
        "stale": None, "eval_at": 0.0, "prev": None, "loss_at": None,
    }

    def _evaluate_shards(now: float) -> None:
        window = now - float(state["eval_at"])
        prev = state["prev"]
        snaps = [_shard_snapshot(shard) for shard in fleet.shards]
        merged_deltas: Dict[str, float] = {}
        for shard, engine, snap in zip(fleet.shards, engines, snaps):
            if not shard.alive:
                # A dead shard's engine is never evaluated again: rules
                # pending at the loss stay pending in its history.
                continue
            base = prev[shard.id] if prev is not None else {}
            deltas = {k: v - base.get(k, 0.0) for k, v in snap.items()}
            engine.evaluate(now, snap, deltas, window or None)
            for key, value in deltas.items():
                merged_deltas[key] = merged_deltas.get(key, 0.0) + value
        fleet_flight.add_sample(now, merged_deltas)
        state["prev"] = snaps
        state["eval_at"] = now

    def on_batch(batch_index: int, now: float):
        if not state["killed"] and batch_index % checkpoint_every == 0:
            fleet.checkpoint_all(now)
            state["checkpoint_at"] = now
            if state["stale"] is None:
                state["stale"] = fleet.shards[victim].checkpoint
            if observe:
                fleet_flight.note(now, "checkpoint-sweep", batch=batch_index)
                _evaluate_shards(now)
        if not state["killed"] and batch_index >= kill_at_batch:
            state["killed"] = True
            state["loss_at"] = now
            checkpoint = (
                fleet.shards[victim].checkpoint if loss_mode == "crash" else None
            )
            if sabotage == "stale-checkpoint":
                checkpoint = state["stale"]
            if observe:
                fleet_flight.note(
                    now, "shard-loss", shard=victim, mode=loss_mode,
                    sabotage=sabotage,
                )
            return fleet.fail_shard(victim, now, checkpoint=checkpoint)
        return None

    egress = fleet.process_stream(stream, on_batch=on_batch)

    oracle = InvariantOracle()
    errors = fleet.conservation_errors()
    oracle.expect(
        not errors, "fleet-conservation",
        f"identities violated after {loss_mode} loss: {errors}",
    )
    oracle.expect(
        bool(state["killed"]), "scenario-sanity",
        "victim shard was never killed (burst too short for kill point)",
    )
    oracle.expect(
        not fleet.shards[victim].alive, "scenario-sanity",
        "victim shard still alive after fail_shard",
    )
    if loss_mode == "maintenance":
        # Fresh checkpoint at the instant of death: nothing is lost.
        # The differential oracle: a control fleet digests the same
        # stream with no loss; every conservation-relevant counter must
        # match exactly (packets and payload neither vanish nor
        # double-count through the checkpoint/rebalance machinery).
        control = GatewayFleet(config, shards=shards, steering_seed=seed)
        control.process_stream(stream)
        want, got = control.combined_stats(), fleet.combined_stats()
        for counter in (
            "rx_packets", "tcp_payload_in", "tcp_payload_out",
            "udp_datagrams_in", "udp_datagrams_out",
        ):
            oracle.expect(
                getattr(got, counter) == getattr(want, counter), "zero-loss",
                f"{counter} {getattr(got, counter)} != control "
                f"{getattr(want, counter)}",
            )
    for shard, tracker in zip(fleet.shards, trackers):
        oracle.expect(
            tracker.balanced, "span-balance",
            f"shard {shard.id} span balance broken: {tracker.balance()}",
        )
        oracle.expect(
            tracker.anomalies == 0, "span-anomalies",
            f"shard {shard.id} saw {tracker.anomalies} span anomalies",
        )
    for shard in fleet.shards:
        if not shard.alive:
            continue
        for record in shard.worker.flows.snapshot():
            if fleet.steering.shard_for(record[0]) != shard.id:
                oracle.expect(
                    False, "flow-affinity",
                    f"flow {record[0]} lives on shard {shard.id}, steering "
                    f"says {fleet.steering.shard_for(record[0])}",
                )
                break

    hasher = hashlib.sha256()
    for packet in egress:
        hasher.update(repr(summarize_packet(packet)).encode())

    incident = None
    if observe:
        from ..obs.collectors import Observability, observe_fleet
        from ..obs.incident import build_incident_bundle
        from ..obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        observe_fleet(Observability(registry=registry), fleet)
        implicated = [
            ctx.flow for ctx in trace.contexts.values()
            if any(hop["kind"] == "rebalance" for hop in ctx.hops)
        ][:8]
        final_now = fleet._virtual_now
        kind = "chaos-oracle" if oracle.violations else "shard-loss"
        incident = build_incident_bundle(
            kind,
            final_now,
            window=final_now,
            detail={
                "profile": profile, "seed": seed, "loss_mode": loss_mode,
                "victim": victim, "sabotage": sabotage,
                "loss_at": state["loss_at"],
                "violations": list(oracle.violations),
            },
            flights=[fleet_flight] + shard_flights,
            alerts={f"shard{shard.id}": engine
                    for shard, engine in zip(fleet.shards, engines)},
            registry=registry,
            config=config,
            trace=trace,
            trackers={shard.id: tracker
                      for shard, tracker in zip(fleet.shards, trackers)},
            flows=implicated,
            owner_of=fleet.steering.owner_of,
        )

    return FleetScenarioResult(
        profile=profile,
        seed=seed,
        loss_mode=loss_mode,
        victim=victim,
        packets=len(stream),
        egress=len(egress),
        flows_migrated=fleet.flows_migrated,
        digest=hasher.hexdigest(),
        violations=list(oracle.violations),
        incident=incident,
    )
