"""Flow identification: the 5-tuple key used by PXGW's flow table."""

from __future__ import annotations

from typing import NamedTuple

from .address import ip_to_str

__all__ = ["FlowKey"]


class FlowKey(NamedTuple):
    """An immutable, hashable transport 5-tuple.

    ``NamedTuple`` keeps hashing cheap — the PXGW flow table performs one
    lookup per received packet, which dominates the merge path.
    """

    protocol: int
    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int

    def reversed(self) -> "FlowKey":
        """The key of the opposite direction of the same connection."""
        return FlowKey(self.protocol, self.dst_ip, self.dst_port, self.src_ip, self.src_port)

    def canonical(self) -> "FlowKey":
        """A direction-independent key (smaller endpoint first).

        Used where both directions of a connection must share state,
        e.g. the MSS-clamp module tracking a handshake.
        """
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port):
            return self
        return self.reversed()

    def __str__(self) -> str:
        return (
            f"proto={self.protocol} "
            f"{ip_to_str(self.src_ip)}:{self.src_port}->"
            f"{ip_to_str(self.dst_ip)}:{self.dst_port}"
        )
