"""Ethernet framing: header encode/decode and wire-overhead accounting.

The paper's motivation hinges on per-packet overheads, so the constants
here make the full on-the-wire cost of a frame explicit: preamble, start
frame delimiter, header, FCS, and the inter-frame gap.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "EtherType",
    "EthernetHeader",
    "ETH_HEADER_LEN",
    "ETH_FCS_LEN",
    "ETH_PREAMBLE_LEN",
    "ETH_IFG_LEN",
    "ETH_WIRE_OVERHEAD",
    "ETH_MIN_PAYLOAD",
    "wire_bytes_for_payload",
    "mac_to_str",
    "str_to_mac",
]

ETH_HEADER_LEN = 14
ETH_FCS_LEN = 4
ETH_PREAMBLE_LEN = 8  # 7-byte preamble + 1-byte SFD
ETH_IFG_LEN = 12
#: Total non-payload bytes consumed on the wire per frame.
ETH_WIRE_OVERHEAD = ETH_HEADER_LEN + ETH_FCS_LEN + ETH_PREAMBLE_LEN + ETH_IFG_LEN
#: Minimum Ethernet payload, originally required for collision detection.
ETH_MIN_PAYLOAD = 46


class EtherType:
    """Well-known EtherType values."""

    IPV4 = 0x0800
    ARP = 0x0806
    IPV6 = 0x86DD


def str_to_mac(text: str) -> bytes:
    """Parse ``"aa:bb:cc:dd:ee:ff"`` into 6 raw bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {text!r}")
    return bytes(int(part, 16) for part in parts)


def mac_to_str(mac: bytes) -> str:
    """Format 6 raw bytes as a colon-separated MAC string."""
    if len(mac) != 6:
        raise ValueError("MAC address must be 6 bytes")
    return ":".join(f"{octet:02x}" for octet in mac)


def wire_bytes_for_payload(payload_len: int) -> int:
    """Return total wire bytes for a frame carrying *payload_len* bytes.

    Includes padding up to the 46-byte minimum payload plus all framing
    overhead.  This is the quantity that determines serialization delay
    on a link.
    """
    padded = max(payload_len, ETH_MIN_PAYLOAD)
    return padded + ETH_WIRE_OVERHEAD


@dataclass
class EthernetHeader:
    """An Ethernet II header (no 802.1Q tag)."""

    dst: bytes = b"\xff" * 6
    src: bytes = b"\x00" * 6
    ethertype: int = EtherType.IPV4

    def pack(self) -> bytes:
        """Serialize to 14 wire bytes."""
        return struct.pack("!6s6sH", self.dst, self.src, self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        """Parse the first 14 bytes of *data*."""
        if len(data) < ETH_HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        dst, src, ethertype = struct.unpack_from("!6s6sH", data)
        return cls(dst=dst, src=src, ethertype=ethertype)
