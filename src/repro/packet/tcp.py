"""TCP header encode/decode, including the options PXGW rewrites.

PXGW intervenes in the MSS negotiation during the three-way handshake,
so option parsing/serialization (kind 2 = MSS) is a first-class citizen
here, alongside window scale, SACK-permitted, and timestamps.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .checksum import internet_checksum, ones_complement_sum, pseudo_header
from .ip import IPProto

__all__ = ["TCPFlags", "TCPOption", "TCPHeader", "TCP_HEADER_LEN"]

TCP_HEADER_LEN = 20


class TCPFlags:
    """TCP flag bits."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80


@dataclass(frozen=True)
class TCPOption:
    """A single TCP option as (kind, data) where data excludes kind/len."""

    kind: int
    data: bytes = b""

    END = 0
    NOP = 1
    MSS = 2
    WINDOW_SCALE = 3
    SACK_PERMITTED = 4
    SACK = 5
    TIMESTAMP = 8

    @classmethod
    def mss(cls, value: int) -> "TCPOption":
        """Build an MSS option advertising *value* bytes."""
        return cls(cls.MSS, struct.pack("!H", value))

    @classmethod
    def window_scale(cls, shift: int) -> "TCPOption":
        """Build a window-scale option with the given shift count."""
        return cls(cls.WINDOW_SCALE, struct.pack("!B", shift))

    @classmethod
    def sack_permitted(cls) -> "TCPOption":
        """Build a SACK-permitted option."""
        return cls(cls.SACK_PERMITTED)

    @classmethod
    def timestamp(cls, value: int, echo: int) -> "TCPOption":
        """Build a timestamp option."""
        return cls(cls.TIMESTAMP, struct.pack("!II", value, echo))

    @property
    def mss_value(self) -> int:
        """Decode the MSS value; only valid for MSS options."""
        if self.kind != self.MSS or len(self.data) != 2:
            raise ValueError("not an MSS option")
        return struct.unpack("!H", self.data)[0]


def _pack_options(options: "List[TCPOption]") -> bytes:
    """Serialize options and pad with NOPs to a 32-bit boundary."""
    out = bytearray()
    for option in options:
        if option.kind in (TCPOption.END, TCPOption.NOP):
            out.append(option.kind)
        else:
            out.append(option.kind)
            out.append(2 + len(option.data))
            out.extend(option.data)
    while len(out) % 4:
        out.append(TCPOption.NOP)
    if len(out) > 40:
        raise ValueError("TCP options exceed 40 bytes")
    return bytes(out)


def _unpack_options(data: bytes) -> "List[TCPOption]":
    """Parse an options blob into a list, stopping at END."""
    options: List[TCPOption] = []
    index = 0
    while index < len(data):
        kind = data[index]
        if kind == TCPOption.END:
            break
        if kind == TCPOption.NOP:
            index += 1
            continue
        if index + 1 >= len(data):
            raise ValueError("truncated TCP option")
        length = data[index + 1]
        if length < 2 or index + length > len(data):
            raise ValueError("bad TCP option length")
        options.append(TCPOption(kind, bytes(data[index + 2 : index + length])))
        index += length
    return options


class TCPHeader:
    """A parsed TCP header with structured options.

    A hand-rolled ``__slots__`` class rather than a dataclass: segment
    construction and :meth:`copy` run once or more per packet on the
    TCP fast path, and dropping the per-instance ``__dict__`` makes
    both measurably cheaper.  Equality matches the old dataclass form.
    """

    __slots__ = (
        "src_port", "dst_port", "seq", "ack", "flags", "window",
        "checksum", "urgent", "options",
    )

    def __init__(
        self,
        src_port: int = 0,
        dst_port: int = 0,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
        checksum: int = 0,
        urgent: int = 0,
        options: "Optional[List[TCPOption]]" = None,
    ):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.checksum = checksum
        self.urgent = urgent
        self.options = [] if options is None else options

    def _astuple(self):
        return (
            self.src_port, self.dst_port, self.seq, self.ack, self.flags,
            self.window, self.checksum, self.urgent, self.options,
        )

    def __eq__(self, other) -> bool:
        if other.__class__ is not TCPHeader:
            return NotImplemented
        return self._astuple() == other._astuple()

    __hash__ = None  # type: ignore[assignment] - mutable, like the dataclass it replaced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TCPHeader(src_port={self.src_port}, dst_port={self.dst_port}, "
            f"seq={self.seq}, ack={self.ack}, flags={self.flags:#x}, "
            f"window={self.window}, options={self.options!r})"
        )

    @property
    def header_len(self) -> int:
        """Header length in bytes including padded options.

        Computed arithmetically (option sizes + NOP padding to a 32-bit
        boundary) rather than by serializing: this property sits on the
        per-packet length-accounting path of every link and stat.
        """
        options = self.options
        if not options:
            return TCP_HEADER_LEN
        length = 0
        for option in options:
            kind = option.kind
            length += 1 if kind <= TCPOption.NOP else 2 + len(option.data)
        return TCP_HEADER_LEN + ((length + 3) & ~3)

    @property
    def syn(self) -> bool:
        return bool(self.flags & TCPFlags.SYN)

    @property
    def ack_flag(self) -> bool:
        return bool(self.flags & TCPFlags.ACK)

    @property
    def fin(self) -> bool:
        return bool(self.flags & TCPFlags.FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & TCPFlags.RST)

    @property
    def psh(self) -> bool:
        return bool(self.flags & TCPFlags.PSH)

    def find_option(self, kind: int) -> Optional[TCPOption]:
        """Return the first option of *kind*, or None."""
        for option in self.options:
            if option.kind == kind:
                return option
        return None

    @property
    def mss_option(self) -> Optional[int]:
        """The advertised MSS, if an MSS option is present."""
        option = self.find_option(TCPOption.MSS)
        return option.mss_value if option else None

    def replace_mss(self, new_mss: int) -> bool:
        """Rewrite the MSS option in place; returns True if one existed.

        This is the primitive PXGW's MSS-clamping module uses to
        advertise a larger (or smaller) MSS on behalf of the endpoint
        behind it.
        """
        for index, option in enumerate(self.options):
            if option.kind == TCPOption.MSS:
                self.options[index] = TCPOption.mss(new_mss)
                return True
        return False

    def copy(self) -> "TCPHeader":
        """Return a deep-enough copy (options list is copied)."""
        new = TCPHeader.__new__(TCPHeader)
        new.src_port = self.src_port
        new.dst_port = self.dst_port
        new.seq = self.seq
        new.ack = self.ack
        new.flags = self.flags
        new.window = self.window
        new.checksum = self.checksum
        new.urgent = self.urgent
        new.options = list(self.options)
        return new

    def pack(self, payload: bytes = b"", src_ip: int = 0, dst_ip: int = 0) -> bytes:
        """Serialize the header, computing the checksum if IPs given."""
        opts = _pack_options(self.options)
        data_offset = (TCP_HEADER_LEN + len(opts)) // 4
        head = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset << 4,
            self.flags,
            self.window,
            0,
            self.urgent,
        )
        head += opts
        if src_ip or dst_ip:
            seg_len = len(head) + len(payload)
            pseudo = pseudo_header(src_ip, dst_ip, IPProto.TCP, seg_len)
            partial = ones_complement_sum(pseudo)
            partial = ones_complement_sum(head, partial)
            self.checksum = internet_checksum(payload, partial)
        else:
            self.checksum = 0
        return head[:16] + struct.pack("!H", self.checksum) + head[18:]

    @classmethod
    def unpack(cls, data: bytes) -> "Tuple[TCPHeader, int]":
        """Parse a TCP header; returns (header, header_length_bytes)."""
        if len(data) < TCP_HEADER_LEN:
            raise ValueError("truncated TCP header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_byte,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack_from("!HHIIBBHHH", data)
        header_len = (offset_byte >> 4) * 4
        if header_len < TCP_HEADER_LEN or len(data) < header_len:
            raise ValueError("bad TCP data offset")
        options = _unpack_options(data[TCP_HEADER_LEN:header_len])
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
            options=options,
        )
        return header, header_len
