"""Batch (vectorized) checksum and serialization primitives.

The scalar path pays per-packet costs that a burst can amortize: one
``array``/``memoryview`` cast per buffer, one struct call per field
group, one attribute walk per header.  This module computes Internet
checksums for a whole burst with a single C-level 16-bit cast over one
concatenated buffer, and serializes packet bursts by batching every
checksum in the burst (L4 and IPv4 header alike) through that path.

Equivalence contracts (enforced by the Hypothesis suite in
``tests/test_packet_vector.py``):

* ``checksum_many(chunks) == [internet_checksum(c) for c in chunks]``
  for arbitrary byte strings, including empty and odd-length ones.
* ``serialize_many(packets) == [p.to_bytes() for p in packets]`` —
  byte-for-byte, including the header side effects ``pack`` performs
  (TCP/UDP checksum fields, UDP length, IP total length).
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence

from .checksum import _NEEDS_BYTESWAP, pseudo_header
from .icmp import ICMPMessage
from .ip import IP_MAX_PACKET, IPProto, IPv4Header
from .packet import Packet
from .tcp import TCP_HEADER_LEN, TCPHeader, _pack_options
from .udp import UDP_HEADER_LEN, UDPHeader

__all__ = ["checksum_many", "serialize_many"]

_pack_ip_head = struct.Struct("!BBHHHBBHII").pack
_pack_tcp_head = struct.Struct("!HHIIBBHHH").pack
_pack_udp_head = struct.Struct("!HHHH").pack
_pack_word = struct.Struct("!H").pack


def checksum_many(chunks: "Iterable[bytes]") -> List[int]:
    """Internet checksums (RFC 1071) for a batch of byte strings.

    Equivalent to ``[internet_checksum(c) for c in chunks]`` but sums
    every chunk out of one concatenated buffer through a single
    ``memoryview`` cast to 16-bit words, so the per-buffer setup cost
    (allocation, cast, odd-byte handling) is paid once per burst
    instead of once per packet.
    """
    padded: List[bytes] = []
    halves: List[int] = []
    for chunk in chunks:
        if len(chunk) & 1:
            # RFC 1071 pads the odd trailing byte with zero on the right.
            chunk = chunk + b"\x00"
        padded.append(chunk)
        halves.append(len(chunk) >> 1)
    if not padded:
        return []
    words = memoryview(b"".join(padded)).cast("H")
    out: List[int] = []
    append = out.append
    swap = _NEEDS_BYTESWAP
    position = 0
    for count in halves:
        end = position + count
        total = sum(words[position:end])
        position = end
        # Fold in host order first; ones' complement addition commutes
        # with byte swapping, so swapping the folded 16-bit result once
        # recovers the big-endian sum (RFC 1071 §2(B)).
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        if swap:
            total = ((total & 0xFF) << 8) | (total >> 8)
        append(~total & 0xFFFF)
    return out


def _ip_head_zero_ck(ip: IPv4Header, body_len: int) -> bytes:
    """The IPv4 header bytes with a zeroed checksum field.

    Mirrors ``IPv4Header.pack`` exactly — same validations in the same
    order, same ``total_length`` side effect — minus the checksum.
    """
    options = ip.options
    if len(options) % 4:
        raise ValueError("IPv4 options must be padded to 32-bit words")
    total_length = 20 + len(options) + body_len
    ip.total_length = total_length
    if total_length > IP_MAX_PACKET:
        raise ValueError(f"IPv4 packet too large: {total_length}")
    flags = (0x4000 if ip.dont_fragment else 0) | (0x2000 if ip.more_fragments else 0)
    if ip.fragment_offset > 0x1FFF:
        raise ValueError("fragment offset out of range")
    head = _pack_ip_head(
        (4 << 4) | ((20 + len(options)) // 4),
        ip.tos,
        total_length,
        ip.identification,
        flags | ip.fragment_offset,
        ip.ttl,
        ip.protocol,
        0,
        ip.src,
        ip.dst,
    )
    return head + options if options else head


def serialize_many(packets: "Sequence[Packet]") -> List[bytes]:
    """Serialize a burst of packets to wire bytes.

    Byte-identical to ``[p.to_bytes() for p in packets]``, including
    the header side effects of the scalar ``pack`` methods, but every
    checksum in the burst — one L4 plus one IPv4 header checksum per
    packet — is computed by a single :func:`checksum_many` call.
    """
    # Pass 1: build zero-checksum header bytes and the exact buffers
    # each checksum covers.  Chunk layout: for packet i, slot 2*i holds
    # the L4 checksum input (empty when the packet has no computed L4
    # checksum) and slot 2*i+1 the IPv4 header bytes.
    chunks: List[bytes] = []
    l4_heads: List[bytes] = []
    ip_heads: List[bytes] = []
    for packet in packets:
        l4 = packet.l4
        ip = packet.ip
        payload = packet.payload
        src = ip.src
        dst = ip.dst
        if isinstance(l4, TCPHeader):
            opts = _pack_options(l4.options)
            head = _pack_tcp_head(
                l4.src_port,
                l4.dst_port,
                l4.seq & 0xFFFFFFFF,
                l4.ack & 0xFFFFFFFF,
                ((TCP_HEADER_LEN + len(opts)) // 4) << 4,
                l4.flags,
                l4.window,
                0,
                l4.urgent,
            )
            if opts:
                head += opts
            if src or dst:
                seg_len = len(head) + len(payload)
                chunks.append(
                    pseudo_header(src, dst, IPProto.TCP, seg_len) + head + payload
                )
            else:
                chunks.append(b"")
            body_len = len(head) + len(payload)
        elif isinstance(l4, UDPHeader):
            length = UDP_HEADER_LEN + len(payload)
            l4.length = length
            head = _pack_udp_head(l4.src_port, l4.dst_port, length, 0)
            if src or dst:
                chunks.append(
                    pseudo_header(src, dst, IPProto.UDP, length) + head + payload
                )
            else:
                chunks.append(b"")
            body_len = length
        elif isinstance(l4, ICMPMessage):
            # ICMP checksums its own message internally; reuse the
            # scalar pack and batch only the IP header checksum.
            head = l4.pack()
            chunks.append(b"")
            body_len = len(head)
        else:
            head = b""
            chunks.append(b"")
            body_len = len(payload)
        l4_heads.append(head)
        ip_head = _ip_head_zero_ck(ip, body_len)
        ip_heads.append(ip_head)
        chunks.append(ip_head)

    sums = checksum_many(chunks)

    # Pass 2: splice the computed checksums into the header bytes and
    # assemble, applying the scalar paths' side effects and the UDP
    # zero-maps-to-0xFFFF rule (RFC 768).
    out: List[bytes] = []
    append = out.append
    for index, packet in enumerate(packets):
        l4 = packet.l4
        head = l4_heads[index]
        ip_head = ip_heads[index]
        l4_sum = sums[2 * index]
        ip_sum = sums[2 * index + 1]
        if isinstance(l4, TCPHeader):
            if packet.ip.src or packet.ip.dst:
                l4.checksum = l4_sum
            else:
                l4.checksum = 0
            body = head[:16] + _pack_word(l4.checksum) + head[18:] + packet.payload
        elif isinstance(l4, UDPHeader):
            if packet.ip.src or packet.ip.dst:
                l4.checksum = l4_sum or 0xFFFF
            else:
                l4.checksum = 0
            body = head[:6] + _pack_word(l4.checksum) + packet.payload
        elif isinstance(l4, ICMPMessage):
            body = head
        else:
            body = packet.payload
        append(ip_head[:10] + _pack_word(ip_sum) + ip_head[12:] + body)
    return out
