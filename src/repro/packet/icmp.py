"""ICMP messages used by classical PMTUD (RFC 1191) and traceroute-style probing.

Only the message types the reproduction needs are modelled: echo
request/reply, destination-unreachable (specifically *fragmentation
needed*, which carries the next-hop MTU), and time-exceeded.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum

__all__ = ["ICMPType", "ICMPMessage", "ICMP_HEADER_LEN"]

ICMP_HEADER_LEN = 8


class ICMPType:
    """ICMP message types and the codes the library uses."""

    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11

    # Destination-unreachable codes.
    CODE_PORT_UNREACHABLE = 3
    CODE_FRAG_NEEDED = 4


@dataclass
class ICMPMessage:
    """A minimal ICMP message.

    For ``DEST_UNREACHABLE/CODE_FRAG_NEEDED`` the low 16 bits of the
    rest-of-header word carry the next-hop MTU (RFC 1191 §4); *payload*
    carries the offending IP header + 8 bytes, as routers echo back.
    """

    icmp_type: int = ICMPType.ECHO_REQUEST
    code: int = 0
    rest: int = 0
    payload: bytes = b""

    @classmethod
    def frag_needed(cls, next_hop_mtu: int, original: bytes = b"") -> "ICMPMessage":
        """Build the 'fragmentation needed and DF set' message."""
        return cls(
            icmp_type=ICMPType.DEST_UNREACHABLE,
            code=ICMPType.CODE_FRAG_NEEDED,
            rest=next_hop_mtu & 0xFFFF,
            payload=original[:28],
        )

    @classmethod
    def echo_request(cls, ident: int, seq: int, data: bytes = b"") -> "ICMPMessage":
        """Build an echo request."""
        return cls(ICMPType.ECHO_REQUEST, 0, ((ident & 0xFFFF) << 16) | (seq & 0xFFFF), data)

    @classmethod
    def echo_reply(cls, request: "ICMPMessage") -> "ICMPMessage":
        """Build the reply matching an echo request."""
        return cls(ICMPType.ECHO_REPLY, 0, request.rest, request.payload)

    @property
    def next_hop_mtu(self) -> int:
        """The MTU hint in a frag-needed message."""
        return self.rest & 0xFFFF

    @property
    def is_frag_needed(self) -> bool:
        """True for 'fragmentation needed and DF set'."""
        return (
            self.icmp_type == ICMPType.DEST_UNREACHABLE
            and self.code == ICMPType.CODE_FRAG_NEEDED
        )

    def pack(self) -> bytes:
        """Serialize with checksum."""
        head = struct.pack("!BBHI", self.icmp_type, self.code, 0, self.rest)
        checksum = internet_checksum(head + self.payload)
        return head[:2] + struct.pack("!H", checksum) + head[4:] + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "ICMPMessage":
        """Parse an ICMP message from *data*."""
        if len(data) < ICMP_HEADER_LEN:
            raise ValueError("truncated ICMP message")
        icmp_type, code, _checksum, rest = struct.unpack_from("!BBHI", data)
        return cls(icmp_type=icmp_type, code=code, rest=rest, payload=bytes(data[ICMP_HEADER_LEN:]))
