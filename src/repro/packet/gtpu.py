"""GTP-U encapsulation header (3GPP TS 29.281), used by the 5G UPF substrate.

Only the mandatory 8-byte header with the G-PDU message type is
modelled; extension headers, sequence numbers, and N-PDU numbers are
outside what the OMEC UPF datapath exercises for plain user traffic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["GTPUHeader", "GTPU_HEADER_LEN", "GTPU_PORT", "GTPU_MSG_GPDU"]

GTPU_HEADER_LEN = 8
#: UDP port GTP-U tunnels run over.
GTPU_PORT = 2152
#: Message type for an encapsulated user PDU.
GTPU_MSG_GPDU = 0xFF


@dataclass
class GTPUHeader:
    """A minimal GTP-U v1 header: flags, message type, length, TEID."""

    teid: int = 0
    message_type: int = GTPU_MSG_GPDU
    length: int = 0

    def pack(self, payload_len: "int | None" = None) -> bytes:
        """Serialize; *payload_len* sets the length field when given."""
        if payload_len is not None:
            self.length = payload_len
        flags = 0x30  # version 1, protocol type GTP, no optional fields
        return struct.pack("!BBHI", flags, self.message_type, self.length, self.teid)

    @classmethod
    def unpack(cls, data: bytes) -> "GTPUHeader":
        """Parse a GTP-U header from *data*."""
        if len(data) < GTPU_HEADER_LEN:
            raise ValueError("truncated GTP-U header")
        flags, message_type, length, teid = struct.unpack_from("!BBHI", data)
        if (flags >> 5) != 1:
            raise ValueError("unsupported GTP version")
        return cls(teid=teid, message_type=message_type, length=length)
