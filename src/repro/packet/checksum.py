"""Internet checksum helpers (RFC 1071) and incremental updates (RFC 1624).

All multi-byte quantities are big-endian, as on the wire.  The ones'
complement sum is computed over 16-bit words; an odd trailing byte is
padded with a zero byte on the right.
"""

from __future__ import annotations

import struct
import sys
from array import array

__all__ = [
    "ones_complement_sum",
    "internet_checksum",
    "verify_checksum",
    "incremental_update",
    "pseudo_header",
]

_NEEDS_BYTESWAP = sys.byteorder == "little"


def _scalar_ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """Reference word-at-a-time implementation (RFC 1071 directly).

    Kept as the oracle for the vectorized fast path below; the
    property suite asserts both agree on arbitrary buffers.
    """
    total = initial
    if len(data) % 2:
        total += data[-1] << 8
        data = data[:-1]
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """Return the 16-bit ones' complement sum of *data*.

    ``initial`` allows chaining sums across several buffers (e.g. a
    pseudo-header followed by the transport segment).

    The words are summed in one C-level pass (``array('H')``) in host
    byte order; because ones' complement addition commutes with byte
    swapping, folding first and swapping the folded 16-bit result once
    recovers the big-endian sum (RFC 1071 §2(B)).
    """
    total = initial
    if len(data) % 2:
        # Pad the odd trailing byte with zero on the right, as the RFC
        # specifies (equivalent to adding ``last_byte << 8``).
        data = data + b"\x00"
    if data:
        partial = sum(array("H", data))
        while partial >> 16:
            partial = (partial & 0xFFFF) + (partial >> 16)
        if _NEEDS_BYTESWAP:
            partial = ((partial & 0xFF) << 8) | (partial >> 8)
        total += partial
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """Return the Internet checksum of *data* (RFC 1071)."""
    return (~ones_complement_sum(data, initial)) & 0xFFFF


def verify_checksum(data: bytes, initial: int = 0) -> bool:
    """Return ``True`` if *data* (including its checksum field) verifies.

    A buffer containing a correct checksum sums to ``0xFFFF``.
    """
    return ones_complement_sum(data, initial) == 0xFFFF


def incremental_update(old_checksum: int, old_word: int, new_word: int) -> int:
    """Update a checksum after a 16-bit field changed (RFC 1624 eqn. 3).

    ``HC' = ~(~HC + ~m + m')`` where *m* is the old field value and *m'*
    the new one.  Used by PXGW when rewriting TCP MSS options and IP
    lengths so the full segment need not be re-summed.
    """
    total = (~old_checksum & 0xFFFF) + (~old_word & 0xFFFF) + (new_word & 0xFFFF)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    result = (~total) & 0xFFFF
    # 0x0000 and 0xFFFF both encode zero in ones' complement, but only
    # 0xFFFF verifies against data summing to +0 — normalize to it.
    return result or 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """Return the IPv4 pseudo-header used by TCP/UDP checksums."""
    return struct.pack("!IIBBH", src_ip, dst_ip, 0, protocol, length)
