"""UDP header encode/decode with pseudo-header checksum."""

from __future__ import annotations

import struct

from .checksum import internet_checksum, ones_complement_sum, pseudo_header
from .ip import IPProto

__all__ = ["UDPHeader", "UDP_HEADER_LEN"]

UDP_HEADER_LEN = 8


class UDPHeader:
    """A UDP header; ``length`` covers header plus payload.

    ``__slots__`` (not a dataclass) because UDP/caravan datapaths build
    one per datagram; equality matches the old dataclass form.
    """

    __slots__ = ("src_port", "dst_port", "length", "checksum")

    def __init__(
        self,
        src_port: int = 0,
        dst_port: int = 0,
        length: int = UDP_HEADER_LEN,
        checksum: int = 0,
    ):
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = length
        self.checksum = checksum

    def __eq__(self, other) -> bool:
        if other.__class__ is not UDPHeader:
            return NotImplemented
        return (
            self.src_port == other.src_port
            and self.dst_port == other.dst_port
            and self.length == other.length
            and self.checksum == other.checksum
        )

    __hash__ = None  # type: ignore[assignment] - mutable, like the dataclass it replaced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UDPHeader(src_port={self.src_port}, dst_port={self.dst_port}, "
            f"length={self.length}, checksum={self.checksum})"
        )

    def pack(self, payload: bytes = b"", src_ip: int = 0, dst_ip: int = 0) -> bytes:
        """Serialize header (and compute checksum when IPs are given).

        Per RFC 768 a computed checksum of zero is transmitted as
        ``0xFFFF``; zero on the wire means "no checksum".
        """
        self.length = UDP_HEADER_LEN + len(payload)
        head = struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)
        if src_ip or dst_ip:
            pseudo = pseudo_header(src_ip, dst_ip, IPProto.UDP, self.length)
            partial = ones_complement_sum(pseudo)
            partial = ones_complement_sum(head, partial)
            checksum = internet_checksum(payload, partial)
            if checksum == 0:
                checksum = 0xFFFF
            self.checksum = checksum
        else:
            self.checksum = 0
        return head[:6] + struct.pack("!H", self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        """Parse a UDP header from the front of *data*."""
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, checksum = struct.unpack_from("!HHHH", data)
        if length < UDP_HEADER_LEN:
            raise ValueError("bad UDP length")
        return cls(src_port=src_port, dst_port=dst_port, length=length, checksum=checksum)

    def verify(self, payload: bytes, src_ip: int, dst_ip: int) -> bool:
        """Return True if the stored checksum matches the given payload."""
        if self.checksum == 0:  # checksum disabled by sender
            return True
        pseudo = pseudo_header(src_ip, dst_ip, IPProto.UDP, self.length)
        head = struct.pack("!HHHH", self.src_port, self.dst_port, self.length, self.checksum)
        partial = ones_complement_sum(pseudo)
        partial = ones_complement_sum(head, partial)
        return ones_complement_sum(payload, partial) == 0xFFFF
