"""Byte-accurate packet formats: Ethernet, IPv4, TCP, UDP, ICMP, GTP-U.

This package is the bottom layer of the reproduction: everything above
(the simulator, PXGW, F-PMTUD, the UPF) manipulates these objects.
"""

from .address import bytes_to_ip, in_subnet, ip_to_bytes, ip_to_str, make_subnet, str_to_ip
from .builder import as_ip, build_icmp, build_tcp, build_udp, next_ip_id
from .checksum import incremental_update, internet_checksum, verify_checksum
from .ethernet import (
    ETH_WIRE_OVERHEAD,
    EthernetHeader,
    EtherType,
    wire_bytes_for_payload,
)
from .flow import FlowKey
from .fragment import FragmentationNeeded, Reassembler, fragment_packet
from .gtpu import GTPU_PORT, GTPUHeader
from .icmp import ICMPMessage, ICMPType
from .ip import IP_HEADER_LEN, IP_MAX_PACKET, PX_CARAVAN_TOS, IPProto, IPv4Header
from .packet import Packet
from .tcp import TCP_HEADER_LEN, TCPFlags, TCPHeader, TCPOption
from .udp import UDP_HEADER_LEN, UDPHeader
from .vector import checksum_many, serialize_many

__all__ = [
    "EthernetHeader",
    "EtherType",
    "ETH_WIRE_OVERHEAD",
    "wire_bytes_for_payload",
    "IPv4Header",
    "IPProto",
    "IP_HEADER_LEN",
    "IP_MAX_PACKET",
    "PX_CARAVAN_TOS",
    "TCPHeader",
    "TCPFlags",
    "TCPOption",
    "TCP_HEADER_LEN",
    "UDPHeader",
    "UDP_HEADER_LEN",
    "ICMPMessage",
    "ICMPType",
    "GTPUHeader",
    "GTPU_PORT",
    "Packet",
    "FlowKey",
    "fragment_packet",
    "FragmentationNeeded",
    "Reassembler",
    "internet_checksum",
    "verify_checksum",
    "incremental_update",
    "checksum_many",
    "serialize_many",
    "ip_to_str",
    "str_to_ip",
    "ip_to_bytes",
    "bytes_to_ip",
    "make_subnet",
    "in_subnet",
    "build_tcp",
    "build_udp",
    "build_icmp",
    "next_ip_id",
    "as_ip",
]
