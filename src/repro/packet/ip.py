"""IPv4 header encode/decode with checksum support.

The header carries the fields PXGW and F-PMTUD depend on: the DF/MF
flags and fragment offset (fragmentation is F-PMTUD's probe signal), the
identification field (UDP_GRO-compatible caravan merging keys on
consecutive IP IDs), and the ToS byte (marks PX-caravan packets).
"""

from __future__ import annotations

import struct

from .checksum import internet_checksum, verify_checksum

__all__ = ["IPProto", "IPv4Header", "IP_HEADER_LEN", "IP_MAX_PACKET", "PX_CARAVAN_TOS"]

IP_HEADER_LEN = 20
#: Maximum IPv4 packet size (16-bit total length).
IP_MAX_PACKET = 65535
#: ToS value PXGW writes into caravan outer headers (DSCP pool-3 codepoint).
PX_CARAVAN_TOS = 0x04


class IPProto:
    """IP protocol numbers used by the library."""

    ICMP = 1
    TCP = 6
    UDP = 17


class IPv4Header:
    """A parsed IPv4 header (options supported as an opaque blob).

    A hand-rolled ``__slots__`` class rather than a dataclass: header
    construction and :meth:`copy` sit on the per-packet fast path
    (every build, fork, and forward makes one), and skipping the
    per-instance ``__dict__`` both shrinks the object and speeds field
    access.  Equality semantics match the previous dataclass form.
    """

    __slots__ = (
        "src", "dst", "protocol", "total_length", "identification",
        "dont_fragment", "more_fragments", "fragment_offset", "ttl",
        "tos", "options",
    )

    def __init__(
        self,
        src: int = 0,
        dst: int = 0,
        protocol: int = IPProto.TCP,
        total_length: int = IP_HEADER_LEN,
        identification: int = 0,
        dont_fragment: bool = False,
        more_fragments: bool = False,
        fragment_offset: int = 0,  # in 8-byte units
        ttl: int = 64,
        tos: int = 0,
        options: bytes = b"",
    ):
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.total_length = total_length
        self.identification = identification
        self.dont_fragment = dont_fragment
        self.more_fragments = more_fragments
        self.fragment_offset = fragment_offset
        self.ttl = ttl
        self.tos = tos
        self.options = options

    def _astuple(self):
        return (
            self.src, self.dst, self.protocol, self.total_length,
            self.identification, self.dont_fragment, self.more_fragments,
            self.fragment_offset, self.ttl, self.tos, self.options,
        )

    def __eq__(self, other) -> bool:
        if other.__class__ is not IPv4Header:
            return NotImplemented
        return self._astuple() == other._astuple()

    __hash__ = None  # type: ignore[assignment] - mutable, like the dataclass it replaced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IPv4Header(src={self.src}, dst={self.dst}, protocol={self.protocol}, "
            f"total_length={self.total_length}, identification={self.identification}, "
            f"dont_fragment={self.dont_fragment}, more_fragments={self.more_fragments}, "
            f"fragment_offset={self.fragment_offset}, ttl={self.ttl}, tos={self.tos})"
        )

    @property
    def header_len(self) -> int:
        """Header length in bytes, including options."""
        return IP_HEADER_LEN + len(self.options)

    @property
    def payload_len(self) -> int:
        """Bytes of payload carried after the header."""
        return self.total_length - self.header_len

    @property
    def is_fragment(self) -> bool:
        """True for any fragment (first, middle, or last) of a datagram."""
        return self.more_fragments or self.fragment_offset > 0

    def copy(self, **overrides) -> "IPv4Header":
        """Return a copy with selected fields replaced."""
        new = IPv4Header.__new__(IPv4Header)
        new.src = self.src
        new.dst = self.dst
        new.protocol = self.protocol
        new.total_length = self.total_length
        new.identification = self.identification
        new.dont_fragment = self.dont_fragment
        new.more_fragments = self.more_fragments
        new.fragment_offset = self.fragment_offset
        new.ttl = self.ttl
        new.tos = self.tos
        new.options = self.options
        if overrides:
            slots = IPv4Header.__slots__
            for name in overrides:
                if name not in slots:
                    raise TypeError(f"unknown IPv4Header field {name!r}")
                setattr(new, name, overrides[name])
        return new

    def pack(self, payload_len: "int | None" = None) -> bytes:
        """Serialize the header, computing total length and checksum.

        When *payload_len* is given the total-length field is derived
        from it; otherwise the stored ``total_length`` is used as-is.
        """
        if len(self.options) % 4:
            raise ValueError("IPv4 options must be padded to 32-bit words")
        if payload_len is not None:
            self.total_length = self.header_len + payload_len
        if self.total_length > IP_MAX_PACKET:
            raise ValueError(f"IPv4 packet too large: {self.total_length}")
        ihl = self.header_len // 4
        version_ihl = (4 << 4) | ihl
        flags = (0x4000 if self.dont_fragment else 0) | (0x2000 if self.more_fragments else 0)
        if self.fragment_offset > 0x1FFF:
            raise ValueError("fragment offset out of range")
        flags_frag = flags | self.fragment_offset
        head = struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            self.tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            self.src,
            self.dst,
        )
        head += self.options
        checksum = internet_checksum(head)
        return head[:10] + struct.pack("!H", checksum) + head[12:]

    @classmethod
    def unpack(cls, data: bytes, verify: bool = True) -> "IPv4Header":
        """Parse an IPv4 header from the front of *data*."""
        if len(data) < IP_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            _checksum,
            src,
            dst,
        ) = struct.unpack_from("!BBHHHBBHII", data)
        version = version_ihl >> 4
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        header_len = (version_ihl & 0x0F) * 4
        if header_len < IP_HEADER_LEN or len(data) < header_len:
            raise ValueError("bad IPv4 header length")
        if verify and not verify_checksum(data[:header_len]):
            raise ValueError("IPv4 header checksum mismatch")
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            total_length=total_length,
            identification=identification,
            dont_fragment=bool(flags_frag & 0x4000),
            more_fragments=bool(flags_frag & 0x2000),
            fragment_offset=flags_frag & 0x1FFF,
            ttl=ttl,
            tos=tos,
            options=bytes(data[IP_HEADER_LEN:header_len]),
        )
