"""IPv4 fragmentation and reassembly.

Routers call :func:`fragment_packet` when a datagram exceeds the egress
MTU and DF is clear; F-PMTUD's destination daemon uses
:class:`Reassembler` both to rebuild datagrams and — crucially — to
observe the *sizes* of the fragments that arrived, which is the
information the prober turns into a PMTU estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ip import IPv4Header
from .packet import Packet

__all__ = ["FragmentationNeeded", "fragment_packet", "Reassembler", "ReassemblyKey"]

#: Fragment offsets are expressed in 8-byte units.
FRAGMENT_UNIT = 8
#: Default reassembly timeout, matching common OS defaults (seconds).
DEFAULT_REASSEMBLY_TIMEOUT = 30.0


class FragmentationNeeded(Exception):
    """Raised when a DF packet exceeds the egress MTU.

    Routers translate this into an ICMP 'fragmentation needed' message
    (or silently drop it, when modelling an ICMP blackhole).
    """

    def __init__(self, packet: Packet, mtu: int):
        super().__init__(f"packet of {packet.total_len} B exceeds MTU {mtu} with DF set")
        self.packet = packet
        self.mtu = mtu


def _l4_bytes(packet: Packet) -> bytes:
    """Serialize the L4 portion (header + payload) of *packet*."""
    if packet.l4 is None:
        return packet.payload
    wire = packet.to_bytes()
    return wire[packet.ip.header_len :]


def fragment_packet(packet: Packet, mtu: int) -> List[Packet]:
    """Split *packet* into fragments that each fit in *mtu* bytes.

    Returns ``[packet]`` unchanged if it already fits.  Raises
    :class:`FragmentationNeeded` when DF is set and it does not fit.
    Offsets are kept multiples of 8 as the wire format requires, so the
    usable payload per fragment is ``(mtu - header) & ~7`` — this is
    exactly why F-PMTUD observes e.g. 996-byte fragments through a
    1000-byte-MTU hop.
    """
    if packet.total_len <= mtu:
        return [packet]
    if packet.ip.dont_fragment:
        raise FragmentationNeeded(packet, mtu)

    header_len = packet.ip.header_len
    max_payload = (mtu - header_len) & ~(FRAGMENT_UNIT - 1)
    if max_payload <= 0:
        raise ValueError(f"MTU {mtu} cannot carry any payload past a {header_len} B header")

    body = _l4_bytes(packet)
    base_offset = packet.ip.fragment_offset  # re-fragmenting a fragment is legal
    last_had_mf = packet.ip.more_fragments

    fragments: List[Packet] = []
    cursor = 0
    while cursor < len(body):
        chunk = body[cursor : cursor + max_payload]
        is_last = cursor + len(chunk) >= len(body)
        header = packet.ip.copy(
            more_fragments=(not is_last) or last_had_mf,
            fragment_offset=base_offset + cursor // FRAGMENT_UNIT,
        )
        header.total_length = header.header_len + len(chunk)
        fragments.append(
            Packet(
                ip=header,
                l4=None,
                payload=chunk,
                timestamp=packet.timestamp,
                meta=dict(packet.meta),
            )
        )
        cursor += len(chunk)
    return fragments


class ReassemblyKey(Tuple[int, int, int, int]):
    """Datagram identity: (src, dst, protocol, identification)."""

    __slots__ = ()

    @classmethod
    def of(cls, header: IPv4Header) -> "ReassemblyKey":
        return cls((header.src, header.dst, header.protocol, header.identification))


@dataclass
class _PartialDatagram:
    """Fragments collected so far for one datagram."""

    first_seen: float
    pieces: Dict[int, bytes] = field(default_factory=dict)  # byte offset -> data
    total_len: Optional[int] = None  # known once the MF=0 fragment arrives
    header: Optional[IPv4Header] = None  # from the offset-0 fragment
    fragment_sizes: List[int] = field(default_factory=list)

    def add(self, packet: Packet) -> None:
        offset = packet.ip.fragment_offset * FRAGMENT_UNIT
        data = packet.payload
        if offset not in self.pieces:
            self.fragment_sizes.append(packet.total_len)
        self.pieces[offset] = data
        if not packet.ip.more_fragments:
            self.total_len = offset + len(data)
        if packet.ip.fragment_offset == 0:
            self.header = packet.ip

    def complete(self) -> bool:
        if self.total_len is None or self.header is None:
            return False
        covered = 0
        for offset in sorted(self.pieces):
            if offset > covered:
                return False  # hole
            covered = max(covered, offset + len(self.pieces[offset]))
        return covered >= self.total_len

    def assemble(self) -> bytes:
        out = bytearray(self.total_len or 0)
        for offset, data in self.pieces.items():
            out[offset : offset + len(data)] = data
        return bytes(out)


class Reassembler:
    """Stateful IPv4 reassembly with timeout-based garbage collection."""

    def __init__(self, timeout: float = DEFAULT_REASSEMBLY_TIMEOUT):
        self.timeout = timeout
        self._partial: Dict[ReassemblyKey, _PartialDatagram] = {}
        #: Fragment sizes of the most recently completed datagram;
        #: consumed by the F-PMTUD daemon.
        self.last_fragment_sizes: List[int] = []

    def __len__(self) -> int:
        return len(self._partial)

    def add(self, packet: Packet, now: float = 0.0) -> Optional[Packet]:
        """Feed one packet; returns the full datagram when complete.

        Unfragmented packets pass straight through (with their own size
        recorded as the single 'fragment').
        """
        self._expire(now)
        if not packet.is_fragment:
            self.last_fragment_sizes = [packet.total_len]
            return packet

        key = ReassemblyKey.of(packet.ip)
        partial = self._partial.get(key)
        if partial is None:
            partial = _PartialDatagram(first_seen=now)
            self._partial[key] = partial
        partial.add(packet)
        if not partial.complete():
            return None

        del self._partial[key]
        self.last_fragment_sizes = sorted(partial.fragment_sizes, reverse=True)
        header = partial.header.copy(more_fragments=False, fragment_offset=0)
        body = partial.assemble()
        header.total_length = header.header_len + len(body)
        wire = header.pack() + body
        return Packet.from_bytes(wire, verify=False)

    def _expire(self, now: float) -> None:
        stale = [
            key
            for key, partial in self._partial.items()
            if now - partial.first_seen > self.timeout
        ]
        for key in stale:
            del self._partial[key]
