"""IPv4 address helpers.

Addresses are carried as plain ``int`` (host-order 32-bit values) through
the library for speed; these helpers convert to and from dotted-quad
strings and validate prefixes.
"""

from __future__ import annotations

import struct

__all__ = ["ip_to_str", "str_to_ip", "ip_to_bytes", "bytes_to_ip", "in_subnet", "make_subnet"]


def str_to_ip(text: str) -> int:
    """Parse a dotted-quad string such as ``"10.0.0.1"`` into an int."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Format a 32-bit int as a dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range: {value:#x}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_to_bytes(value: int) -> bytes:
    """Return the 4-byte network-order encoding of an address."""
    return struct.pack("!I", value)


def bytes_to_ip(data: bytes) -> int:
    """Parse 4 network-order bytes into an address int."""
    if len(data) != 4:
        raise ValueError("IPv4 address must be 4 bytes")
    return struct.unpack("!I", data)[0]


def make_subnet(text: str) -> "tuple[int, int]":
    """Parse ``"10.0.0.0/24"`` into a ``(network, mask)`` pair of ints."""
    addr, _, prefix_text = text.partition("/")
    prefix = int(prefix_text) if prefix_text else 32
    if not 0 <= prefix <= 32:
        raise ValueError(f"bad prefix length in {text!r}")
    mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
    return str_to_ip(addr) & mask, mask


def in_subnet(address: int, network: int, mask: int) -> bool:
    """Return ``True`` if *address* falls inside ``network/mask``."""
    return (address & mask) == (network & mask)
