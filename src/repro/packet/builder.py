"""Convenience constructors for packets.

Addresses may be given as dotted strings or ints.  These builders are
the entry points tests, workloads, and examples use; the hot paths
inside PXGW construct headers directly.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Union

from .address import str_to_ip
from .icmp import ICMPMessage
from .ip import IP_HEADER_LEN, IPProto, IPv4Header
from .packet import Packet
from .tcp import TCP_HEADER_LEN, TCPHeader, TCPOption
from .udp import UDPHeader

__all__ = ["build_tcp", "build_udp", "build_icmp", "next_ip_id", "as_ip"]

_ip_id_counter = itertools.count(1)

AddressLike = Union[int, str]


def as_ip(address: AddressLike) -> int:
    """Coerce a dotted string or int into an address int."""
    if isinstance(address, str):
        return str_to_ip(address)
    return address


def next_ip_id() -> int:
    """A process-wide monotonically increasing IP identification value."""
    return next(_ip_id_counter) & 0xFFFF


def build_tcp(
    src: AddressLike,
    dst: AddressLike,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    seq: int = 0,
    ack: int = 0,
    flags: int = 0,
    window: int = 65535,
    mss: Optional[int] = None,
    tos: int = 0,
    ttl: int = 64,
    dont_fragment: bool = True,
    ip_id: Optional[int] = None,
) -> Packet:
    """Build a TCP packet.  TCP senders set DF by default, as real stacks do."""
    options: List[TCPOption] = []
    if mss is not None:
        options.append(TCPOption.mss(mss))
    tcp = TCPHeader(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        window=window,
        options=options,
    )
    ip = IPv4Header(
        src=as_ip(src),
        dst=as_ip(dst),
        protocol=IPProto.TCP,
        identification=ip_id if ip_id is not None else next_ip_id(),
        dont_fragment=dont_fragment,
        ttl=ttl,
        tos=tos,
    )
    # The IP header is built just above with no options, so its length
    # is the constant; ditto the TCP header when no MSS was requested.
    tcp_len = TCP_HEADER_LEN if not options else tcp.header_len
    ip.total_length = IP_HEADER_LEN + tcp_len + len(payload)
    return Packet(ip=ip, l4=tcp, payload=payload)


def build_udp(
    src: AddressLike,
    dst: AddressLike,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    tos: int = 0,
    ttl: int = 64,
    dont_fragment: bool = False,
    ip_id: Optional[int] = None,
) -> Packet:
    """Build a UDP packet.  DF defaults off so routers may fragment it."""
    udp = UDPHeader(src_port=src_port, dst_port=dst_port, length=8 + len(payload))
    ip = IPv4Header(
        src=as_ip(src),
        dst=as_ip(dst),
        protocol=IPProto.UDP,
        identification=ip_id if ip_id is not None else next_ip_id(),
        dont_fragment=dont_fragment,
        ttl=ttl,
        tos=tos,
    )
    ip.total_length = IP_HEADER_LEN + 8 + len(payload)
    return Packet(ip=ip, l4=udp, payload=payload)


def build_icmp(
    src: AddressLike,
    dst: AddressLike,
    message: ICMPMessage,
    ttl: int = 64,
) -> Packet:
    """Wrap an ICMP message in an IP packet."""
    ip = IPv4Header(
        src=as_ip(src),
        dst=as_ip(dst),
        protocol=IPProto.ICMP,
        identification=next_ip_id(),
        ttl=ttl,
    )
    ip.total_length = ip.header_len + 8 + len(message.payload)
    return Packet(ip=ip, l4=message)
