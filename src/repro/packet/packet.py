"""The central :class:`Packet` object passed through the whole library.

A packet holds a parsed IPv4 header, a parsed L4 header, and the L4
payload bytes.  ``to_bytes``/``from_bytes`` give byte-accurate wire
round-trips; helpers expose the lengths the cycle model and the MTU
logic depend on.

Representation notes:

* For TCP and UDP, ``payload`` holds the transport payload and ``l4``
  the parsed header.
* For ICMP, the message data lives inside :class:`ICMPMessage` itself
  and ``payload`` stays empty.
* For IP fragments with a nonzero offset (and for all fragments after
  :func:`repro.packet.fragment.fragment_packet`), ``l4`` is ``None``
  and ``payload`` carries that fragment's slice of the original L4
  datagram.
"""

from __future__ import annotations

from typing import Optional, Union

from .ethernet import wire_bytes_for_payload
from .flow import FlowKey
from .icmp import ICMPMessage
from .ip import IPProto, IPv4Header
from .tcp import TCPHeader
from .udp import UDPHeader

__all__ = ["Packet", "L4Header"]

L4Header = Union[TCPHeader, UDPHeader, ICMPMessage]

#: Sentinel marking a flow key as not-yet-computed (None is a valid key).
_UNSET = object()


class Packet:
    """One IPv4 packet moving through the simulated network.

    ``__slots__`` keeps the object small and attribute access fast —
    every link, router, and gateway stat touches a handful of fields
    per packet, which makes this the hottest object in the library.
    """

    __slots__ = ("ip", "l4", "payload", "timestamp", "meta", "_fkey", "_l4_shared")

    def __init__(
        self,
        ip: IPv4Header,
        l4: Optional[L4Header] = None,
        payload: bytes = b"",
        timestamp: float = 0.0,
        meta: Optional[dict] = None,
    ):
        self.ip = ip
        self.l4 = l4
        self.payload = payload
        #: Simulation timestamp of creation/last transmission (seconds).
        self.timestamp = timestamp
        #: Free-form annotations (e.g. ``{"hairpin": True}``); kept sparse.
        self.meta = {} if meta is None else meta
        #: Cached 5-tuple (lazily computed; survives copy/fork because
        #: no code path rewrites addresses or ports in place).
        self._fkey = _UNSET
        #: True while ``l4`` may be aliased by another packet (see
        #: :meth:`fork`); in-place header mutation must go through
        #: :meth:`own_l4` first.
        self._l4_shared = False

    # ------------------------------------------------------------------
    # Length accounting
    # ------------------------------------------------------------------
    @property
    def l4_header_len(self) -> int:
        """Length of the serialized L4 header (0 for bare fragments)."""
        l4 = self.l4
        if l4 is None:
            return 0
        if isinstance(l4, TCPHeader):
            return l4.header_len
        return 8  # UDP or ICMP header

    @property
    def l4_payload_len(self) -> int:
        """Bytes of application payload carried."""
        l4 = self.l4
        if isinstance(l4, ICMPMessage):
            return len(l4.payload)
        return len(self.payload)

    @property
    def total_len(self) -> int:
        """The IP total length this packet serializes to."""
        l4 = self.l4
        # 20 + options is ``ip.header_len`` inlined: this property runs
        # several times per link traversal, so it skips the nested
        # property dispatch.  The TCP no-options case (every data
        # segment and plain ACK) additionally skips the header_len
        # property, which would re-derive the constant.
        header = 20 + len(self.ip.options)
        if isinstance(l4, TCPHeader):
            if not l4.options:
                return header + 20 + len(self.payload)
            return header + l4.header_len + len(self.payload)
        if l4 is None:
            return header + len(self.payload)
        if isinstance(l4, UDPHeader):
            return header + 8 + len(self.payload)
        return header + 8 + len(l4.payload)

    @property
    def wire_len(self) -> int:
        """Bytes this packet occupies on an Ethernet wire (with framing)."""
        return wire_bytes_for_payload(self.total_len)

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    @property
    def is_tcp(self) -> bool:
        return self.ip.protocol == IPProto.TCP

    @property
    def is_udp(self) -> bool:
        return self.ip.protocol == IPProto.UDP

    @property
    def is_icmp(self) -> bool:
        return self.ip.protocol == IPProto.ICMP

    @property
    def is_fragment(self) -> bool:
        return self.ip.is_fragment

    @property
    def tcp(self) -> TCPHeader:
        """The TCP header; raises if this is not a parsed TCP packet."""
        if not isinstance(self.l4, TCPHeader):
            raise TypeError("packet has no parsed TCP header")
        return self.l4

    @property
    def udp(self) -> UDPHeader:
        """The UDP header; raises if this is not a parsed UDP packet."""
        if not isinstance(self.l4, UDPHeader):
            raise TypeError("packet has no parsed UDP header")
        return self.l4

    @property
    def icmp(self) -> ICMPMessage:
        """The ICMP message; raises if this is not an ICMP packet."""
        if not isinstance(self.l4, ICMPMessage):
            raise TypeError("packet has no parsed ICMP message")
        return self.l4

    def flow_key(self) -> Optional[FlowKey]:
        """The transport 5-tuple, or None when ports are unavailable.

        Computed once and cached: the classifier, RSS dispatch, flow
        table, and merge engines each ask for the key of the same
        packet, and nothing in the library rewrites the addressing
        fields of a live packet.
        """
        key = self._fkey
        if key is _UNSET:
            l4 = self.l4
            if isinstance(l4, (TCPHeader, UDPHeader)):
                key = FlowKey(
                    self.ip.protocol,
                    self.ip.src,
                    l4.src_port,
                    self.ip.dst,
                    l4.dst_port,
                )
            else:
                key = None
            self._fkey = key
        return key

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to wire bytes (IP header onward), with checksums."""
        if isinstance(self.l4, TCPHeader):
            body = self.l4.pack(self.payload, self.ip.src, self.ip.dst) + self.payload
        elif isinstance(self.l4, UDPHeader):
            body = self.l4.pack(self.payload, self.ip.src, self.ip.dst) + self.payload
        elif isinstance(self.l4, ICMPMessage):
            body = self.l4.pack()
        else:
            body = self.payload
        return self.ip.pack(payload_len=len(body)) + body

    @classmethod
    def from_bytes(cls, data: bytes, verify: bool = True) -> "Packet":
        """Parse wire bytes into a Packet.

        Fragments with nonzero offset keep their bytes unparsed in
        ``payload``; first fragments are parsed normally so flow keys
        remain available to middleboxes.
        """
        ip = IPv4Header.unpack(data, verify=verify)
        body = bytes(data[ip.header_len : ip.total_length])
        if ip.fragment_offset > 0:
            return cls(ip=ip, l4=None, payload=body)
        if ip.protocol == IPProto.TCP and not ip.more_fragments:
            tcp, hdr_len = TCPHeader.unpack(body)
            return cls(ip=ip, l4=tcp, payload=body[hdr_len:])
        if ip.protocol == IPProto.UDP and not ip.more_fragments:
            udp = UDPHeader.unpack(body)
            return cls(ip=ip, l4=udp, payload=body[8:])
        if ip.protocol == IPProto.ICMP and not ip.more_fragments:
            return cls(ip=ip, l4=ICMPMessage.unpack(body))
        # First fragment of a fragmented datagram: leave unparsed.
        return cls(ip=ip, l4=None, payload=body)

    @staticmethod
    def _copy_l4(l4: Optional[L4Header]) -> Optional[L4Header]:
        if isinstance(l4, TCPHeader):
            return l4.copy()
        if isinstance(l4, UDPHeader):
            return UDPHeader(l4.src_port, l4.dst_port, l4.length, l4.checksum)
        if isinstance(l4, ICMPMessage):
            return ICMPMessage(l4.icmp_type, l4.code, l4.rest, l4.payload)
        return None

    def copy(self) -> "Packet":
        """Return a structural copy safe to mutate independently."""
        new = Packet.__new__(Packet)
        new.ip = self.ip.copy()
        new.l4 = self._copy_l4(self.l4)
        new.payload = self.payload
        new.timestamp = self.timestamp
        new.meta = dict(self.meta)
        new._fkey = self._fkey
        new._l4_shared = False
        return new

    def fork(self) -> "Packet":
        """A cheap forwarding copy: private IP header, shared L4/payload.

        Forwarding mutates only the IP header (TTL, and
        ``total_length`` during serialization), so the per-hop copy a
        router makes need not duplicate the L4 header or its options.
        The L4 header becomes copy-on-write for *both* packets: any
        later in-place mutation must go through :meth:`own_l4`, which
        materializes a private header.  ``payload`` is immutable bytes
        and always safely shared.
        """
        new = Packet.__new__(Packet)
        new.ip = self.ip.copy()
        new.l4 = self.l4
        new.payload = self.payload
        new.timestamp = self.timestamp
        new.meta = dict(self.meta)
        new._fkey = self._fkey
        new._l4_shared = self._l4_shared = self.l4 is not None
        return new

    def own_l4(self) -> Optional[L4Header]:
        """The L4 header, made private first if it is shared (CoW).

        Call before mutating ``l4`` in place on a packet that may have
        been :meth:`fork`-ed (e.g. the MSS clamp rewriting a SYN's
        options).  The cached flow key survives: ports and addresses
        are preserved by the materialization.
        """
        l4 = self.l4
        if l4 is not None and self._l4_shared:
            l4 = self._copy_l4(l4)
            self.l4 = l4
            self._l4_shared = False
        return l4

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = {IPProto.TCP: "TCP", IPProto.UDP: "UDP", IPProto.ICMP: "ICMP"}.get(
            self.ip.protocol, str(self.ip.protocol)
        )
        frag = ""
        if self.is_fragment:
            frag = f" frag(off={self.ip.fragment_offset * 8}, mf={self.ip.more_fragments})"
        return f"<Packet {proto} len={self.total_len}{frag}>"
