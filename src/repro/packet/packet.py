"""The central :class:`Packet` object passed through the whole library.

A packet holds a parsed IPv4 header, a parsed L4 header, and the L4
payload bytes.  ``to_bytes``/``from_bytes`` give byte-accurate wire
round-trips; helpers expose the lengths the cycle model and the MTU
logic depend on.

Representation notes:

* For TCP and UDP, ``payload`` holds the transport payload and ``l4``
  the parsed header.
* For ICMP, the message data lives inside :class:`ICMPMessage` itself
  and ``payload`` stays empty.
* For IP fragments with a nonzero offset (and for all fragments after
  :func:`repro.packet.fragment.fragment_packet`), ``l4`` is ``None``
  and ``payload`` carries that fragment's slice of the original L4
  datagram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .ethernet import wire_bytes_for_payload
from .flow import FlowKey
from .icmp import ICMPMessage
from .ip import IPProto, IPv4Header
from .tcp import TCPHeader
from .udp import UDPHeader

__all__ = ["Packet", "L4Header"]

L4Header = Union[TCPHeader, UDPHeader, ICMPMessage]


@dataclass
class Packet:
    """One IPv4 packet moving through the simulated network."""

    ip: IPv4Header
    l4: Optional[L4Header] = None
    payload: bytes = b""
    #: Simulation timestamp of creation/last transmission (seconds).
    timestamp: float = 0.0
    #: Free-form annotations (e.g. ``{"hairpin": True}``); kept sparse.
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Length accounting
    # ------------------------------------------------------------------
    @property
    def l4_header_len(self) -> int:
        """Length of the serialized L4 header (0 for bare fragments)."""
        if self.l4 is None:
            return 0
        if isinstance(self.l4, TCPHeader):
            return self.l4.header_len
        if isinstance(self.l4, UDPHeader):
            return 8
        return 8  # ICMP header

    @property
    def l4_payload_len(self) -> int:
        """Bytes of application payload carried."""
        if isinstance(self.l4, ICMPMessage):
            return len(self.l4.payload)
        return len(self.payload)

    @property
    def total_len(self) -> int:
        """The IP total length this packet serializes to."""
        if isinstance(self.l4, ICMPMessage):
            body = 8 + len(self.l4.payload)
        else:
            body = self.l4_header_len + len(self.payload)
        return self.ip.header_len + body

    @property
    def wire_len(self) -> int:
        """Bytes this packet occupies on an Ethernet wire (with framing)."""
        return wire_bytes_for_payload(self.total_len)

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    @property
    def is_tcp(self) -> bool:
        return self.ip.protocol == IPProto.TCP

    @property
    def is_udp(self) -> bool:
        return self.ip.protocol == IPProto.UDP

    @property
    def is_icmp(self) -> bool:
        return self.ip.protocol == IPProto.ICMP

    @property
    def is_fragment(self) -> bool:
        return self.ip.is_fragment

    @property
    def tcp(self) -> TCPHeader:
        """The TCP header; raises if this is not a parsed TCP packet."""
        if not isinstance(self.l4, TCPHeader):
            raise TypeError("packet has no parsed TCP header")
        return self.l4

    @property
    def udp(self) -> UDPHeader:
        """The UDP header; raises if this is not a parsed UDP packet."""
        if not isinstance(self.l4, UDPHeader):
            raise TypeError("packet has no parsed UDP header")
        return self.l4

    @property
    def icmp(self) -> ICMPMessage:
        """The ICMP message; raises if this is not an ICMP packet."""
        if not isinstance(self.l4, ICMPMessage):
            raise TypeError("packet has no parsed ICMP message")
        return self.l4

    def flow_key(self) -> Optional[FlowKey]:
        """The transport 5-tuple, or None when ports are unavailable."""
        if isinstance(self.l4, TCPHeader) or isinstance(self.l4, UDPHeader):
            return FlowKey(
                self.ip.protocol,
                self.ip.src,
                self.l4.src_port,
                self.ip.dst,
                self.l4.dst_port,
            )
        return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to wire bytes (IP header onward), with checksums."""
        if isinstance(self.l4, TCPHeader):
            body = self.l4.pack(self.payload, self.ip.src, self.ip.dst) + self.payload
        elif isinstance(self.l4, UDPHeader):
            body = self.l4.pack(self.payload, self.ip.src, self.ip.dst) + self.payload
        elif isinstance(self.l4, ICMPMessage):
            body = self.l4.pack()
        else:
            body = self.payload
        return self.ip.pack(payload_len=len(body)) + body

    @classmethod
    def from_bytes(cls, data: bytes, verify: bool = True) -> "Packet":
        """Parse wire bytes into a Packet.

        Fragments with nonzero offset keep their bytes unparsed in
        ``payload``; first fragments are parsed normally so flow keys
        remain available to middleboxes.
        """
        ip = IPv4Header.unpack(data, verify=verify)
        body = bytes(data[ip.header_len : ip.total_length])
        if ip.fragment_offset > 0:
            return cls(ip=ip, l4=None, payload=body)
        if ip.protocol == IPProto.TCP and not ip.more_fragments:
            tcp, hdr_len = TCPHeader.unpack(body)
            return cls(ip=ip, l4=tcp, payload=body[hdr_len:])
        if ip.protocol == IPProto.UDP and not ip.more_fragments:
            udp = UDPHeader.unpack(body)
            return cls(ip=ip, l4=udp, payload=body[8:])
        if ip.protocol == IPProto.ICMP and not ip.more_fragments:
            return cls(ip=ip, l4=ICMPMessage.unpack(body))
        # First fragment of a fragmented datagram: leave unparsed.
        return cls(ip=ip, l4=None, payload=body)

    def copy(self) -> "Packet":
        """Return a structural copy safe to mutate independently."""
        l4: Optional[L4Header]
        if isinstance(self.l4, TCPHeader):
            l4 = self.l4.copy()
        elif isinstance(self.l4, UDPHeader):
            l4 = UDPHeader(self.l4.src_port, self.l4.dst_port, self.l4.length, self.l4.checksum)
        elif isinstance(self.l4, ICMPMessage):
            l4 = ICMPMessage(self.l4.icmp_type, self.l4.code, self.l4.rest, self.l4.payload)
        else:
            l4 = None
        return Packet(
            ip=self.ip.copy(),
            l4=l4,
            payload=self.payload,
            timestamp=self.timestamp,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = {IPProto.TCP: "TCP", IPProto.UDP: "UDP", IPProto.ICMP: "ICMP"}.get(
            self.ip.protocol, str(self.ip.protocol)
        )
        frag = ""
        if self.is_fragment:
            frag = f" frag(off={self.ip.fragment_offset * 8}, mf={self.ip.more_fragments})"
        return f"<Packet {proto} len={self.total_len}{frag}>"
