"""netem-style link impairment: delay, jitter, loss, burst loss, reordering.

The paper's WAN experiments (§5.2, Figure 1d) are built on Linux
``tc-netem`` with 10 ms end-to-end delay and a 0.01 % loss rate; this
module is the simulation equivalent and attaches to a :class:`Link`.

Beyond the paper's setup, two real-world impairments matter for an
MTU-translating gateway and are available for robustness experiments:

* **reordering** (netem's ``reorder``): a reordered packet breaks the
  contiguity the merge engines depend on, forcing a flush;
* **burst loss** via a Gilbert–Elliott two-state channel: WAN losses
  cluster, which stresses loss recovery far more than i.i.d. drops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Netem", "GilbertElliott"]


@dataclass
class GilbertElliott:
    """A two-state (Good/Bad) burst-loss channel.

    ``p_good_to_bad``/``p_bad_to_good`` are per-packet transition
    probabilities; ``loss_good``/``loss_bad`` are the per-state drop
    rates.  The stationary loss rate is
    ``loss_good * πG + loss_bad * πB``.
    """

    p_good_to_bad: float = 0.0005
    p_bad_to_good: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def __post_init__(self):
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        self._bad = False

    def drop(self, rng: random.Random) -> bool:
        """Advance the channel one packet; True to drop it."""
        if self._bad:
            if rng.random() < self.p_bad_to_good:
                self._bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._bad = True
        rate = self.loss_bad if self._bad else self.loss_good
        return bool(rate) and rng.random() < rate

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run average drop probability."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.loss_good
        pi_bad = self.p_good_to_bad / denom
        return self.loss_good * (1 - pi_bad) + self.loss_bad * pi_bad


@dataclass
class Netem:
    """Impairment parameters applied per packet.

    * ``delay``: extra one-way latency in seconds.
    * ``jitter``: uniform ±jitter added to the delay.
    * ``loss``: independent drop probability in [0, 1].
    * ``reorder``: probability a packet is held back by
      ``reorder_extra`` seconds, letting successors overtake it.
    * ``burst_loss``: an optional Gilbert–Elliott channel applied in
      addition to the independent loss.
    """

    delay: float = 0.0
    jitter: float = 0.0
    loss: float = 0.0
    reorder: float = 0.0
    reorder_extra: float = 0.001
    burst_loss: Optional[GilbertElliott] = None
    #: When set, the instance owns a ``random.Random(seed)`` and uses it
    #: for every stochastic decision, regardless of the rng the caller
    #: passes to :meth:`impair`.  This is what makes chaos runs
    #: replayable from a single seed: the impairment sequence depends
    #: only on the seed and the (deterministic) packet arrival order.
    seed: Optional[int] = None

    def __post_init__(self):
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be a probability, got {self.loss}")
        if not 0.0 <= self.reorder <= 1.0:
            raise ValueError(f"reorder must be a probability, got {self.reorder}")
        if self.delay < 0 or self.jitter < 0 or self.reorder_extra < 0:
            raise ValueError("delays must be non-negative")
        self._rng = random.Random(self.seed) if self.seed is not None else None
        self._default_rng: Optional[random.Random] = None

    def impair(self, rng: Optional[random.Random] = None) -> "Tuple[bool, float]":
        """Return ``(drop, extra_delay)`` for one packet.

        Decisions come from this instance's own seeded rng when a
        ``seed`` was given, else from *rng*, else from a default
        ``random.Random(0)`` created on first use — the module-global
        ``random`` is never consulted, so same-seed runs replay
        bit-identically.
        """
        if self._rng is not None:
            rng = self._rng
        elif rng is None:
            if self._default_rng is None:
                self._default_rng = random.Random(0)
            rng = self._default_rng
        if self.loss and rng.random() < self.loss:
            return True, 0.0
        if self.burst_loss is not None and self.burst_loss.drop(rng):
            return True, 0.0
        extra = self.delay
        if self.jitter:
            extra += rng.uniform(-self.jitter, self.jitter)
        if self.reorder and rng.random() < self.reorder:
            extra += self.reorder_extra
        return False, max(0.0, extra)

    @classmethod
    def wan(cls, one_way_delay: float = 0.005, loss: float = 0.0001) -> "Netem":
        """The paper's WAN profile: 10 ms E2E (5 ms per direction), 0.01 % loss."""
        return cls(delay=one_way_delay, loss=loss)

    @classmethod
    def lossy_wan_bursty(cls, one_way_delay: float = 0.005) -> "Netem":
        """A WAN with clustered losses (robustness experiments)."""
        return cls(delay=one_way_delay, burst_loss=GilbertElliott())
