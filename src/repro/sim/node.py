"""Node and interface abstractions the network layer builds on."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator
    from .link import Link

__all__ = ["Interface", "Node"]


class Interface:
    """One attachment point of a node: an IP address plus its link.

    The interface MTU is what the *node* will emit; the attached link
    additionally enforces its own MTU (the two are usually equal, but a
    misconfigured pair is a useful failure-injection case).
    """

    def __init__(self, node: "Node", ip: int, mtu: int = 1500, name: str = ""):
        self.node = node
        self.ip = ip
        self.mtu = mtu
        self.name = name or f"{node.name}.if{len(node.interfaces)}"
        self.link: Optional["Link"] = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0

    def send(self, packet: Packet, size: Optional[int] = None) -> bool:
        """Transmit *packet* onto the attached link.

        Returns False when there is no link or the link queue dropped
        the packet.  *size* is the packet's ``total_len`` when the
        caller already computed it (e.g. a router's MTU check).
        """
        if self.link is None:
            return False
        if size is None:
            size = packet.total_len
        self.tx_packets += 1
        self.tx_bytes += size
        return self.link.transmit(packet, size)

    def send_burst(self, packets: List[Packet]) -> int:
        """Transmit a burst onto the attached link; returns count accepted.

        The link-level burst path hoists the per-call overhead of
        :meth:`send`; interface counters still account every packet.
        """
        link = self.link
        if link is None:
            return 0
        self.tx_packets += len(packets)
        self.tx_bytes += sum(packet.total_len for packet in packets)
        return link.transmit_burst(packets)

    def deliver(self, packet: Packet, size: Optional[int] = None) -> None:
        """Called by the link when a packet arrives here.

        *size* is the packet's ``total_len`` when the link already
        computed it (saves re-deriving it for byte accounting).
        """
        self.rx_packets += 1
        self.rx_bytes += packet.total_len if size is None else size
        self.node.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from ..packet import ip_to_str

        return f"<Interface {self.name} {ip_to_str(self.ip)} mtu={self.mtu}>"


class Node:
    """Base class for hosts, routers, and gateways."""

    def __init__(self, sim: "Simulator", name: str):
        self.sim = sim
        self.name = name
        self.interfaces: List[Interface] = []
        # Address → interface map: ``owns_address`` runs once per
        # received packet on routers and gateways, so the linear scan
        # over interfaces was on the per-packet path.  Interface IPs
        # are fixed at creation, so the map never goes stale.
        self._if_by_ip: dict = {}

    def add_interface(self, ip: int, mtu: int = 1500, name: str = "") -> Interface:
        """Create and register a new interface."""
        interface = Interface(self, ip, mtu=mtu, name=name)
        self.interfaces.append(interface)
        # First interface wins for duplicate addresses, matching the
        # original in-order scan.
        self._if_by_ip.setdefault(ip, interface)
        return interface

    def interface_for(self, ip: int) -> Optional[Interface]:
        """The interface owning address *ip*, if any."""
        return self._if_by_ip.get(ip)

    def owns_address(self, ip: int) -> bool:
        """True if any interface has address *ip*."""
        return ip in self._if_by_ip

    def receive(self, packet: Packet, interface: Interface) -> None:
        """Handle an arriving packet; subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
