"""Lightweight packet tracing for debugging and assertions in tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..packet import Packet

__all__ = ["TraceEntry", "PacketTrace"]


@dataclass
class TraceEntry:
    """One observation: a packet seen at a point in the network."""

    time: float
    point: str
    event: str  # "tx", "rx", "drop", ...
    length: int
    summary: str


class PacketTrace:
    """An append-only log of packet observations.

    Nodes call :meth:`record`; tests filter with :meth:`matching`.
    Disabled traces are near-free so instrumentation can stay in place.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self.entries: List[TraceEntry] = []

    def record(self, time: float, point: str, event: str, packet: Packet) -> None:
        """Log one observation (no-op when disabled or full)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self.entries) >= self.capacity:
            return
        self.entries.append(
            TraceEntry(
                time=time,
                point=point,
                event=event,
                length=packet.total_len,
                summary=repr(packet),
            )
        )

    def matching(self, predicate: Callable[[TraceEntry], bool]) -> List[TraceEntry]:
        """All entries satisfying *predicate*."""
        return [entry for entry in self.entries if predicate(entry)]

    def count(self, event: Optional[str] = None, point: Optional[str] = None) -> int:
        """Count entries filtered by event and/or point."""
        return sum(
            1
            for entry in self.entries
            if (event is None or entry.event == event)
            and (point is None or entry.point == point)
        )

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.entries.clear()
