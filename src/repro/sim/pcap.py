"""pcap export: write simulated traffic into real capture files.

Because every :class:`repro.packet.Packet` serializes to byte-accurate
wire format, simulated traffic can be written as standard pcap
(LINKTYPE_RAW, i.e. bare IPv4) and opened in Wireshark/tcpdump — handy
for debugging merge behaviour or inspecting caravan framing.

Usage::

    writer = PcapWriter("capture.pcap")
    tap = InterfaceTap(host.interfaces[0], writer)   # both directions
    topo.run(until=1.0)
    writer.close()
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Optional, Union

from ..packet import Packet
from .node import Interface

__all__ = ["PcapWriter", "InterfaceTap"]

_MAGIC = 0xA1B2C3D4
_VERSION = (2, 4)
#: LINKTYPE_RAW: packets begin with the IPv4 header.
_LINKTYPE_RAW = 101
_SNAPLEN = 65535


class PcapWriter:
    """Writes packets into a classic pcap file."""

    def __init__(self, target: "Union[str, BinaryIO]"):
        if isinstance(target, str):
            self._file: BinaryIO = open(target, "wb")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.packets_written = 0
        self._file.write(
            struct.pack(
                "!IHHiIII",
                _MAGIC,
                _VERSION[0],
                _VERSION[1],
                0,  # GMT offset
                0,  # sigfigs
                _SNAPLEN,
                _LINKTYPE_RAW,
            )
        )

    def write(self, packet: Packet, timestamp: Optional[float] = None) -> None:
        """Append one packet at *timestamp* (defaults to its own stamp)."""
        when = packet.timestamp if timestamp is None else timestamp
        seconds = int(when)
        microseconds = int(round((when - seconds) * 1e6))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        wire = packet.to_bytes()
        captured = wire[:_SNAPLEN]
        self._file.write(
            struct.pack("!IIII", seconds, microseconds, len(captured), len(wire))
        )
        self._file.write(captured)
        self.packets_written += 1

    def close(self) -> None:
        """Flush and close (if this writer opened the file)."""
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InterfaceTap:
    """Captures everything an interface sends and receives.

    Wraps the interface's ``send``/``deliver`` methods; call
    :meth:`detach` to restore them.
    """

    def __init__(self, interface: Interface, writer: PcapWriter,
                 direction: str = "both"):
        if direction not in ("both", "tx", "rx"):
            raise ValueError(f"bad direction {direction!r}")
        self.interface = interface
        self.writer = writer
        self.direction = direction
        self._orig_send = interface.send
        self._orig_deliver = interface.deliver
        if direction in ("both", "tx"):
            interface.send = self._tap_send  # type: ignore[method-assign]
        if direction in ("both", "rx"):
            interface.deliver = self._tap_deliver  # type: ignore[method-assign]

    def _tap_send(self, packet: Packet, size=None) -> bool:
        self.writer.write(packet, timestamp=self.interface.node.sim.now)
        return self._orig_send(packet, size)

    def _tap_deliver(self, packet: Packet, size=None) -> None:
        self.writer.write(packet, timestamp=self.interface.node.sim.now)
        self._orig_deliver(packet, size)

    def detach(self) -> None:
        """Restore the interface's original methods."""
        self.interface.send = self._orig_send  # type: ignore[method-assign]
        self.interface.deliver = self._orig_deliver  # type: ignore[method-assign]
