"""Point-to-point links with bandwidth, propagation delay, queueing, and MTU.

A :class:`Link` is unidirectional; :func:`connect` wires two interfaces
with a link in each direction.  The transmission model is the standard
store-and-forward pipeline: packets serialize one at a time at line
rate (including Ethernet framing overhead), wait in a byte-bounded FIFO
when the line is busy, then propagate.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..packet import Packet
from ..packet.ethernet import wire_bytes_for_payload
from .engine import Simulator
from .netem import Netem
from .node import Interface

__all__ = ["Link", "connect", "LinkStats"]

#: A tap observes packets at a link: ``tap(event, packet, now)`` where
#: event is one of "tx", "rx", "drop-mtu", "drop-queue", "drop-loss",
#: "drop-fault".  Taps must not mutate the packet.
LinkTap = Callable[[str, Packet, float], None]

#: Default queue capacity in bytes (≈ 256 full-size 9 KB packets).
DEFAULT_QUEUE_BYTES = 2_304_000


class LinkStats:
    """Counters a link keeps for analysis."""

    def __init__(self):
        self.transmitted = 0
        self.delivered = 0
        self.dropped_queue = 0
        self.dropped_loss = 0
        self.dropped_mtu = 0
        self.dropped_fault = 0
        self.bytes_delivered = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<LinkStats tx={self.transmitted} rx={self.delivered} "
            f"qdrop={self.dropped_queue} loss={self.dropped_loss} mtu={self.dropped_mtu}>"
        )


class Link:
    """A unidirectional channel between two interfaces."""

    def __init__(
        self,
        sim: Simulator,
        src: Interface,
        dst: Interface,
        bandwidth_bps: float = 10e9,
        delay: float = 1e-6,
        mtu: int = 1500,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        netem: Optional[Netem] = None,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.mtu = mtu
        self.queue_bytes = queue_bytes
        self.netem = netem
        self.rng = rng or random.Random(0)
        self.stats = LinkStats()
        #: Observers of every packet event on this link (chaos oracle,
        #: pcap capture); see :data:`LinkTap`.
        self.taps: List[LinkTap] = []
        #: Optional deterministic fault injector.  Must provide
        #: ``apply(packet, now) -> List[Tuple[Packet, float]]``: the
        #: copies to deliver with per-copy extra delay (empty = drop).
        self.injector = None
        self._queue: Deque[Tuple[Packet, int]] = deque()
        self._queued_bytes = 0
        self._busy = False
        #: Analytic fast-path state (clean links only): the time the
        #: line finishes serializing everything accepted so far, and a
        #: ledger of ``(serialize_start, size)`` for packets that are
        #: still *waiting* (start > now).  Waiting bytes stay counted in
        #: ``_queued_bytes`` so the overflow check and ``queue_depth``
        #: match the store-and-forward model exactly; entries are
        #: drained lazily once their serialize slot begins.
        self._line_free_at = 0.0
        self._inflight: Deque[Tuple[float, int]] = deque()

    def add_tap(self, tap: LinkTap) -> None:
        """Attach an observer called for every packet event."""
        self.taps.append(tap)

    def _notify(self, event: str, packet: Packet) -> None:
        if self.taps:
            now = self.sim.now
            for tap in self.taps:
                tap(event, packet, now)

    def transmit(self, packet: Packet, size: Optional[int] = None) -> bool:
        """Enqueue *packet* for transmission; False if dropped.

        Packets larger than the link MTU are dropped here — a link
        cannot carry them; it is the upstream node's job to fragment or
        refuse.  This is exactly the silent-drop behaviour that breaks
        classical PMTUD behind ICMP blackholes.

        *size* is the packet's ``total_len``, passed in when the caller
        already computed it; the link threads it through the queue and
        the serialize/deliver events so the length is derived exactly
        once per traversal.
        """
        if size is None:
            size = packet.total_len
        if size > self.mtu:
            self.stats.dropped_mtu += 1
            self._notify("drop-mtu", packet)
            return False
        sim = self.sim
        now = sim.now
        inflight = self._inflight
        if inflight:
            # Retire analytic entries whose serialize slot has begun;
            # they no longer occupy queue space.
            queued = self._queued_bytes
            while inflight and inflight[0][0] <= now:
                queued -= inflight.popleft()[1]
            self._queued_bytes = queued
        if self._queued_bytes + size > self.queue_bytes:
            self.stats.dropped_queue += 1
            self._notify("drop-queue", packet)
            return False
        if self.taps or self.injector is not None or self.netem is not None or self._busy:
            # Observed or impaired link (or the scalar machinery is mid
            # service): run the event-per-stage store-and-forward model,
            # which gives taps and fault hooks their exact firing points.
            if self.taps:
                self._notify("tx", packet)
            if not self._busy:
                if self._line_free_at > now:
                    # Analytic packets are still serializing (a tap or
                    # fault was attached mid-flight): hold this packet
                    # until the line frees, then resume scalar service.
                    self._busy = True
                    self._queue.append((packet, size))
                    self._queued_bytes += size
                    sim.schedule_fast(self._line_free_at - now, self._start_next)
                    return True
                # Idle line ⇒ the queue is empty: put the packet straight
                # on the wire instead of round-tripping it through the deque.
                self._busy = True
                serialization = wire_bytes_for_payload(size) * 8 / self.bandwidth_bps
                sim.schedule_fast(serialization, self._serialized, packet, size)
                return True
            self._queue.append((packet, size))
            self._queued_bytes += size
            return True
        # Clean unobserved link: the full pipeline is analytic — one
        # delivery event per packet instead of serialize/dequeue/deliver.
        start = self._line_free_at
        if start <= now:
            start = now
        else:
            inflight.append((start, size))
            self._queued_bytes += size
        end = start + wire_bytes_for_payload(size) * 8 / self.bandwidth_bps
        self._line_free_at = end
        sim.schedule_fast(end - now + self.delay, self._deliver_analytic, packet, size)
        return True

    def transmit_burst(self, packets: "List[Packet]") -> int:
        """Enqueue a burst of packets; returns how many were accepted.

        Per-packet semantics are exactly :meth:`transmit` in order, but
        on a clean unobserved link the analytic fast path runs with the
        per-call lookups (sim clock, bandwidth, queue check state)
        hoisted out of the loop — the batch-dequeue boundary hands the
        link a whole poll burst in one call.
        """
        if self.taps or self.injector is not None or self.netem is not None or self._busy:
            accepted = 0
            transmit = self.transmit
            for packet in packets:
                if transmit(packet):
                    accepted += 1
            return accepted
        sim = self.sim
        now = sim.now
        schedule = sim.schedule_fast
        stats = self.stats
        mtu = self.mtu
        delay = self.delay
        bandwidth_bps = self.bandwidth_bps
        inflight = self._inflight
        queued = self._queued_bytes
        if inflight:
            while inflight and inflight[0][0] <= now:
                queued -= inflight.popleft()[1]
        queue_limit = self.queue_bytes
        line_free_at = self._line_free_at
        accepted = 0
        for packet in packets:
            size = packet.total_len
            if size > mtu:
                stats.dropped_mtu += 1
                self._notify("drop-mtu", packet)
                continue
            if queued + size > queue_limit:
                stats.dropped_queue += 1
                self._notify("drop-queue", packet)
                continue
            start = line_free_at
            if start <= now:
                start = now
            else:
                inflight.append((start, size))
                queued += size
            # Same expression (and rounding) as the scalar path: the
            # delivery timestamps must be bit-identical either way.
            end = start + wire_bytes_for_payload(size) * 8 / bandwidth_bps
            line_free_at = end
            schedule(end - now + delay, self._deliver_analytic, packet, size)
            accepted += 1
        self._queued_bytes = queued
        self._line_free_at = line_free_at
        return accepted

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet, size = self._queue.popleft()
        self._queued_bytes -= size
        serialization = wire_bytes_for_payload(size) * 8 / self.bandwidth_bps
        self.sim.schedule_fast(serialization, self._serialized, packet, size)

    def _serialized(self, packet: Packet, size: int) -> None:
        self.stats.transmitted += 1
        if self.injector is None and self.netem is None:
            # Clean link: no fault copies, no impairment — deliver the
            # original after the propagation delay.
            self.sim.schedule_fast(self.delay, self._deliver, packet, size)
            if self._queue:
                self._start_next()
            else:
                self._busy = False
            return
        deliveries: List[Tuple[Packet, float]] = [(packet, 0.0)]
        if self.injector is not None:
            deliveries = self.injector.apply(packet, self.sim.now)
            if not deliveries:
                self.stats.dropped_fault += 1
                self._notify("drop-fault", packet)
        for copy, fault_delay in deliveries:
            extra_delay = 0.0
            drop = False
            if self.netem is not None:
                drop, extra_delay = self.netem.impair(self.rng)
            if drop:
                self.stats.dropped_loss += 1
                self._notify("drop-loss", copy)
            else:
                # Injector copies may be truncated/mutated; only the
                # untouched original inherits the precomputed size.
                self.sim.schedule_fast(
                    self.delay + extra_delay + fault_delay,
                    self._deliver,
                    copy,
                    size if copy is packet else copy.total_len,
                )
        self._start_next()

    def _deliver(self, packet: Packet, size: int) -> None:
        stats = self.stats
        stats.delivered += 1
        stats.bytes_delivered += size
        packet.timestamp = self.sim.now
        if self.taps:
            self._notify("rx", packet)
        self.dst.deliver(packet, size)

    def _deliver_analytic(self, packet: Packet, size: int) -> None:
        # Analytic packets charge ``transmitted`` here rather than at
        # serialize-end (there is no serialize event); totals agree with
        # the scalar model once the simulation drains.
        stats = self.stats
        stats.transmitted += 1
        stats.delivered += 1
        stats.bytes_delivered += size
        packet.timestamp = self.sim.now
        if self.taps:
            self._notify("rx", packet)
        self.dst.deliver(packet, size)

    @property
    def queue_depth(self) -> int:
        """Packets currently waiting (excluding the one on the wire)."""
        inflight = self._inflight
        if inflight:
            now = self.sim.now
            queued = self._queued_bytes
            while inflight and inflight[0][0] <= now:
                queued -= inflight.popleft()[1]
            self._queued_bytes = queued
        return len(self._queue) + len(inflight)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Link {self.src.name}->{self.dst.name} "
            f"{self.bandwidth_bps / 1e9:.0f}Gbps mtu={self.mtu}>"
        )


def connect(
    sim: Simulator,
    a: Interface,
    b: Interface,
    bandwidth_bps: float = 10e9,
    delay: float = 1e-6,
    mtu: int = 1500,
    queue_bytes: int = DEFAULT_QUEUE_BYTES,
    netem: Optional[Netem] = None,
    rng: Optional[random.Random] = None,
) -> "Tuple[Link, Link]":
    """Create a bidirectional connection (two links) between interfaces."""
    forward = Link(sim, a, b, bandwidth_bps, delay, mtu, queue_bytes, netem, rng)
    backward = Link(sim, b, a, bandwidth_bps, delay, mtu, queue_bytes, netem, rng)
    a.link = forward
    b.link = backward
    return forward, backward
