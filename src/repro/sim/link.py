"""Point-to-point links with bandwidth, propagation delay, queueing, and MTU.

A :class:`Link` is unidirectional; :func:`connect` wires two interfaces
with a link in each direction.  The transmission model is the standard
store-and-forward pipeline: packets serialize one at a time at line
rate (including Ethernet framing overhead), wait in a byte-bounded FIFO
when the line is busy, then propagate.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..packet import Packet
from .engine import Simulator
from .netem import Netem
from .node import Interface

__all__ = ["Link", "connect", "LinkStats"]

#: A tap observes packets at a link: ``tap(event, packet, now)`` where
#: event is one of "tx", "rx", "drop-mtu", "drop-queue", "drop-loss",
#: "drop-fault".  Taps must not mutate the packet.
LinkTap = Callable[[str, Packet, float], None]

#: Default queue capacity in bytes (≈ 256 full-size 9 KB packets).
DEFAULT_QUEUE_BYTES = 2_304_000


class LinkStats:
    """Counters a link keeps for analysis."""

    def __init__(self):
        self.transmitted = 0
        self.delivered = 0
        self.dropped_queue = 0
        self.dropped_loss = 0
        self.dropped_mtu = 0
        self.dropped_fault = 0
        self.bytes_delivered = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<LinkStats tx={self.transmitted} rx={self.delivered} "
            f"qdrop={self.dropped_queue} loss={self.dropped_loss} mtu={self.dropped_mtu}>"
        )


class Link:
    """A unidirectional channel between two interfaces."""

    def __init__(
        self,
        sim: Simulator,
        src: Interface,
        dst: Interface,
        bandwidth_bps: float = 10e9,
        delay: float = 1e-6,
        mtu: int = 1500,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        netem: Optional[Netem] = None,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.mtu = mtu
        self.queue_bytes = queue_bytes
        self.netem = netem
        self.rng = rng or random.Random(0)
        self.stats = LinkStats()
        #: Observers of every packet event on this link (chaos oracle,
        #: pcap capture); see :data:`LinkTap`.
        self.taps: List[LinkTap] = []
        #: Optional deterministic fault injector.  Must provide
        #: ``apply(packet, now) -> List[Tuple[Packet, float]]``: the
        #: copies to deliver with per-copy extra delay (empty = drop).
        self.injector = None
        self._queue: Deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False

    def add_tap(self, tap: LinkTap) -> None:
        """Attach an observer called for every packet event."""
        self.taps.append(tap)

    def _notify(self, event: str, packet: Packet) -> None:
        for tap in self.taps:
            tap(event, packet, self.sim.now)

    def transmit(self, packet: Packet) -> bool:
        """Enqueue *packet* for transmission; False if dropped.

        Packets larger than the link MTU are dropped here — a link
        cannot carry them; it is the upstream node's job to fragment or
        refuse.  This is exactly the silent-drop behaviour that breaks
        classical PMTUD behind ICMP blackholes.
        """
        if packet.total_len > self.mtu:
            self.stats.dropped_mtu += 1
            self._notify("drop-mtu", packet)
            return False
        if self._queued_bytes + packet.total_len > self.queue_bytes:
            self.stats.dropped_queue += 1
            self._notify("drop-queue", packet)
            return False
        self._notify("tx", packet)
        self._queue.append(packet)
        self._queued_bytes += packet.total_len
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        self._queued_bytes -= packet.total_len
        serialization = packet.wire_len * 8 / self.bandwidth_bps
        self.sim.schedule(serialization, self._serialized, packet)

    def _serialized(self, packet: Packet) -> None:
        self.stats.transmitted += 1
        deliveries: List[Tuple[Packet, float]] = [(packet, 0.0)]
        if self.injector is not None:
            deliveries = self.injector.apply(packet, self.sim.now)
            if not deliveries:
                self.stats.dropped_fault += 1
                self._notify("drop-fault", packet)
        for copy, fault_delay in deliveries:
            extra_delay = 0.0
            drop = False
            if self.netem is not None:
                drop, extra_delay = self.netem.impair(self.rng)
            if drop:
                self.stats.dropped_loss += 1
                self._notify("drop-loss", copy)
            else:
                self.sim.schedule(
                    self.delay + extra_delay + fault_delay, self._deliver, copy
                )
        self._start_next()

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.total_len
        packet.timestamp = self.sim.now
        self._notify("rx", packet)
        self.dst.deliver(packet)

    @property
    def queue_depth(self) -> int:
        """Packets currently waiting (excluding the one on the wire)."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Link {self.src.name}->{self.dst.name} "
            f"{self.bandwidth_bps / 1e9:.0f}Gbps mtu={self.mtu}>"
        )


def connect(
    sim: Simulator,
    a: Interface,
    b: Interface,
    bandwidth_bps: float = 10e9,
    delay: float = 1e-6,
    mtu: int = 1500,
    queue_bytes: int = DEFAULT_QUEUE_BYTES,
    netem: Optional[Netem] = None,
    rng: Optional[random.Random] = None,
) -> "Tuple[Link, Link]":
    """Create a bidirectional connection (two links) between interfaces."""
    forward = Link(sim, a, b, bandwidth_bps, delay, mtu, queue_bytes, netem, rng)
    backward = Link(sim, b, a, bandwidth_bps, delay, mtu, queue_bytes, netem, rng)
    a.link = forward
    b.link = backward
    return forward, backward
