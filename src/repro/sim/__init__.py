"""Discrete-event simulation substrate: engine, links, netem, tracing."""

from .engine import EventHandle, Simulator
from .link import Link, LinkStats, connect
from .netem import GilbertElliott, Netem
from .node import Interface, Node
from .trace import PacketTrace, TraceEntry

__all__ = [
    "Simulator",
    "EventHandle",
    "Link",
    "LinkStats",
    "connect",
    "Netem",
    "GilbertElliott",
    "Interface",
    "Node",
    "PacketTrace",
    "TraceEntry",
]
