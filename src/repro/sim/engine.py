"""A small deterministic discrete-event simulator.

The engine is a bucketed event wheel (calendar queue): near-future
events land in per-tick buckets with O(1) append, far-future events
wait in a ``heapq`` overflow lane and migrate into the wheel as the
window slides forward.  Events fire in timestamp order, with a
monotonically increasing sequence number as the tie-breaker so
same-time events run in scheduling order.  Every stochastic component
in the library takes an explicit seeded ``random.Random`` so whole
experiments replay bit-identically.

Ordering is exact, not tick-quantized: a bucket collects every event
whose timestamp falls inside one wheel tick, and the drain sorts the
bucket by ``(time, seq)`` before firing, so two events 10 ns apart
inside the same microsecond tick still fire in true timestamp order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "EventHandle"]

_Entry = Tuple[float, int, "EventHandle", Callable, tuple]


class EventHandle:
    """A cancellable reference to a scheduled event.

    Handles carry their insertion sequence number and order by
    ``(time, seq)``: two events at the *same* timestamp (seeded Netem
    delay faults routinely collide) always pop in scheduling order, so
    chaos replays stay byte-identical and queue comparison can never
    fall through to an unorderable payload.
    """

    __slots__ = ("time", "seq", "cancelled", "_owner", "_fired")

    def __init__(self, time: float, seq: int, owner: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._owner = owner
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        # Keep the owning simulator's live-event counter exact so
        # ``Simulator.pending()`` stays O(1) under cancel churn.
        if self._owner is not None:
            self._owner._live -= 1

    def _key(self) -> Tuple[float, int]:
        return (self.time, self.seq)

    def __lt__(self, other: "EventHandle") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "EventHandle") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "EventHandle") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "EventHandle") -> bool:
        return self._key() >= other._key()


#: Shared inert handle for :meth:`Simulator.schedule_fast` events.  Its
#: ``cancelled`` flag can never be set (no caller holds it), so the run
#: loop treats fast events exactly like live handle-carrying ones.
_FAST_HANDLE = EventHandle(0.0, 0)

#: Effectively-infinite tick bound used when ``run`` has no horizon.
_NO_LIMIT_TICK = 1 << 62


class Simulator:
    """The event loop shared by all nodes, links, and protocol agents.

    Internally a bucketed event wheel: ``wheel_slots`` buckets of
    ``wheel_resolution`` seconds each cover a sliding window starting
    at the drain cursor.  Scheduling inside the window appends to a
    bucket (O(1) — the datapath case: serialization, propagation, and
    CPU-cycle delays are all microseconds or less); anything beyond
    the window goes to the overflow heap (protocol timers: RTO,
    delayed-ACK, probe timers) and migrates in as the window slides.
    """

    def __init__(self, wheel_resolution: float = 1e-4, wheel_slots: int = 256):
        if wheel_resolution <= 0:
            raise ValueError(f"wheel resolution must be positive (got {wheel_resolution})")
        if wheel_slots < 1:
            raise ValueError(f"need at least one wheel slot (got {wheel_slots})")
        size = 1
        while size < wheel_slots:
            size <<= 1
        self._res_inv = 1.0 / wheel_resolution
        self._slots = size
        self._mask = size - 1
        self._wheel: List[List[_Entry]] = [[] for _ in range(size)]
        #: Entries (live or cancelled) currently held in wheel buckets.
        self._wheel_count = 0
        #: Occupancy bitmask over wheel slots (bit i set ⇔ slot i has
        #: entries): lets the drain jump straight to the next occupied
        #: slot with one big-int scan instead of sweeping empty ticks.
        self._occupied = 0
        #: Far-future lane: a heap of entries with ticks beyond the
        #: current window; ordered by (time, seq) like everything else.
        self._overflow: List[_Entry] = []
        #: The next tick the drain will visit; all wheel entries have
        #: tick >= cursor (earlier-time stragglers are clamped into the
        #: cursor bucket, where the per-bucket sort restores exact order).
        self._cursor = 0
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        #: Live (scheduled, neither fired nor cancelled) event count;
        #: kept exact so ``pending()`` never rescans the queue.
        self._live = 0
        #: Count of events executed; useful for efficiency assertions.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        # The insert is inlined (here and in the two variants below):
        # this is called once or twice per packet hop, so the extra
        # frame was measurable in the event loop.  A tick the cursor
        # already swept past (its events fired but ``now`` still sits
        # inside it) parks in the cursor bucket, where the per-bucket
        # (time, seq) sort restores exact firing order.
        time = self._now + delay
        seq = next(self._sequence)
        handle = EventHandle(time, seq, owner=self)
        tick = int(time * self._res_inv)
        cursor = self._cursor
        if tick < cursor:
            tick = cursor
        if tick - cursor < self._slots:
            index = tick & self._mask
            bucket = self._wheel[index]
            if not bucket:
                self._occupied |= 1 << index
            bucket.append((time, seq, handle, callback, args))
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, (time, seq, handle, callback, args))
        self._live += 1
        return handle

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulation *time*."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} (now={self._now})")
        seq = next(self._sequence)
        handle = EventHandle(time, seq, owner=self)
        tick = int(time * self._res_inv)
        cursor = self._cursor
        if tick < cursor:
            tick = cursor
        if tick - cursor < self._slots:
            index = tick & self._mask
            bucket = self._wheel[index]
            if not bucket:
                self._occupied |= 1 << index
            bucket.append((time, seq, handle, callback, args))
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, (time, seq, handle, callback, args))
        self._live += 1
        return handle

    def schedule_fast(self, delay: float, callback: Callable, *args: Any) -> None:
        """Schedule a non-cancellable event *delay* seconds from now.

        Contract (guarded by ``tests/test_sim_engine.py``):

        * Fast events return no handle and **cannot be cancelled** —
          they all share one inert :class:`EventHandle` whose
          ``cancelled`` flag is never set, skipping the per-event
          handle allocation the datapath would otherwise pay for every
          serialize/deliver hop.
        * They are **fully visible** to ``pending()`` and
          ``peek_time()`` while queued, and fire in exact
          ``(time, seq)`` order alongside handle-carrying events — but
          they are *invisible to cancellation churn*: nothing can make
          ``peek_time()`` skip one, and the live counter only ever
          decrements for them when they fire.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        tick = int(time * self._res_inv)
        cursor = self._cursor
        if tick < cursor:
            tick = cursor
        entry = (time, next(self._sequence), _FAST_HANDLE, callback, args)
        if tick - cursor < self._slots:
            index = tick & self._mask
            bucket = self._wheel[index]
            if not bucket:
                self._occupied |= 1 << index
            bucket.append(entry)
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, entry)
        self._live += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Stops when the queue empties, when the next event would exceed
        *until*, or after *max_events* events.  Returns the simulation
        time reached.  When *until* is given, the clock is advanced to
        it even if the queue empties earlier, so back-to-back ``run``
        calls observe continuous time.
        """
        self._running = True
        executed = 0
        wheel = self._wheel
        mask = self._mask
        slots = self._slots
        overflow = self._overflow
        res_inv = self._res_inv
        heappop = heapq.heappop
        # Hoist the per-iteration Optional checks out of the loop: an
        # infinite horizon compares False forever, and a -1 countdown
        # never equals the post-increment counter.
        limit = float("inf") if until is None else until
        limit_tick = _NO_LIMIT_TICK if until is None else int(limit * res_inv)
        stop_after = -1 if max_events is None else max_events
        stopped = False
        try:
            while True:
                cursor = self._cursor
                bucket = wheel[cursor & mask]
                if not bucket:
                    if not self._wheel_count and not overflow:
                        break
                    # An overflow entry whose tick has entered the
                    # window migrates to its bucket before any jump, so
                    # the occupancy mask sees it.
                    if overflow:
                        end = cursor + slots
                        while overflow:
                            tick = int(overflow[0][0] * res_inv)
                            if tick >= end:
                                break
                            index = tick & mask
                            wheel[index].append(heappop(overflow))
                            self._wheel_count += 1
                            self._occupied |= 1 << index
                    occupied = self._occupied
                    if occupied:
                        # Jump straight to the next occupied slot: rotate
                        # the mask so bit 0 is the cursor slot, then take
                        # the lowest set bit.
                        index = cursor & mask
                        rotated = (occupied >> index) | (
                            (occupied & ((1 << index) - 1)) << (slots - index)
                        )
                        cursor += (rotated & -rotated).bit_length() - 1
                        if cursor > limit_tick:
                            if limit_tick > self._cursor:
                                self._cursor = limit_tick
                            break
                        self._cursor = cursor
                        continue
                    # Wheel empty: jump the cursor straight to the next
                    # overflow tick instead of sweeping idle slots.
                    top_time = overflow[0][0]
                    if top_time > limit:
                        if limit_tick > cursor:
                            self._cursor = limit_tick
                        break
                    cursor = int(top_time * res_inv)
                    self._cursor = cursor
                    end = cursor + slots
                    while overflow:
                        tick = int(overflow[0][0] * res_inv)
                        if tick >= end:
                            break
                        index = tick & mask
                        wheel[index].append(heappop(overflow))
                        self._wheel_count += 1
                        self._occupied |= 1 << index
                    continue
                # Drain the cursor bucket in exact (time, seq) order.
                # The bucket stays in the wheel while firing, so
                # peek_time()/pending() called from inside a callback
                # still see the not-yet-fired remainder; reverse sort
                # makes the next event a cheap pop() off the end.
                if len(bucket) > 1:
                    bucket.sort(reverse=True)
                while bucket:
                    entry = bucket[-1]
                    time = entry[0]
                    if time > limit:
                        stopped = True
                        break
                    bucket.pop()
                    self._wheel_count -= 1
                    handle = entry[2]
                    if handle.cancelled:
                        continue
                    handle._fired = True
                    self._live -= 1
                    self._now = time
                    depth = len(bucket)
                    entry[3](*entry[4])
                    executed += 1
                    if len(bucket) != depth:
                        # The callback scheduled into this same tick; the
                        # append landed unsorted at the pop end, so
                        # restore order before the next pop.
                        bucket.sort(reverse=True)
                    if executed == stop_after:
                        stopped = True
                        break
                if not bucket:
                    self._occupied &= ~(1 << (cursor & mask))
                    if not stopped:
                        self._cursor = cursor + 1
                        continue
                if stopped:
                    break
        finally:
            self._running = False
            self.events_processed += executed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if idle."""
        if self._live == 0:
            return None
        overflow = self._overflow
        while overflow and overflow[0][2].cancelled:
            heapq.heappop(overflow)
        best = overflow[0][0] if overflow else None
        if self._wheel_count:
            wheel = self._wheel
            mask = self._mask
            slots = self._slots
            cursor = self._cursor
            index = cursor & mask
            occupied = self._occupied
            # Rotate so bit 0 is the cursor slot, then visit occupied
            # slots in drain order.
            rotated = (occupied >> index) | (
                (occupied & ((1 << index) - 1)) << (slots - index)
            )
            while rotated:
                offset = (rotated & -rotated).bit_length() - 1
                bucket = wheel[(cursor + offset) & mask]
                earliest = None
                for entry in bucket:
                    if not entry[2].cancelled:
                        time = entry[0]
                        if earliest is None or time < earliest:
                            earliest = time
                if earliest is not None:
                    # Later buckets hold strictly later ticks, so the
                    # first bucket with a live entry bounds the wheel.
                    if best is None or earliest < best:
                        best = earliest
                    break
                rotated &= rotated - 1
        return best

    def pending(self) -> int:
        """Number of (non-cancelled) queued events.

        O(1): a live counter maintained at schedule/cancel/fire time
        replaces rescanning buckets (cancelled entries stay in their
        bucket until drained, so scanning would be O(n) per call).

        Invariant vs. :meth:`peek_time`: peeking scans *around*
        cancelled entries (and lazily pops them off the overflow
        heap), but never touches this counter — the cancel that marked
        them already decremented it.  Any interleaving of schedule /
        cancel / peek therefore keeps ``pending()`` exact (the churn
        test in ``tests/test_sim_engine.py`` drives this directly).
        """
        return self._live
