"""A small deterministic discrete-event simulator.

The engine is a classic calendar queue over ``heapq``: events fire in
timestamp order, with a monotonically increasing sequence number as the
tie-breaker so same-time events run in scheduling order.  Every
stochastic component in the library takes an explicit seeded
``random.Random`` so whole experiments replay bit-identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "EventHandle"]


class EventHandle:
    """A cancellable reference to a scheduled event.

    Handles carry their insertion sequence number and order by
    ``(time, seq)``: two events at the *same* timestamp (seeded Netem
    delay faults routinely collide) always pop in scheduling order, so
    chaos replays stay byte-identical and heap comparison can never
    fall through to an unorderable payload.
    """

    __slots__ = ("time", "seq", "cancelled", "_owner", "_fired")

    def __init__(self, time: float, seq: int, owner: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._owner = owner
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        # Keep the owning simulator's live-event counter exact so
        # ``Simulator.pending()`` stays O(1) under cancel churn.
        if self._owner is not None:
            self._owner._live -= 1

    def _key(self) -> Tuple[float, int]:
        return (self.time, self.seq)

    def __lt__(self, other: "EventHandle") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "EventHandle") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "EventHandle") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "EventHandle") -> bool:
        return self._key() >= other._key()


#: Shared inert handle for :meth:`Simulator.schedule_fast` events.  Its
#: ``cancelled`` flag can never be set (no caller holds it), so the run
#: loop treats fast events exactly like live handle-carrying ones.
_FAST_HANDLE = EventHandle(0.0, 0)


class Simulator:
    """The event loop shared by all nodes, links, and protocol agents."""

    def __init__(self):
        self._queue: List[Tuple[float, int, EventHandle, Callable, tuple]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        #: Live (scheduled, neither fired nor cancelled) event count;
        #: kept exact so ``pending()`` never rescans the heap.
        self._live = 0
        #: Count of events executed; useful for efficiency assertions.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        # Inlined schedule_at: this is called once or twice per packet
        # hop, so the extra frame was measurable in the event loop.
        time = self._now + delay
        seq = next(self._sequence)
        handle = EventHandle(time, seq, owner=self)
        heapq.heappush(self._queue, (time, seq, handle, callback, args))
        self._live += 1
        return handle

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulation *time*."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} (now={self._now})")
        seq = next(self._sequence)
        handle = EventHandle(time, seq, owner=self)
        heapq.heappush(self._queue, (time, seq, handle, callback, args))
        self._live += 1
        return handle

    def schedule_fast(self, delay: float, callback: Callable, *args: Any) -> None:
        """Schedule a non-cancellable event *delay* seconds from now.

        Links schedule two events per packet and never cancel them;
        skipping the per-event :class:`EventHandle` allocation is a
        measurable win on the datapath.  Fast events share one inert
        handle (its ``cancelled`` flag is never set), so ordering and
        replay behaviour are identical to :meth:`schedule`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue,
            (self._now + delay, next(self._sequence), _FAST_HANDLE, callback, args),
        )
        self._live += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Stops when the queue empties, when the next event would exceed
        *until*, or after *max_events* events.  Returns the simulation
        time reached.  When *until* is given, the clock is advanced to
        it even if the queue empties earlier, so back-to-back ``run``
        calls observe continuous time.
        """
        self._running = True
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        # Hoist the per-iteration Optional checks out of the loop: an
        # infinite horizon compares False forever, and a -1 countdown
        # never equals the post-increment counter.
        limit = float("inf") if until is None else until
        stop_after = -1 if max_events is None else max_events
        try:
            while queue:
                if queue[0][0] > limit:
                    break
                time, _seq, handle, callback, args = heappop(queue)
                if handle.cancelled:
                    continue
                handle._fired = True
                self._live -= 1
                self._now = time
                callback(*args)
                executed += 1
                if executed == stop_after:
                    break
        finally:
            self._running = False
            self.events_processed += executed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if idle."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def pending(self) -> int:
        """Number of (non-cancelled) queued events.

        O(1): a live counter maintained at schedule/cancel/fire time
        replaces the old full-heap scan (cancelled entries stay in the
        heap until popped, so scanning was O(n) per call).

        Invariant vs. :meth:`peek_time`: peeking lazily pops cancelled
        entries off the *heap*, but never touches this counter — the
        cancel that marked them already decremented it.  Any
        interleaving of schedule / cancel / peek therefore keeps
        ``pending()`` exact (the churn test in
        ``tests/test_sim_engine.py`` drives this directly).
        """
        return self._live
