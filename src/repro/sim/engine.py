"""A small deterministic discrete-event simulator.

The engine is a classic calendar queue over ``heapq``: events fire in
timestamp order, with a monotonically increasing sequence number as the
tie-breaker so same-time events run in scheduling order.  Every
stochastic component in the library takes an explicit seeded
``random.Random`` so whole experiments replay bit-identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "EventHandle"]


class EventHandle:
    """A cancellable reference to a scheduled event.

    Handles carry their insertion sequence number and order by
    ``(time, seq)``: two events at the *same* timestamp (seeded Netem
    delay faults routinely collide) always pop in scheduling order, so
    chaos replays stay byte-identical and heap comparison can never
    fall through to an unorderable payload.
    """

    __slots__ = ("time", "seq", "cancelled")

    def __init__(self, time: float, seq: int):
        self.time = time
        self.seq = seq
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def _key(self) -> Tuple[float, int]:
        return (self.time, self.seq)

    def __lt__(self, other: "EventHandle") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "EventHandle") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "EventHandle") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "EventHandle") -> bool:
        return self._key() >= other._key()


class Simulator:
    """The event loop shared by all nodes, links, and protocol agents."""

    def __init__(self):
        self._queue: List[Tuple[float, int, EventHandle, Callable, tuple]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        #: Count of events executed; useful for efficiency assertions.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulation *time*."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} (now={self._now})")
        seq = next(self._sequence)
        handle = EventHandle(time, seq)
        heapq.heappush(self._queue, (time, seq, handle, callback, args))
        return handle

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Stops when the queue empties, when the next event would exceed
        *until*, or after *max_events* events.  Returns the simulation
        time reached.  When *until* is given, the clock is advanced to
        it even if the queue empties earlier, so back-to-back ``run``
        calls observe continuous time.
        """
        self._running = True
        executed = 0
        try:
            while self._queue:
                time, _seq, handle, callback, args = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = time
                callback(*args)
                self.events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if idle."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def pending(self) -> int:
        """Number of (non-cancelled) queued events."""
        return sum(1 for entry in self._queue if not entry[2].cancelled)
