"""Topology builder: declarative networks with automatic addressing/routing.

``Topology`` wires hosts, routers, and gateways with point-to-point
links, allocates a /30 per link from 10.0.0.0/8, and computes static
routes over shortest paths (via ``networkx`` when available, otherwise
a built-in BFS).  This is the scaffolding every experiment uses to
recreate the paper's testbeds.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

try:  # networkx is available in the evaluation environment but optional.
    import networkx as _nx
except ImportError:  # pragma: no cover - exercised only without networkx
    _nx = None

from ..packet import ip_to_str, str_to_ip
from ..sim.engine import Simulator
from ..sim.link import Link, connect
from ..sim.netem import Netem
from ..sim.node import Interface, Node
from .host import Host
from .router import Router

__all__ = ["Topology"]


class Topology:
    """A network under construction plus the simulator running it."""

    def __init__(self, sim: Optional[Simulator] = None, seed: int = 0):
        self.sim = sim or Simulator()
        self.rng = random.Random(seed)
        self.nodes: Dict[str, Node] = {}
        self._edges: Dict[Tuple[str, str], Tuple[Interface, Interface, Link, Link]] = {}
        self._adjacency: Dict[str, List[str]] = {}
        self._link_index = 0

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------
    def add_host(self, name: str, reassemble: bool = True) -> Host:
        """Create and register a host."""
        host = Host(self.sim, name, reassemble=reassemble)
        self._register(host)
        return host

    def add_router(
        self,
        name: str,
        icmp_blackhole: bool = False,
        filter_fragments: bool = False,
        icmp_rate_limit: "float | None" = None,
    ) -> Router:
        """Create and register a router."""
        router = Router(
            self.sim,
            name,
            icmp_blackhole=icmp_blackhole,
            filter_fragments=filter_fragments,
            icmp_rate_limit=icmp_rate_limit,
        )
        self._register(router)
        return router

    def add_node(self, node: Node) -> Node:
        """Register an externally constructed node (e.g. a PXGW)."""
        self._register(node)
        return node

    def _register(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._adjacency[node.name] = []

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def link(
        self,
        a: Node,
        b: Node,
        bandwidth_bps: float = 10e9,
        delay: float = 1e-6,
        mtu: int = 1500,
        netem: Optional[Netem] = None,
        queue_bytes: Optional[int] = None,
        ip_a: Optional[str] = None,
        ip_b: Optional[str] = None,
        mtu_a: Optional[int] = None,
        mtu_b: Optional[int] = None,
    ) -> "Tuple[Link, Link]":
        """Connect two nodes with a bidirectional link.

        Interface MTUs default to the link MTU; override them to model
        misconfiguration.  Addresses come from an auto-allocated /30
        unless given explicitly.
        """
        index = self._link_index
        self._link_index += 1
        default_a = f"10.{(index >> 6) & 0xFF}.{(index & 0x3F) * 4}.1"
        default_b = f"10.{(index >> 6) & 0xFF}.{(index & 0x3F) * 4}.2"
        addr_a = str_to_ip(ip_a) if ip_a else str_to_ip(default_a)
        addr_b = str_to_ip(ip_b) if ip_b else str_to_ip(default_b)

        iface_a = a.add_interface(addr_a, mtu=mtu_a if mtu_a is not None else mtu)
        iface_b = b.add_interface(addr_b, mtu=mtu_b if mtu_b is not None else mtu)
        kwargs = dict(
            bandwidth_bps=bandwidth_bps,
            delay=delay,
            mtu=mtu,
            netem=netem,
            rng=random.Random(self.rng.getrandbits(32)),
        )
        if queue_bytes is not None:
            kwargs["queue_bytes"] = queue_bytes
        forward, backward = connect(self.sim, iface_a, iface_b, **kwargs)

        self._edges[(a.name, b.name)] = (iface_a, iface_b, forward, backward)
        self._edges[(b.name, a.name)] = (iface_b, iface_a, backward, forward)
        self._adjacency[a.name].append(b.name)
        self._adjacency[b.name].append(a.name)
        return forward, backward

    def edge(self, a: Node, b: Node) -> "Tuple[Interface, Interface, Link, Link]":
        """The (iface_a, iface_b, link_ab, link_ba) tuple for an edge."""
        return self._edges[(a.name, b.name)]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """(Re)compute static routes: /32 toward every address, everywhere."""
        paths = self._all_shortest_paths()
        addresses: List[Tuple[str, int]] = [
            (node.name, interface.ip)
            for node in self.nodes.values()
            for interface in node.interfaces
        ]
        for node in self.nodes.values():
            table = getattr(node, "routes", None)
            if table is None:
                continue
            table.clear()
            for owner, address in addresses:
                if owner == node.name:
                    continue
                next_hop = paths.get((node.name, owner))
                if next_hop is None:
                    continue
                iface_out, _, _, _ = self._edges[(node.name, next_hop)]
                table.add(f"{ip_to_str(address)}/32", iface_out)

    def _all_shortest_paths(self) -> Dict[Tuple[str, str], str]:
        """Map (src, dst) -> next hop from src toward dst."""
        next_hops: Dict[Tuple[str, str], str] = {}
        if _nx is not None:
            graph = _nx.Graph()
            graph.add_nodes_from(self._adjacency)
            for (a, b) in self._edges:
                graph.add_edge(a, b)
            for src, paths in _nx.all_pairs_shortest_path(graph):
                for dst, path in paths.items():
                    if len(path) >= 2:
                        next_hops[(src, dst)] = path[1]
            return next_hops
        for src in self._adjacency:  # BFS fallback
            visited = {src: None}
            queue = deque([src])
            while queue:
                current = queue.popleft()
                for neighbor in self._adjacency[current]:
                    if neighbor not in visited:
                        visited[neighbor] = current
                        queue.append(neighbor)
            for dst, parent in visited.items():
                if dst == src or parent is None:
                    continue
                hop = dst
                while visited[hop] != src:
                    hop = visited[hop]
                next_hops[(src, dst)] = hop
        return next_hops

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation (delegates to the engine)."""
        return self.sim.run(until=until, max_events=max_events)

    def links(self) -> Iterable[Link]:
        """All directed links (each physical link appears twice)."""
        seen = set()
        for iface_a, _iface_b, forward, backward in self._edges.values():
            for link in (forward, backward):
                if id(link) not in seen:
                    seen.add(id(link))
                    yield link
