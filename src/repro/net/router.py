"""IP routers: forwarding, fragmentation, and (optionally suppressed) ICMP.

Two behaviours matter for the paper's arguments:

* When a DF packet exceeds the egress MTU, a well-behaved router sends
  ICMP 'fragmentation needed' back (classical PMTUD's signal).  An
  *ICMP blackhole* router silently drops instead — the widespread
  misconfiguration that motivates F-PMTUD.
* When DF is clear, the router fragments in place; the fragment sizes
  then encode the bottleneck MTU, which is the signal F-PMTUD reads.
"""

from __future__ import annotations

from typing import Optional

from ..packet import FragmentationNeeded, ICMPMessage, Packet, build_icmp, fragment_packet
from ..sim.engine import Simulator
from ..sim.node import Interface, Node
from ..sim.trace import PacketTrace
from .routing import RoutingTable

__all__ = ["Router"]


class Router(Node):
    """A store-and-forward IPv4 router."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        icmp_blackhole: bool = False,
        filter_fragments: bool = False,
        icmp_rate_limit: Optional[float] = None,
        trace: Optional[PacketTrace] = None,
    ):
        super().__init__(sim, name)
        self.routes = RoutingTable()
        #: Suppress ICMP error generation (misconfiguration / "security").
        self.icmp_blackhole = icmp_blackhole
        #: Drop IP fragments outright (a rarer but real filtering policy;
        #: §5.3 found 15 of 389k paths doing this at the last-hop AS).
        self.filter_fragments = filter_fragments
        #: Maximum ICMP errors per second (routers rate-limit error
        #: generation; classical PMTUD degrades behind aggressive
        #: limits even without a full blackhole).  None = unlimited.
        self.icmp_rate_limit = icmp_rate_limit
        self._last_icmp_at: Optional[float] = None
        self.icmp_suppressed = 0
        self.trace = trace
        self.forwarded = 0
        self.dropped = 0

    def receive(self, packet: Packet, interface: Interface) -> None:
        """Forward an arriving packet toward its destination."""
        if self.trace:
            self.trace.record(self.sim.now, self.name, "rx", packet)
        if packet.ip.dst in self._if_by_ip:
            self._deliver_local(packet, interface)
            return
        self.forward(packet, arrived_on=interface)

    def forward(self, packet: Packet, arrived_on: Optional[Interface] = None) -> bool:
        """Route *packet* out the proper interface; True if sent."""
        if self.filter_fragments and packet.is_fragment:
            self.dropped += 1
            if self.trace:
                self.trace.record(self.sim.now, self.name, "drop-fragment", packet)
            return False

        ip = packet.ip
        if ip.ttl <= 1:
            self.dropped += 1
            self._send_icmp_error(
                packet,
                ICMPMessage(icmp_type=11, code=0, payload=packet.to_bytes()[:28]),
            )
            return False

        route = self.routes.lookup(ip.dst)
        if route is None:
            self.dropped += 1
            if self.trace:
                self.trace.record(self.sim.now, self.name, "drop-noroute", packet)
            return False

        egress = route.interface
        # Forwarding only touches the IP header (TTL here, total_length
        # during any later serialization), so a full structural copy is
        # wasted work — share the L4 header copy-on-write instead.
        packet = packet.fork()
        packet.ip.ttl -= 1

        egress_mtu = min(egress.mtu, egress.link.mtu if egress.link else egress.mtu)
        size = packet.total_len
        if size <= egress_mtu:
            # Fits: skip the fragmentation machinery and reuse the
            # length for egress byte accounting.
            if self.trace:
                self.trace.record(self.sim.now, self.name, "tx", packet)
            egress.send(packet, size)
            self.forwarded += 1
            return True
        try:
            pieces = fragment_packet(packet, egress_mtu)
        except FragmentationNeeded:
            self.dropped += 1
            if self.trace:
                self.trace.record(self.sim.now, self.name, "drop-df", packet)
            if not self.icmp_blackhole:
                self._send_icmp_error(
                    packet, ICMPMessage.frag_needed(egress_mtu, packet.to_bytes())
                )
            return False

        for piece in pieces:
            if self.trace:
                self.trace.record(self.sim.now, self.name, "tx", piece)
            egress.send(piece)
        self.forwarded += 1
        return True

    def _deliver_local(self, packet: Packet, interface: Interface) -> None:
        """Handle packets addressed to the router itself (echo only)."""
        if packet.is_icmp and packet.icmp.icmp_type == 8:
            reply = build_icmp(packet.ip.dst, packet.ip.src, ICMPMessage.echo_reply(packet.icmp))
            self.forward(reply)

    def _send_icmp_error(self, offending: Packet, message: ICMPMessage) -> None:
        """Send an ICMP error to the offending packet's source."""
        if self.icmp_blackhole:
            return
        if self.icmp_rate_limit is not None:
            min_gap = 1.0 / self.icmp_rate_limit
            if self._last_icmp_at is not None and self.sim.now - self._last_icmp_at < min_gap:
                self.icmp_suppressed += 1
                return
            self._last_icmp_at = self.sim.now
        source_ip = self.interfaces[0].ip if self.interfaces else 0
        error = build_icmp(source_ip, offending.ip.src, message)
        route = self.routes.lookup(offending.ip.src)
        if route is not None:
            route.interface.send(error)
