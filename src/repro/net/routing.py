"""Longest-prefix-match routing tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..packet.address import in_subnet, make_subnet
from ..sim.node import Interface

__all__ = ["Route", "RoutingTable"]


@dataclass
class Route:
    """One forwarding entry: destination prefix → egress interface."""

    network: int
    mask: int
    interface: Interface
    metric: int = 0

    @property
    def prefix_len(self) -> int:
        """Length of the prefix in bits."""
        return bin(self.mask).count("1")


class RoutingTable:
    """A list-based LPM table.

    Entries are kept sorted by descending prefix length so the first
    match is the longest.  Tables here hold at most a few dozen routes,
    so a compressed trie would be over-engineering.
    """

    def __init__(self):
        self._routes: List[Route] = []
        self._listeners: List = []
        #: Exact-destination memo; invalidated on any table change.
        #: Simulated worlds route among a handful of hosts, so every
        #: per-packet lookup after the first is a dict hit.
        self._memo: dict = {}

    def on_change(self, callback) -> None:
        """Call *callback* (no args) after any table modification.

        The resilience PMTU cache uses this to invalidate itself on
        route change: a cached path MTU describes a path that may no
        longer exist.
        """
        self._listeners.append(callback)

    def _notify(self) -> None:
        self._memo.clear()
        for callback in self._listeners:
            callback()

    def add(self, prefix: str, interface: Interface, metric: int = 0) -> Route:
        """Install ``prefix`` (e.g. ``"10.1.0.0/16"``) via *interface*."""
        network, mask = make_subnet(prefix)
        route = Route(network=network, mask=mask, interface=interface, metric=metric)
        self._routes.append(route)
        self._routes.sort(key=lambda r: (-r.prefix_len, r.metric))
        self._notify()
        return route

    def add_default(self, interface: Interface) -> Route:
        """Install a 0.0.0.0/0 route."""
        return self.add("0.0.0.0/0", interface)

    def lookup(self, destination: int) -> Optional[Route]:
        """Longest-prefix match for *destination*; None if unroutable."""
        try:
            return self._memo[destination]
        except KeyError:
            pass
        result = None
        for route in self._routes:
            if destination & route.mask == route.network:
                result = route
                break
        self._memo[destination] = result
        return result

    def remove_prefix(self, prefix: str) -> int:
        """Remove all routes for *prefix*; returns how many were removed."""
        network, mask = make_subnet(prefix)
        before = len(self._routes)
        self._routes = [
            route
            for route in self._routes
            if not (route.network == network and route.mask == mask)
        ]
        removed = before - len(self._routes)
        if removed:
            self._notify()
        return removed

    def clear(self) -> None:
        """Remove every route."""
        had_routes = bool(self._routes)
        self._routes.clear()
        if had_routes:
            self._notify()

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes)
