"""Network elements: hosts, routers, routing tables, topology builder."""

from .host import Host
from .router import Router
from .routing import Route, RoutingTable
from .topology import Topology

__all__ = ["Host", "Router", "Route", "RoutingTable", "Topology"]
