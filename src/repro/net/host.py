"""End hosts: protocol demux, UDP sockets, ICMP hooks, reassembly.

A host reassembles fragments before delivery (as OS stacks do), then
demultiplexes to registered listeners.  TCP connections from
``repro.tcpstack`` and PMTUD agents from ``repro.pmtud`` register
themselves through the hook methods here.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..packet import (
    ICMPMessage,
    IPProto,
    Packet,
    Reassembler,
    build_icmp,
    build_udp,
)
from ..sim.engine import Simulator
from ..sim.node import Interface, Node
from .routing import RoutingTable

__all__ = ["Host"]

UdpListener = Callable[[Packet, "Host"], None]
IcmpListener = Callable[[Packet, ICMPMessage], None]
TcpListener = Callable[[Packet], None]


class Host(Node):
    """An end host with a minimal IP stack.

    Hosts inside a b-network can run the paper's *modified* stack
    (§4.1): :meth:`enable_caravan_stack` makes the RX path transparently
    unpack PX-caravan bundles before delivery, and adds
    :meth:`send_udp_bulk`, which bundles outgoing datagrams into
    caravans sized to the iMTU (the host-side analogue of UDP_SEGMENT).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        reassemble: bool = True,
    ):
        super().__init__(sim, name)
        self.routes = RoutingTable()
        #: Real stacks reassemble before delivery; disabling this models
        #: a host (or path policy) that cannot accept fragments.
        self.reassemble = reassemble
        self.reassembler = Reassembler()
        #: iMTU of the caravan-aware stack, or None (unmodified host).
        self.caravan_imtu: "int | None" = None
        self._udp_listeners: Dict[int, UdpListener] = {}
        self._tcp_listeners: Dict[Tuple[int, int, int], TcpListener] = {}
        self._tcp_accepting: Dict[int, TcpListener] = {}
        self._icmp_listeners: List[IcmpListener] = []
        self.rx_packets = 0
        self.rx_bytes = 0
        #: Caravans dropped because their body failed to decode (a
        #: damaged bundle; real stacks discard undecodable input).
        self.caravan_decode_errors = 0
        #: Packets that arrived with nobody listening.
        self.unclaimed: List[Packet] = []

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------
    @property
    def ip(self) -> int:
        """The primary (first-interface) address."""
        if not self.interfaces:
            raise RuntimeError(f"host {self.name} has no interface")
        return self.interfaces[0].ip

    def egress(self, destination: int) -> Optional[Interface]:
        """The interface a packet to *destination* leaves through."""
        route = self.routes.lookup(destination)
        return route.interface if route else None

    def send(self, packet: Packet) -> bool:
        """Route and transmit a locally generated packet."""
        route = self.routes.lookup(packet.ip.dst)
        if route is None:
            return False
        packet.timestamp = self.sim.now
        return route.interface.send(packet)

    # ------------------------------------------------------------------
    # Listener registration
    # ------------------------------------------------------------------
    def on_udp(self, port: int, listener: UdpListener) -> None:
        """Register a UDP listener on *port*."""
        self._udp_listeners[port] = listener

    def close_udp(self, port: int) -> None:
        """Remove a UDP listener."""
        self._udp_listeners.pop(port, None)

    def on_tcp(self, local_port: int, peer_ip: int, peer_port: int, listener: TcpListener) -> None:
        """Register a fully-qualified TCP connection listener."""
        self._tcp_listeners[(local_port, peer_ip, peer_port)] = listener

    def on_tcp_accept(self, local_port: int, listener: TcpListener) -> None:
        """Register a listening (accepting) TCP port."""
        self._tcp_accepting[local_port] = listener

    def close_tcp(self, local_port: int, peer_ip: int, peer_port: int) -> None:
        """Remove a TCP connection listener."""
        self._tcp_listeners.pop((local_port, peer_ip, peer_port), None)

    def on_icmp(self, listener: IcmpListener) -> None:
        """Subscribe to ICMP messages delivered to this host."""
        self._icmp_listeners.append(listener)

    # ------------------------------------------------------------------
    # Convenience senders
    # ------------------------------------------------------------------
    def send_udp(
        self,
        dst: int,
        src_port: int,
        dst_port: int,
        payload: bytes,
        tos: int = 0,
        dont_fragment: bool = False,
    ) -> bool:
        """Build and send one UDP datagram."""
        packet = build_udp(
            self.ip, dst, src_port, dst_port, payload=payload, tos=tos,
            dont_fragment=dont_fragment,
        )
        return self.send(packet)

    # ------------------------------------------------------------------
    # The modified (caravan-aware) stack of §4.1
    # ------------------------------------------------------------------
    def enable_caravan_stack(self, imtu: int = 9000) -> None:
        """Turn on the b-network host stack: transparent caravan RX
        decode plus iMTU-sized TX bundling via :meth:`send_udp_bulk`.

        Also answers gateway capability queries (resilience layer), so
        a negotiating PXGW learns this host may receive caravans; an
        unmodified host stays silent and lands in the negative cache.
        """
        if imtu <= 576:
            raise ValueError(f"implausible iMTU {imtu}")
        self.caravan_imtu = imtu

        from ..resilience.negotiation import CARAVAN_CAP_PORT, make_cap_responder

        self.on_udp(CARAVAN_CAP_PORT, make_cap_responder(imtu))

    def send_udp_bulk(self, dst: int, src_port: int, dst_port: int,
                      datagrams: "List[bytes]") -> int:
        """Send many datagrams, bundling into caravans when enabled.

        Bundles as many whole datagrams per caravan as fit the iMTU
        budget (outer 28 B + 8 B inner header per datagram), like
        UDP_SEGMENT batching a sendmmsg.  Returns packets transmitted.
        """
        if self.caravan_imtu is None:
            sent = 0
            for payload in datagrams:
                sent += bool(self.send_udp(dst, src_port, dst_port, payload))
            return sent

        from ..core.caravan import encode_caravan

        budget = self.caravan_imtu - 28
        sent = 0
        batch: List = []
        batch_bytes = 0
        ip_id = build_udp(self.ip, dst, src_port, dst_port).ip.identification

        def flush():
            nonlocal sent, batch, batch_bytes
            if not batch:
                return
            caravan = encode_caravan(batch)
            caravan.timestamp = self.sim.now
            if self.send(caravan):
                sent += 1
            batch = []
            batch_bytes = 0

        for payload in datagrams:
            record = 8 + len(payload)
            if batch and batch_bytes + record > budget:
                flush()
            ip_id = (ip_id + 1) & 0xFFFF
            batch.append(build_udp(self.ip, dst, src_port, dst_port,
                                   payload=payload, ip_id=ip_id))
            batch_bytes += record
        flush()
        return sent

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, interface: Interface) -> None:
        """Reassemble if needed, then demux to the registered listener."""
        self.rx_packets += 1
        self.rx_bytes += packet.total_len
        ip = packet.ip
        if ip.more_fragments or ip.fragment_offset > 0:
            if not self.reassemble:
                return  # host drops fragments
            complete = self.reassembler.add(packet, now=self.sim.now)
            if complete is None:
                return
            packet = complete
            ip = packet.ip

        if ip.protocol == IPProto.UDP:
            if self.caravan_imtu is not None:
                from ..core.caravan import decode_caravan, is_caravan

                if is_caravan(packet):
                    try:
                        datagrams = decode_caravan(packet)
                    except ValueError:
                        self.caravan_decode_errors += 1
                        return
                    for datagram in datagrams:
                        self._deliver_udp(datagram)
                    return
            self._deliver_udp(packet)
        elif ip.protocol == IPProto.TCP:
            tcp = packet.l4
            key = (tcp.dst_port, ip.src, tcp.src_port)
            listener = self._tcp_listeners.get(key) or self._tcp_accepting.get(
                tcp.dst_port
            )
            if listener:
                listener(packet)
            else:
                self.unclaimed.append(packet)
        elif ip.protocol == IPProto.ICMP:
            self._handle_icmp(packet)
        else:
            self.unclaimed.append(packet)

    def _deliver_udp(self, packet: Packet) -> None:
        listener = self._udp_listeners.get(packet.udp.dst_port)
        if listener:
            listener(packet, self)
        else:
            self.unclaimed.append(packet)

    def _handle_icmp(self, packet: Packet) -> None:
        message = packet.icmp
        if message.icmp_type == 8:  # echo request -> reply
            reply = build_icmp(self.ip, packet.ip.src, ICMPMessage.echo_reply(message))
            self.send(reply)
            return
        for listener in self._icmp_listeners:
            listener(packet, message)
