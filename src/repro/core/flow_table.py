"""The PXGW flow table: per-flow state with O(1) lookup and LRU eviction.

One lookup happens per received packet, so the table is a plain dict
(hash of the 5-tuple NamedTuple) fronted by an OrderedDict LRU.  The
per-flow record carries what the classifier and merge engines need:
packet/byte counters, the mouse/elephant verdict, and recency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Optional

from ..packet import FlowKey

__all__ = ["FlowState", "FlowTable"]


class FlowState:
    """Mutable per-flow record."""

    __slots__ = ("key", "packets", "bytes", "first_seen", "last_seen",
                 "is_elephant", "window_packets", "window_start")

    def __init__(self, key: FlowKey, now: float):
        self.key = key
        self.packets = 0
        self.bytes = 0
        self.first_seen = now
        self.last_seen = now
        self.is_elephant = False
        self.window_packets = 0
        self.window_start = now

    def touch(self, total_len: int, now: float) -> None:
        """Account one packet of this flow."""
        self.packets += 1
        self.bytes += total_len
        self.last_seen = now
        self.window_packets += 1

    def reset_window(self, now: float) -> None:
        """Start a new classification window."""
        self.window_packets = 0
        self.window_start = now


class FlowTable:
    """LRU-bounded flow state store."""

    def __init__(self, capacity: int = 1_000_000,
                 on_evict: Optional[Callable[[FlowState], None]] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.on_evict = on_evict
        self._flows: "OrderedDict[FlowKey, FlowState]" = OrderedDict()
        self.lookups = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._flows

    def __iter__(self) -> Iterator[FlowState]:
        return iter(self._flows.values())

    def lookup(self, key: FlowKey, now: float = 0.0) -> FlowState:
        """Find or create the flow record for *key*."""
        self.lookups += 1
        state = self._flows.get(key)
        if state is None:
            self.misses += 1
            state = FlowState(key, now)
            if len(self._flows) >= self.capacity:
                _evicted_key, evicted = self._flows.popitem(last=False)
                self.evictions += 1
                if self.on_evict:
                    self.on_evict(evicted)
            self._flows[key] = state
        else:
            self._flows.move_to_end(key)
        return state

    def peek(self, key: FlowKey) -> Optional[FlowState]:
        """Return the record without creating or promoting it."""
        return self._flows.get(key)

    def remove(self, key: FlowKey) -> Optional[FlowState]:
        """Delete and return a flow record."""
        return self._flows.pop(key, None)

    def snapshot(self) -> list:
        """Serialize every flow record, preserving LRU order.

        The result is plain tuples (no live references), safe to hold
        across arbitrary simulated time for failover.
        """
        return [
            (state.key, state.packets, state.bytes, state.first_seen,
             state.last_seen, state.is_elephant, state.window_packets,
             state.window_start)
            for state in self._flows.values()
        ]

    def restore(self, records: list) -> None:
        """Replace the table's contents with *records* from snapshot().

        The records' LRU order is preserved.  When there are more
        records than this table can hold — failover onto a standby
        configured with a smaller table — the excess is evicted
        LRU-first through ``on_evict``, exactly as capacity pressure
        would evict it, so the bound holds and the eviction counters
        stay honest.
        """
        self._flows.clear()
        for record in records:
            self._flows[record[0]] = self._inflate(record)
        while len(self._flows) > self.capacity:
            _evicted_key, evicted = self._flows.popitem(last=False)
            self.evictions += 1
            if self.on_evict:
                self.on_evict(evicted)

    def adopt(self, records: list) -> int:
        """Merge snapshot *records* into the table; returns count added.

        The rebalance path: a lost shard's flow records are adopted by
        the survivors that now own those flows.  Keys already present
        keep their live state (it is fresher than any checkpoint);
        adopted records enter at the MRU end in record order, and the
        capacity bound is enforced by LRU eviction through
        ``on_evict``.
        """
        adopted = 0
        for record in records:
            if record[0] in self._flows:
                continue
            if len(self._flows) >= self.capacity:
                _evicted_key, evicted = self._flows.popitem(last=False)
                self.evictions += 1
                if self.on_evict:
                    self.on_evict(evicted)
            self._flows[record[0]] = self._inflate(record)
            adopted += 1
        return adopted

    @staticmethod
    def _inflate(record: tuple) -> FlowState:
        """Rebuild one FlowState from its snapshot() tuple."""
        (key, packets, nbytes, first_seen, last_seen,
         is_elephant, window_packets, window_start) = record
        state = FlowState(key, first_seen)
        state.packets = packets
        state.bytes = nbytes
        state.last_seen = last_seen
        state.is_elephant = is_elephant
        state.window_packets = window_packets
        state.window_start = window_start
        return state

    def expire_idle(self, now: float, idle_timeout: float) -> int:
        """Drop flows idle past *idle_timeout*; returns count removed.

        Expiry is an eviction: it leaves the table through ``on_evict``
        and counts toward ``evictions``, so the exported eviction
        metrics cover idle churn, not just capacity pressure.
        """
        stale = [key for key, state in self._flows.items()
                 if now - state.last_seen > idle_timeout]
        for key in stale:
            state = self._flows.pop(key)
            self.evictions += 1
            if self.on_evict:
                self.on_evict(state)
        return len(stale)
