"""PX-caravan: UDP tunneling that preserves datagram boundaries (§4.1).

UDP datagrams cannot be merged or split arbitrarily — QUIC and friends
encrypt and frame per-datagram — so PXGW *tunnels* several datagrams of
the same flow inside one large packet.  Per Figure 3:

* the **outer** IP/UDP headers carry the entire caravan length and the
  flow's addressing; the IP ToS field is set to ``PX_CARAVAN_TOS`` to
  mark the packet as tunneled;
* each **inner** record is a verbatim UDP header (carrying that
  datagram's own length) followed by its payload.

For UDP_GRO compatibility the merge engine only chains *consecutive*
datagrams (adjacent IP IDs) of one flow with equal payload sizes (the
final datagram may be shorter), exactly as the paper's prototype is
configured.  Receivers inside the b-network must understand the format;
:func:`decode_caravan` is what a modified host stack runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..packet import PX_CARAVAN_TOS, IPProto, Packet, UDPHeader
from ..packet.flow import FlowKey
from ..packet.udp import UDP_HEADER_LEN

__all__ = [
    "is_caravan",
    "encode_caravan",
    "decode_caravan",
    "caravan_inner_count",
    "CaravanMergeEngine",
    "CaravanSplitEngine",
]


def is_caravan(packet: Packet) -> bool:
    """True when *packet* is a PX-caravan bundle."""
    return packet.is_udp and packet.ip.tos == PX_CARAVAN_TOS


def caravan_inner_count(packet: Packet) -> int:
    """Number of datagrams *packet* represents (1 for a plain packet).

    Counts only the complete inner records — a truncated caravan body
    yields the records that survived, which is what the conservation
    accounting needs when a damaged bundle is discarded.
    """
    if not is_caravan(packet):
        return 1
    cached = packet.meta.get("caravan_inner")
    if cached is not None:
        return cached
    body = packet.payload
    cursor = 0
    count = 0
    while cursor + UDP_HEADER_LEN <= len(body):
        inner = UDPHeader.unpack(body[cursor:])
        if inner.length < UDP_HEADER_LEN or cursor + inner.length > len(body):
            break
        count += 1
        cursor += inner.length
    return max(count, 1)


def encode_caravan(packets: List[Packet]) -> Packet:
    """Bundle same-flow UDP *packets* into one caravan packet.

    The outer headers are cloned from the first datagram; inner records
    are each datagram's UDP header plus payload.
    """
    if not packets:
        raise ValueError("cannot build an empty caravan")
    key = packets[0].flow_key()
    for packet in packets:
        if not packet.is_udp:
            raise ValueError("caravans carry UDP only")
        if packet.flow_key() != key:
            raise ValueError("caravan members must share one flow")
    if len(packets) == 1:
        return packets[0]

    chunks: List[bytes] = []
    for packet in packets:
        inner = UDPHeader(
            src_port=packet.udp.src_port,
            dst_port=packet.udp.dst_port,
        )
        chunks.append(inner.pack(packet.payload) + packet.payload)
    body = b"".join(chunks)

    first = packets[0]
    outer_ip = first.ip.copy(tos=PX_CARAVAN_TOS)
    outer_udp = UDPHeader(src_port=first.udp.src_port, dst_port=first.udp.dst_port,
                          length=UDP_HEADER_LEN + len(body))
    outer_ip.total_length = outer_ip.header_len + UDP_HEADER_LEN + len(body)
    caravan = Packet(ip=outer_ip, l4=outer_udp, payload=body)
    caravan.meta["caravan_inner"] = len(packets)
    return caravan


def decode_caravan(packet: Packet) -> List[Packet]:
    """Unpack a caravan back into its original datagrams.

    Restored datagrams inherit the outer addressing, a cleared ToS, and
    consecutive IP IDs continuing from the outer header — which keeps a
    downstream UDP_GRO re-merge possible.
    """
    if not is_caravan(packet):
        return [packet]
    datagrams: List[Packet] = []
    body = packet.payload
    cursor = 0
    index = 0
    while cursor < len(body):
        if cursor + UDP_HEADER_LEN > len(body):
            raise ValueError("truncated caravan inner header")
        inner = UDPHeader.unpack(body[cursor:])
        payload_len = inner.length - UDP_HEADER_LEN
        if payload_len < 0 or cursor + inner.length > len(body):
            raise ValueError("bad caravan inner length")
        payload = body[cursor + UDP_HEADER_LEN : cursor + inner.length]
        ip = packet.ip.copy(
            tos=0,
            identification=(packet.ip.identification + index) & 0xFFFF,
        )
        udp = UDPHeader(src_port=inner.src_port, dst_port=inner.dst_port,
                        length=inner.length)
        ip.total_length = ip.header_len + inner.length
        datagrams.append(Packet(ip=ip, l4=udp, payload=payload))
        cursor += inner.length
        index += 1
    if not datagrams:
        raise ValueError("empty caravan body")
    return datagrams


class _CaravanContext:
    """Datagrams accumulating toward one caravan."""

    __slots__ = ("packets", "bytes", "next_ip_id", "segment_size", "created_at", "last_at")

    def __init__(self, packet: Packet, now: float):
        self.packets = [packet]
        self.bytes = UDP_HEADER_LEN + len(packet.payload)
        self.next_ip_id = (packet.ip.identification + 1) & 0xFFFF
        self.segment_size = len(packet.payload)
        self.created_at = now
        self.last_at = now


class CaravanMergeEngine:
    """Accumulates same-flow UDP datagrams into caravans.

    ``max_payload`` bounds the outer UDP payload (iMTU - 28).  The
    UDP_GRO compatibility rules (consecutive IP IDs, equal sizes,
    shorter final datagram terminates) are enforced per context.
    """

    def __init__(self, max_payload: int, max_contexts: int = 4096,
                 require_consecutive_ids: bool = True):
        if max_payload < 2 * UDP_HEADER_LEN:
            raise ValueError("max_payload too small for any caravan")
        self.max_payload = max_payload
        self.max_contexts = max_contexts
        self.require_consecutive_ids = require_consecutive_ids
        self._contexts: "OrderedDict[FlowKey, _CaravanContext]" = OrderedDict()
        self.built = 0
        # Running totals across contexts: the gateway checks pending
        # state once per packet (flush timer, NIC memory budget), so
        # these must not iterate the context table.
        self._pending_packets = 0
        self._pending_bytes = 0

    def __len__(self) -> int:
        return len(self._contexts)

    def feed(self, packet: Packet, now: float = 0.0) -> List[Packet]:
        """Offer one datagram; returns caravans (or datagrams) to emit."""
        ip = packet.ip
        if ip.protocol != IPProto.UDP or ip.is_fragment or ip.tos == PX_CARAVAN_TOS:
            return [packet]
        key = packet.flow_key()
        context = self._contexts.get(key)
        record_len = UDP_HEADER_LEN + len(packet.payload)

        if context is not None:
            compatible = (
                context.bytes + record_len <= self.max_payload
                and len(packet.payload) <= context.segment_size
                and (
                    not self.require_consecutive_ids
                    or packet.ip.identification == context.next_ip_id
                )
            )
            if compatible:
                context.packets.append(packet)
                context.bytes += record_len
                self._pending_packets += 1
                self._pending_bytes += record_len
                context.next_ip_id = (packet.ip.identification + 1) & 0xFFFF
                context.last_at = now
                self._contexts.move_to_end(key)
                # A shorter datagram ends the bundle (UDP_GRO rule); so
                # does running out of room for another full record.
                next_record = UDP_HEADER_LEN + context.segment_size
                terminal = (
                    len(packet.payload) < context.segment_size
                    or context.bytes + next_record > self.max_payload
                )
                if terminal:
                    return self._flush_key(key)
                return []
            emitted = self._flush_key(key)
            emitted.extend(self._start(key, packet, now))
            return emitted
        return self._start(key, packet, now)

    def _start(self, key: FlowKey, packet: Packet, now: float) -> List[Packet]:
        emitted: List[Packet] = []
        if len(self._contexts) >= self.max_contexts:
            _key, evicted = self._contexts.popitem(last=False)
            self._pending_packets -= len(evicted.packets)
            self._pending_bytes -= evicted.bytes
            emitted.append(self._materialize(evicted))
        context = _CaravanContext(packet, now)
        self._contexts[key] = context
        self._pending_packets += 1
        self._pending_bytes += context.bytes
        return emitted

    def _materialize(self, context: _CaravanContext) -> Packet:
        # The batch-wait stamp rides in ``meta`` (never serialized, never
        # digest-hashed): how long the context existed before shipping,
        # read by the span tracker's px_caravan_batch_wait_seconds.
        if len(context.packets) == 1:
            packet = context.packets[0]
            packet.meta["caravan_first_at"] = context.created_at
            return packet
        self.built += 1
        caravan = encode_caravan(context.packets)
        caravan.meta["caravan_first_at"] = context.created_at
        return caravan

    def _flush_key(self, key: FlowKey) -> List[Packet]:
        context = self._contexts.pop(key, None)
        if context is None:
            return []
        self._pending_packets -= len(context.packets)
        self._pending_bytes -= context.bytes
        return [self._materialize(context)]

    def flush(self) -> List[Packet]:
        """Flush everything pending."""
        emitted = [self._materialize(context) for context in self._contexts.values()]
        self._contexts.clear()
        self._pending_packets = 0
        self._pending_bytes = 0
        return emitted

    def flush_older_than(self, now: float, max_age: float) -> List[Packet]:
        """Flush contexts older than *max_age* (the merge-delay budget).

        Age-based so a slow steady stream cannot hold datagrams beyond
        the budget.
        """
        stale = [key for key, context in self._contexts.items()
                 if now - context.created_at >= max_age]
        emitted: List[Packet] = []
        for key in stale:
            emitted.extend(self._flush_key(key))
        return emitted

    def export_pending(self) -> List[Packet]:
        """Materialized copies of every pending context, non-destructive.

        The live contexts are untouched; a single-datagram context is
        exported as a *copy* so the checkpoint never aliases a packet
        the datapath may still emit.
        """
        out: List[Packet] = []
        for context in self._contexts.values():
            if len(context.packets) == 1:
                out.append(context.packets[0].copy())
            else:
                out.append(encode_caravan(list(context.packets)))
        return out

    def pending_packets(self) -> int:
        """Datagrams currently held in contexts (O(1))."""
        return self._pending_packets

    def pending_bytes(self) -> int:
        """Payload+record bytes currently held in contexts (O(1))."""
        return self._pending_bytes


class CaravanSplitEngine:
    """Opens caravans at the b-network egress back into datagrams."""

    def __init__(self):
        self.opened = 0

    def process(self, packet: Packet) -> List[Packet]:
        """Split if *packet* is a caravan; otherwise pass through."""
        if not is_caravan(packet):
            return [packet]
        self.opened += 1
        return decode_caravan(packet)
