"""The iMTU exchange protocol between neighboring PXGWs (§4.2).

When b-networks neighbor each other, their gateways can skip
translation for traffic crossing between them — but only if each knows
the peer's iMTU.  The paper sketches two dissemination options
(augmented BGP announcements, or "a new messaging protocol that runs on
PXGW"); this module implements the latter as a minimal soft-state
protocol:

* a gateway periodically sends an ANNOUNCE (magic, version, iMTU,
  hold-time) out of each external interface to the link peer;
* a receiving gateway records the advertised iMTU against the arrival
  interface, valid for the hold time;
* missing refreshes let the entry expire, falling back to translation —
  so a decommissioned or rebooted peer fails safe.

Wire format (UDP, port :data:`IMTU_EXCHANGE_PORT`) — hold time in
tenths of a second (max ~109 minutes)::

    0      4       5         7              9
    +------+-------+---------+--------------+
    | PXIM | ver=1 | iMTU u16| hold u16 ds  |
    +------+-------+---------+--------------+
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

from ..packet import Packet, build_udp

__all__ = ["IMTU_EXCHANGE_PORT", "pack_announcement", "parse_announcement", "ImtuSpeaker"]

IMTU_EXCHANGE_PORT = 7839
_MAGIC = b"PXIM"
_VERSION = 1


def pack_announcement(imtu: int, hold_time: float) -> bytes:
    """Serialize an ANNOUNCE message (hold time in seconds)."""
    if not 576 <= imtu <= 65535:
        raise ValueError(f"iMTU out of range: {imtu}")
    deciseconds = int(round(hold_time * 10))
    if not 1 <= deciseconds <= 65535:
        raise ValueError(f"hold time out of range: {hold_time}")
    return _MAGIC + struct.pack("!BHH", _VERSION, imtu, deciseconds)


def parse_announcement(payload: bytes) -> "Optional[Tuple[int, float]]":
    """Parse an ANNOUNCE; returns (imtu, hold_seconds) or None if invalid."""
    if len(payload) < 9 or payload[:4] != _MAGIC:
        return None
    version, imtu, deciseconds = struct.unpack_from("!BHH", payload, 4)
    if version != _VERSION:
        return None
    return imtu, deciseconds / 10.0


class ImtuSpeaker:
    """Runs the iMTU exchange for one gateway.

    Announces the gateway's own iMTU out of every *external* interface
    on a timer, and installs/expires learned neighbor iMTUs.  Attach
    with :meth:`repro.core.PXGateway.enable_imtu_exchange`.
    """

    def __init__(self, gateway, interval: float = 30.0, hold_time: float = 90.0):
        if hold_time <= interval:
            raise ValueError("hold time must exceed the announce interval")
        self.gateway = gateway
        self.sim = gateway.sim
        self.interval = interval
        self.hold_time = hold_time
        self.announcements_sent = 0
        self.announcements_received = 0
        #: interface-id -> absolute expiry time of the learned entry.
        self._expiry: Dict[int, float] = {}
        self._timer = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic announcements (first one immediately)."""
        self._announce()

    def stop(self) -> None:
        """Stop announcing (learned entries still expire naturally)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _announce(self) -> None:
        payload = pack_announcement(self.gateway.config.imtu, self.hold_time)
        for interface in self.gateway.interfaces:
            if self.gateway.is_internal(interface) or interface.link is None:
                continue
            peer_ip = interface.link.dst.ip
            packet = build_udp(
                interface.ip, peer_ip, IMTU_EXCHANGE_PORT, IMTU_EXCHANGE_PORT,
                payload=payload, ttl=1,  # link-local by construction
            )
            interface.send(packet)
            self.announcements_sent += 1
        self._timer = self.sim.schedule(self.interval, self._announce)

    # ------------------------------------------------------------------
    def handle(self, packet: Packet, interface) -> bool:
        """Process a possible ANNOUNCE arriving at *interface*.

        Returns True when consumed.  Called by the gateway's local
        delivery path.
        """
        if not packet.is_udp or packet.udp.dst_port != IMTU_EXCHANGE_PORT:
            return False
        parsed = parse_announcement(packet.payload)
        if parsed is None:
            return True  # ours, but malformed: swallow
        imtu, hold_time = parsed
        self.announcements_received += 1
        self.gateway.set_neighbor_imtu(interface, imtu)
        self._expiry[id(interface)] = self.sim.now + min(hold_time, self.hold_time)
        self.sim.schedule(min(hold_time, self.hold_time), self._check_expiry, interface)
        return True

    def _check_expiry(self, interface) -> None:
        expiry = self._expiry.get(id(interface))
        if expiry is not None and self.sim.now >= expiry:
            self.gateway.clear_neighbor_imtu(interface)
            del self._expiry[id(interface)]
