"""PXGW's TCP merge engine: a per-flow byte-stream resegmenter.

Unlike end-host LRO/GRO (which coalesce whole wire packets), PXGW
exploits TCP's byte-stream nature fully: in-order payload bytes of a
flow are spliced into a per-flow buffer and re-emitted as exactly
iMTU-sized segments, with the remainder carried over into the next
output.  This is what lets the prototype convert 93–94 % of packets to
full 9000 B jumbos even though 1448 B input payloads never divide the
iMTU evenly.

Conformance rules:

* only in-order data bytes are spliced; an out-of-order arrival flushes
  the buffer and restarts (the gap must reach the receiver for dup-ACK
  recovery to work);
* SYN/FIN/RST/URG segments flush the flow and pass through verbatim;
* pure ACKs pass through untouched;
* the latest ACK/window seen is copied onto emitted segments so the
  reverse-path information stays fresh.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, List, Optional

from ..packet import IPProto, Packet, TCPFlags
from ..packet.builder import next_ip_id
from ..packet.flow import FlowKey

__all__ = ["TcpMergeEngine", "StreamContext"]

_NO_MERGE_FLAGS = TCPFlags.SYN | TCPFlags.FIN | TCPFlags.RST | TCPFlags.URG
_SEQ_MOD = 1 << 32


class StreamContext:
    """Buffered in-order bytes of one flow awaiting re-segmentation."""

    __slots__ = ("template", "chunks", "head_offset", "buffered", "base_seq",
                 "next_seq", "last_ack", "last_window", "created_at", "last_at",
                 "spliced_packets")

    def __init__(self, packet: Packet, now: float):
        tcp = packet.tcp
        payload = packet.payload
        self.template = packet
        self.chunks: Deque[bytes] = deque((payload,))
        #: Bytes of ``chunks[0]`` already consumed by :meth:`take` —
        #: indexing instead of reslicing keeps partial takes O(taken).
        self.head_offset = 0
        self.buffered = len(payload)
        self.base_seq = tcp.seq
        self.next_seq = (tcp.seq + len(payload)) % _SEQ_MOD
        self.last_ack = tcp.ack
        self.last_window = tcp.window
        self.created_at = now
        self.last_at = now
        self.spliced_packets = 1

    def append(self, packet: Packet, now: float) -> None:
        tcp = packet.tcp
        payload = packet.payload
        self.chunks.append(payload)
        self.buffered += len(payload)
        self.next_seq = (tcp.seq + len(payload)) % _SEQ_MOD
        self.last_ack = tcp.ack
        self.last_window = tcp.window
        self.last_at = now
        self.spliced_packets += 1

    def take(self, nbytes: int) -> bytes:
        """Remove and return the first *nbytes* of buffered payload.

        ``deque.popleft`` keeps chunk draining O(1) per chunk (the old
        ``list.pop(0)`` shifted the whole list, making a full drain
        O(n²) in chunks); a partially consumed head chunk is tracked by
        ``head_offset`` rather than resliced.
        """
        out = bytearray()
        chunks = self.chunks
        offset = self.head_offset
        while nbytes > 0 and chunks:
            head = chunks[0]
            available = len(head) - offset
            if available <= nbytes:
                out += head[offset:] if offset else head
                nbytes -= available
                chunks.popleft()
                offset = 0
            else:
                out += head[offset : offset + nbytes]
                offset += nbytes
                nbytes = 0
        self.head_offset = offset
        self.buffered -= len(out)
        return bytes(out)

    def make_segment(self, payload: bytes) -> Packet:
        """Emit one spliced segment starting at ``base_seq``."""
        segment = self.template.copy()
        segment.payload = payload
        tcp = segment.tcp
        ip = segment.ip
        tcp.seq = self.base_seq
        tcp.ack = self.last_ack
        tcp.window = self.last_window
        tcp.flags = TCPFlags.ACK
        ip.identification = next_ip_id()
        ip.total_length = ip.header_len + tcp.header_len + len(payload)
        segment.meta["spliced"] = True
        self.base_seq = (self.base_seq + len(payload)) % _SEQ_MOD
        return segment

    def export_segment(self) -> Packet:
        """A materialized copy of the whole buffer, without consuming it.

        Used by failover checkpoints: the running context keeps its
        bytes; the checkpoint holds an emittable duplicate.
        """
        if self.head_offset:
            rest = iter(self.chunks)
            payload = next(rest)[self.head_offset :] + b"".join(rest)
        else:
            payload = b"".join(self.chunks)
        segment = self.template.copy()
        segment.payload = payload
        tcp = segment.tcp
        ip = segment.ip
        tcp.seq = self.base_seq
        tcp.ack = self.last_ack
        tcp.window = self.last_window
        tcp.flags = TCPFlags.ACK
        ip.identification = next_ip_id()
        ip.total_length = ip.header_len + tcp.header_len + len(payload)
        segment.meta["spliced"] = True
        return segment


class TcpMergeEngine:
    """Splices per-flow TCP streams into ``target_payload``-sized segments."""

    def __init__(self, target_payload: int, max_contexts: int = 4096):
        if target_payload <= 0:
            raise ValueError("target payload must be positive")
        self.target_payload = target_payload
        self.max_contexts = max_contexts
        self._contexts: "OrderedDict[FlowKey, StreamContext]" = OrderedDict()
        self.spliced_out = 0
        self.evictions = 0
        #: Running sum of ``context.buffered`` across all contexts, so
        #: the per-packet ``pending_bytes`` checks (flush timer,
        #: header-only DMA budget) never iterate the context table.
        self._pending_bytes = 0

    def __len__(self) -> int:
        return len(self._contexts)

    # ------------------------------------------------------------------
    def feed(self, packet: Packet, now: float = 0.0) -> List[Packet]:
        """Offer one packet; returns segments ready to transmit."""
        ip = packet.ip
        if ip.protocol != IPProto.TCP or ip.is_fragment:
            return [packet]
        tcp = packet.tcp
        key = packet.flow_key()

        if tcp.flags & _NO_MERGE_FLAGS:
            return self._flush_key(key) + [packet]
        if not packet.payload:
            return [packet]

        context = self._contexts.get(key)
        if context is None:
            return self._open(key, packet, now)

        if tcp.seq == context.next_seq:
            context.append(packet, now)
            self._pending_bytes += len(packet.payload)
            self._contexts.move_to_end(key)
            return self._drain_full(key, context)

        # Out-of-order: flush buffered bytes, then restart at the new seq.
        emitted = self._flush_key(key)
        emitted.extend(self._open(key, packet, now))
        return emitted

    def _open(self, key: FlowKey, packet: Packet, now: float) -> List[Packet]:
        emitted: List[Packet] = []
        if len(self._contexts) >= self.max_contexts:
            evicted_key, _ = next(iter(self._contexts.items()))
            emitted.extend(self._flush_key(evicted_key))
            self.evictions += 1
        context = StreamContext(packet, now)
        self._contexts[key] = context
        self._pending_bytes += context.buffered
        emitted.extend(self._drain_full(key, context))
        return emitted

    def _drain_full(self, key: FlowKey, context: StreamContext) -> List[Packet]:
        """Emit as many exactly-full segments as the buffer allows."""
        emitted: List[Packet] = []
        while context.buffered >= self.target_payload:
            payload = context.take(self.target_payload)
            self._pending_bytes -= len(payload)
            emitted.append(context.make_segment(payload))
            self.spliced_out += 1
            # The oldest remaining bytes arrived around the last append.
            context.created_at = context.last_at
        if context.buffered == 0:
            self._contexts.pop(key, None)
        return emitted

    def _flush_key(self, key: Optional[FlowKey]) -> List[Packet]:
        context = self._contexts.pop(key, None) if key is not None else None
        if context is None or context.buffered == 0:
            return []
        payload = context.take(context.buffered)
        self._pending_bytes -= len(payload)
        self.spliced_out += 1
        return [context.make_segment(payload)]

    # ------------------------------------------------------------------
    def flush(self, key: Optional[FlowKey] = None) -> List[Packet]:
        """Flush one flow, or everything when *key* is None."""
        if key is not None:
            return self._flush_key(key)
        emitted: List[Packet] = []
        for pending_key in list(self._contexts):
            emitted.extend(self._flush_key(pending_key))
        return emitted

    def flush_older_than(self, now: float, max_age: float) -> List[Packet]:
        """Flush contexts whose *oldest* buffered byte exceeds *max_age*.

        Age-based (not idle-based) flushing is what bounds the latency
        a held byte can accrue: a steady trickle slower than the fill
        rate never goes idle, but its bytes must still ship within the
        merge-delay budget.
        """
        stale = [
            key
            for key, context in self._contexts.items()
            if now - context.created_at >= max_age
        ]
        emitted: List[Packet] = []
        for key in stale:
            emitted.extend(self._flush_key(key))
        return emitted

    def export_pending(self) -> List[Packet]:
        """Materialized copies of every pending context, non-destructive.

        The live contexts are untouched; see failover checkpoints.
        """
        return [
            context.export_segment()
            for context in self._contexts.values()
            if context.buffered > 0
        ]

    def pending_bytes(self) -> int:
        """Payload bytes currently buffered across all flows (O(1))."""
        return self._pending_bytes
