"""Traffic classification: separating merge-friendly elephants from mice.

Small, sporadic flows are typically unmergeable — there is rarely a
contiguous successor waiting — yet they consume merge-engine cycles and
pollute contexts.  PXGW classifies flows online and steers mice through
the NIC hairpin path (§3, §4.1).  A flow is promoted to elephant after
``threshold_packets`` arrivals within a sliding window; promotion is
sticky until the flow goes idle.
"""

from __future__ import annotations

from ..packet import Packet
from .flow_table import FlowState, FlowTable

__all__ = ["FlowClassifier"]


class FlowClassifier:
    """Online mouse/elephant classification over a FlowTable."""

    def __init__(
        self,
        table: FlowTable,
        threshold_packets: int = 8,
        window: float = 0.01,
    ):
        self.table = table
        self.threshold_packets = threshold_packets
        self.window = window
        self.promotions = 0

    def observe(self, packet: Packet, now: float = 0.0, size: "int | None" = None) -> FlowState:
        """Account *packet* and return its (possibly promoted) flow state.

        *size* is the packet's ``total_len`` when the caller already
        computed it for its own accounting.
        """
        key = packet.flow_key()
        if key is None:
            raise ValueError("cannot classify a packet without a flow key")
        state = self.table.lookup(key, now)
        if now - state.window_start > self.window:
            state.reset_window(now)
        state.touch(packet.total_len if size is None else size, now)
        if not state.is_elephant and state.window_packets >= self.threshold_packets:
            state.is_elephant = True
            self.promotions += 1
        return state
