"""Traffic classification: separating merge-friendly elephants from mice.

Small, sporadic flows are typically unmergeable — there is rarely a
contiguous successor waiting — yet they consume merge-engine cycles and
pollute contexts.  PXGW classifies flows online and steers mice through
the NIC hairpin path (§3, §4.1).  A flow is promoted to elephant after
``threshold_packets`` arrivals within a sliding window; promotion is
sticky until the flow goes idle.
"""

from __future__ import annotations

from ..packet import Packet
from .flow_table import FlowState, FlowTable

__all__ = ["FlowClassifier"]


class FlowClassifier:
    """Online mouse/elephant classification over a FlowTable."""

    def __init__(
        self,
        table: FlowTable,
        threshold_packets: int = 8,
        window: float = 0.01,
    ):
        self.table = table
        self.threshold_packets = threshold_packets
        self.window = window
        self.promotions = 0

    def observe(self, packet: Packet, now: float = 0.0, size: "int | None" = None) -> FlowState:
        """Account *packet* and return its (possibly promoted) flow state.

        *size* is the packet's ``total_len`` when the caller already
        computed it for its own accounting.
        """
        key = packet.flow_key()
        if key is None:
            raise ValueError("cannot classify a packet without a flow key")
        state = self.table.lookup(key, now)
        if now - state.window_start > self.window:
            state.reset_window(now)
        state.touch(packet.total_len if size is None else size, now)
        if not state.is_elephant and state.window_packets >= self.threshold_packets:
            state.is_elephant = True
            self.promotions += 1
        return state

    def observe_group(self, key, now: float = 0.0) -> "FlowState":
        """Flow-table prologue for a batch of same-flow packets.

        One table lookup (and one window check — every packet in a poll
        batch shares the same ``now``) covers the whole group; the
        caller accounts each packet with :meth:`FlowState.touch` and
        :meth:`promote_if_due` so per-packet classification decisions —
        including a mid-batch elephant promotion — match the scalar
        path exactly.  ``table.lookups`` counts one lookup per group,
        which is precisely the work the batched prologue performs.
        """
        state = self.table.lookup(key, now)
        if now - state.window_start > self.window:
            state.reset_window(now)
        return state

    def promote_if_due(self, state: "FlowState") -> None:
        """Apply the elephant-promotion rule after a ``touch``."""
        if not state.is_elephant and state.window_packets >= self.threshold_packets:
            state.is_elephant = True
            self.promotions += 1
