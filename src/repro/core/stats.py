"""Gateway statistics, including the paper's conversion-yield metric."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["GatewayStats"]


@dataclass
class GatewayStats:
    """Counters kept by each worker and aggregated for reporting.

    *Conversion yield* (§5.1) is the fraction of data packets emitted
    toward the b-network that are full-iMTU-sized after merging — the
    paper reports 93–94 % for PX vs 76 % for the DPDK-GRO baseline.
    """

    rx_packets: int = 0
    tx_packets: int = 0
    merged_packets: int = 0
    split_segments: int = 0
    caravans_built: int = 0
    caravans_opened: int = 0
    hairpinned: int = 0
    mss_rewrites: int = 0
    #: Packets charged at full-DMA rates because the on-NIC memory was
    #: exhausted while header-only DMA was enabled.
    hdo_fallbacks: int = 0
    #: Data packets forwarded unmerged because the worker was DEGRADED.
    passthrough_packets: int = 0
    #: Packets hairpinned past the whole pipeline in BYPASS mode.
    bypassed_packets: int = 0
    #: Datagrams sent plain because caravan negotiation withheld
    #: bundling toward their peer.
    caravans_suppressed: int = 0
    #: TCP payload bytes offered to / emitted by the merge+split engines.
    #: Both engines conserve payload bytes exactly, so at any instant
    #: ``tcp_payload_in == tcp_payload_out + merge.pending_bytes()``.
    tcp_payload_in: int = 0
    tcp_payload_out: int = 0
    #: UDP datagrams offered to / emitted by the caravan engines, with a
    #: caravan counted as its inner-record total.  At any instant
    #: ``udp_datagrams_in == udp_datagrams_out
    #:   + caravan_merge.pending_packets() + udp_datagrams_malformed``.
    udp_datagrams_in: int = 0
    udp_datagrams_out: int = 0
    #: Datagrams discarded because a caravan failed to decode (a
    #: damaged bundle reaching the split engine).
    udp_datagrams_malformed: int = 0
    #: Caravans the split engine refused to open (truncated/garbled).
    malformed_caravans: int = 0
    #: Histogram of emitted inbound data-packet total lengths.
    inbound_size_histogram: Dict[int, int] = field(default_factory=dict)
    inbound_data_packets: int = 0
    inbound_full_packets: int = 0
    inbound_data_bytes: int = 0
    inbound_full_bytes: int = 0

    def note_inbound_data_packet(self, total_len: int, imtu: int, slack: int = 128) -> None:
        """Record one data packet emitted toward the b-network.

        A packet counts as "full" when within *slack* bytes of the iMTU:
        the last segment of a stream is legitimately short, and a
        caravan of fixed-size records cannot always reach the iMTU
        exactly (6 records of 1480 B top out at 8908 B under a 9000 B
        iMTU).
        """
        self.inbound_data_packets += 1
        self.inbound_data_bytes += total_len
        self.inbound_size_histogram[total_len] = (
            self.inbound_size_histogram.get(total_len, 0) + 1
        )
        if total_len >= imtu - slack:
            self.inbound_full_packets += 1
            self.inbound_full_bytes += total_len

    @property
    def conversion_yield(self) -> float:
        """Packet-weighted fraction of inbound data packets at full iMTU."""
        if self.inbound_data_packets == 0:
            return 0.0
        return self.inbound_full_packets / self.inbound_data_packets

    @property
    def conversion_yield_bytes(self) -> float:
        """Byte-weighted conversion yield."""
        if self.inbound_data_bytes == 0:
            return 0.0
        return self.inbound_full_bytes / self.inbound_data_bytes

    def conservation_errors(
        self, pending_tcp_bytes: int = 0, pending_datagrams: int = 0
    ) -> "Dict[str, int]":
        """Violations of the gateway's conservation identities.

        Returns a dict of nonzero imbalances (empty = consistent):

        * ``tcp_bytes``: payload bytes that entered the merge/split
          engines minus bytes emitted minus bytes still buffered;
        * ``udp_datagrams``: datagrams in minus (out + still pending +
          discarded as malformed).

        The caller supplies the engines' live buffer occupancy
        (``merge.pending_bytes()`` / ``caravan_merge.pending_packets()``).
        """
        errors: Dict[str, int] = {}
        tcp_delta = self.tcp_payload_in - self.tcp_payload_out - pending_tcp_bytes
        if tcp_delta:
            errors["tcp_bytes"] = tcp_delta
        udp_delta = (
            self.udp_datagrams_in
            - self.udp_datagrams_out
            - pending_datagrams
            - self.udp_datagrams_malformed
        )
        if udp_delta:
            errors["udp_datagrams"] = udp_delta
        return errors

    def merge(self, other: "GatewayStats") -> None:
        """Fold a worker's stats into this aggregate."""
        self.rx_packets += other.rx_packets
        self.tx_packets += other.tx_packets
        self.merged_packets += other.merged_packets
        self.split_segments += other.split_segments
        self.caravans_built += other.caravans_built
        self.caravans_opened += other.caravans_opened
        self.hairpinned += other.hairpinned
        self.mss_rewrites += other.mss_rewrites
        self.hdo_fallbacks += other.hdo_fallbacks
        self.passthrough_packets += other.passthrough_packets
        self.bypassed_packets += other.bypassed_packets
        self.caravans_suppressed += other.caravans_suppressed
        self.tcp_payload_in += other.tcp_payload_in
        self.tcp_payload_out += other.tcp_payload_out
        self.udp_datagrams_in += other.udp_datagrams_in
        self.udp_datagrams_out += other.udp_datagrams_out
        self.udp_datagrams_malformed += other.udp_datagrams_malformed
        self.malformed_caravans += other.malformed_caravans
        self.inbound_data_packets += other.inbound_data_packets
        self.inbound_full_packets += other.inbound_full_packets
        self.inbound_data_bytes += other.inbound_data_bytes
        self.inbound_full_bytes += other.inbound_full_bytes
        for size, count in other.inbound_size_histogram.items():
            self.inbound_size_histogram[size] = (
                self.inbound_size_histogram.get(size, 0) + count
            )
