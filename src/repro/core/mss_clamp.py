"""MSS negotiation intervention (§4.1).

The MSS of a TCP connection is fixed at handshake by the endpoints, so
without intervention an inside sender never emits segments larger than
the *outside* peer's (eMTU-derived) MSS, and the b-network's iMTU goes
unused on the TX path.  PXGW rewrites the MSS option on SYN/SYN-ACK
packets as they cross the border:

* heading **into** the b-network, the option is raised to the iMTU's
  MSS — the gateway promises to merge/split on the endpoint's behalf;
* heading **out**, it is capped at the eMTU's MSS so the external peer
  never sends segments the external path cannot carry.
"""

from __future__ import annotations

from ..packet import Packet
from .config import Bound, GatewayConfig

__all__ = ["MssClamp"]


class MssClamp:
    """Rewrites TCP MSS options on handshake packets crossing the border."""

    def __init__(self, config: GatewayConfig):
        self.config = config
        self.raised = 0
        self.capped = 0

    @property
    def inside_mss(self) -> int:
        return self.config.imtu - 40

    @property
    def outside_mss(self) -> int:
        return self.config.emtu - 40

    def process(self, packet: Packet, bound: str, allow_raise: bool = True) -> bool:
        """Rewrite the MSS option in place if warranted.

        Returns True when a rewrite happened.  Non-SYN packets and
        packets without an MSS option are untouched.  With
        ``allow_raise=False`` (a degraded gateway that will not merge)
        the inbound raise is skipped; the outbound cap is always
        applied — it is a correctness bound, not an optimization.
        """
        if not packet.is_tcp or not packet.tcp.syn:
            return False
        current = packet.tcp.mss_option
        if current is None:
            return False
        if bound == Bound.INBOUND:
            if not allow_raise:
                return False
            target = self.inside_mss
            if current < target:
                # own_l4: the SYN may share its header with an upstream
                # fork; materialize before rewriting in place.
                packet.own_l4().replace_mss(target)
                packet.meta["mss_raised_from"] = current
                self.raised += 1
                return True
            return False
        target = self.outside_mss
        if current > target:
            packet.own_l4().replace_mss(target)
            packet.meta["mss_capped_from"] = current
            self.capped += 1
            return True
        return False
