"""Multi-core PXGW datapath: RSS sharding over gateway workers.

Flows are pinned to workers by the real Toeplitz hash, so per-worker
load imbalance (and its throughput penalty: the hottest core bounds the
system) is emergent.  This module is the entry point the Figure 5
benchmarks drive directly; the simulator-facing :class:`PXGateway`
wraps a single worker for in-topology use.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..cpu import DEFAULT_GATEWAY_COSTS, CpuSpec, CycleAccount, GatewayCosts
from ..nic.rss import RssDistributor
from ..packet import Packet
from .config import GatewayConfig
from .stats import GatewayStats
from .worker import GatewayWorker

__all__ = ["GatewayDatapath"]


class GatewayDatapath:
    """An N-worker PXGW instance processing offline packet streams."""

    def __init__(
        self,
        config: GatewayConfig,
        costs: GatewayCosts = DEFAULT_GATEWAY_COSTS,
    ):
        self.config = config
        self.costs = costs
        self.workers = [
            GatewayWorker(config, costs=costs, index=index)
            for index in range(config.workers)
        ]
        self.rss = RssDistributor(queues=config.workers)
        self._unkeyed_rr = 0
        self._virtual_now = 0.0

    # ------------------------------------------------------------------
    def worker_for(self, packet: Packet) -> GatewayWorker:
        """The worker whose queue RSS steers *packet* to."""
        key = packet.flow_key()
        if key is None:
            # Fragments/ICMP go round-robin, as NICs without a parseable
            # 4-tuple fall back to IP-pair hashing.
            self._unkeyed_rr = (self._unkeyed_rr + 1) % len(self.workers)
            return self.workers[self._unkeyed_rr]
        return self.workers[self.rss.queue_for(key)]

    def process(self, packet: Packet, bound: str, now: float = 0.0) -> List[Packet]:
        """Process one packet on its assigned worker."""
        return self.worker_for(packet).process(packet, bound, now)

    def process_batch(
        self, packets: "List[Tuple[Packet, str]]", now: float = 0.0
    ) -> List[Packet]:
        """RSS-shard one poll burst and run each share as a worker batch.

        Packets are bucketed per ``(worker, bound)`` in arrival order,
        then each bucket goes through
        :meth:`~repro.core.worker.GatewayWorker.process_batch` — the
        amortized prologue runs once per bucket instead of once per
        packet.  Egress order is bucket-grouped (buckets in first-seen
        order), matching the batch path's flow-grouped contract.
        """
        shares: Dict[Tuple[int, str], List[Packet]] = {}
        worker_for = self.worker_for
        for packet, bound in packets:
            slot = (worker_for(packet).index, bound)
            share = shares.get(slot)
            if share is None:
                shares[slot] = [packet]
            else:
                share.append(packet)
        outputs: List[Packet] = []
        workers = self.workers
        for (index, bound), share in shares.items():
            outputs.extend(workers[index].process_batch(share, bound, now))
        return outputs

    def process_stream(
        self,
        stream: Iterable[Tuple[Packet, str]],
        batch_interval: float = 1.5e-6,
        final_flush: bool = True,
        batched: bool = False,
    ) -> List[Packet]:
        """Process a (packet, bound) stream with periodic batch boundaries.

        ``batch_interval`` approximates the wall-clock spacing of poll
        batches at line rate (64 mixed packets every ~1.5 us at Tbps
        load); it advances a virtual clock that drives the
        delayed-merge timers.  Keep ``final_flush`` off when measuring
        steady-state yield — the artificial end-of-stream flush emits
        one partial segment per flow that a continuous run would not.

        ``batched`` routes each poll batch through
        :meth:`process_batch` (vectorized worker dispatch) instead of
        packet-at-a-time :meth:`process`; per-flow semantics are
        identical, egress order is flow-grouped within each batch.
        """
        outputs: List[Packet] = []
        now = self._virtual_now
        poll_batch = self.config.poll_batch
        if batched:
            chunk: List[Tuple[Packet, str]] = []
            append = chunk.append
            for item in stream:
                append(item)
                if len(chunk) >= poll_batch:
                    outputs.extend(self.process_batch(chunk, now))
                    chunk = []
                    append = chunk.append
                    now += batch_interval
                    for worker in self.workers:
                        outputs.extend(worker.end_batch(now))
            if chunk:
                outputs.extend(self.process_batch(chunk, now))
        else:
            fill = 0
            for packet, bound in stream:
                outputs.extend(self.process(packet, bound, now))
                fill += 1
                if fill >= poll_batch:
                    now += batch_interval
                    fill = 0
                    for worker in self.workers:
                        outputs.extend(worker.end_batch(now))
        if final_flush:
            now += self.config.merge_timeout * 2
            for worker in self.workers:
                outputs.extend(worker.end_batch(now))
        self._virtual_now = now
        return outputs

    def reset_measurement(self) -> None:
        """Zero stats and cycle accounts, keeping all datapath state.

        Benchmarks warm the flow tables and merge contexts up first,
        then reset and measure steady state.
        """
        from .stats import GatewayStats

        for worker in self.workers:
            worker.stats = GatewayStats()
            worker.account = CycleAccount()

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def combined_stats(self) -> GatewayStats:
        """Aggregate stats over workers."""
        total = GatewayStats()
        for worker in self.workers:
            total.merge(worker.stats)
        return total

    def combined_account(self) -> CycleAccount:
        """Aggregate cycle account over workers."""
        total = CycleAccount()
        for worker in self.workers:
            total.merge(worker.account)
        return total

    @property
    def conversion_yield(self) -> float:
        return self.combined_stats().conversion_yield

    def sustainable_throughput_bps(self, spec: CpuSpec) -> float:
        """Forwarding throughput (bits/s of IP packets) on *spec*.

        CPU bound: traffic splits across workers in the measured
        proportion, so the hottest worker's cycles-per-forwarded-byte
        bounds the system.  Memory bound: aggregate DRAM traffic is a
        shared resource.
        """
        total_bytes = sum(worker.account.goodput_bytes for worker in self.workers)
        if total_bytes == 0:
            return 0.0
        max_cycles = max(worker.account.cycles for worker in self.workers)
        cpu_bound = float("inf")
        if max_cycles > 0:
            cpu_bound = spec.clock_hz / max_cycles * total_bytes * 8
        total_mem = sum(worker.account.mem_bytes for worker in self.workers)
        mem_bound = float("inf")
        if total_mem > 0:
            mem_bound = spec.mem_bw_bytes_per_sec / total_mem * total_bytes * 8
        bound = min(cpu_bound, mem_bound)
        return 0.0 if bound == float("inf") else bound
