"""PacketExpress core: the PXGW MTU-translating gateway."""

from .caravan import (
    CaravanMergeEngine,
    CaravanSplitEngine,
    caravan_inner_count,
    decode_caravan,
    encode_caravan,
    is_caravan,
)
from .classifier import FlowClassifier
from .config import Bound, GatewayConfig
from .dispatch import GatewayDatapath
from .flow_table import FlowState, FlowTable
from .gateway import FPMTUD_PORT, PXGateway
from .imtu_exchange import IMTU_EXCHANGE_PORT, ImtuSpeaker
from .mss_clamp import MssClamp
from .stats import GatewayStats
from .tcp_merge import TcpMergeEngine
from .tcp_split import TcpSplitEngine
from .worker import GatewayWorker, WorkerMode

__all__ = [
    "GatewayConfig",
    "Bound",
    "PXGateway",
    "FPMTUD_PORT",
    "ImtuSpeaker",
    "IMTU_EXCHANGE_PORT",
    "GatewayDatapath",
    "GatewayWorker",
    "WorkerMode",
    "GatewayStats",
    "FlowTable",
    "FlowState",
    "FlowClassifier",
    "MssClamp",
    "TcpMergeEngine",
    "TcpSplitEngine",
    "CaravanMergeEngine",
    "CaravanSplitEngine",
    "encode_caravan",
    "decode_caravan",
    "caravan_inner_count",
    "is_caravan",
]
