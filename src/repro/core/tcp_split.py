"""PXGW's TCP split engine: stateless TSO-style segmentation at egress.

Splitting needs no flow state — each oversized segment is cut into
eMTU-sized pieces independently — which is why the paper calls
segmentation "inherently scalable" in contrast to merging.
"""

from __future__ import annotations

from typing import List, Optional

from ..packet import Packet
from ..nic.offloads import segment_tcp

__all__ = ["TcpSplitEngine"]


class TcpSplitEngine:
    """Splits TCP segments exceeding the external MTU."""

    def __init__(self, emtu: int):
        if emtu < 576:
            raise ValueError("eMTU below the IPv4 minimum")
        self.emtu = emtu
        self.split_packets = 0
        self.output_segments = 0
        self.pmtu_clamped = 0

    def process(self, packet: Packet, limit: Optional[int] = None) -> List[Packet]:
        """Return path-conformant segments for *packet*.

        *limit* is a live per-destination PMTU (from the resilience
        cache); when it is tighter than the configured eMTU, segments
        are cut to it — a flow whose MSS predates a PMTU drop must not
        emit packets the narrowed path will blackhole.
        """
        mtu = self.emtu
        if limit is not None and limit < mtu:
            mtu = limit
            self.pmtu_clamped += 1
        if not packet.is_tcp or packet.total_len <= mtu:
            return [packet]
        mss = mtu - packet.ip.header_len - packet.tcp.header_len
        segments = segment_tcp(packet, mss)
        if len(segments) > 1:
            self.split_packets += 1
            self.output_segments += len(segments)
        return segments
