"""PXGW's TCP split engine: stateless TSO-style segmentation at egress.

Splitting needs no flow state — each oversized segment is cut into
eMTU-sized pieces independently — which is why the paper calls
segmentation "inherently scalable" in contrast to merging.
"""

from __future__ import annotations

from typing import List

from ..packet import Packet
from ..nic.offloads import segment_tcp

__all__ = ["TcpSplitEngine"]


class TcpSplitEngine:
    """Splits TCP segments exceeding the external MTU."""

    def __init__(self, emtu: int):
        if emtu < 576:
            raise ValueError("eMTU below the IPv4 minimum")
        self.emtu = emtu
        self.split_packets = 0
        self.output_segments = 0

    def process(self, packet: Packet) -> List[Packet]:
        """Return eMTU-conformant segments for *packet*."""
        if not packet.is_tcp or packet.total_len <= self.emtu:
            return [packet]
        mss = self.emtu - packet.ip.header_len - packet.tcp.header_len
        segments = segment_tcp(packet, mss)
        if len(segments) > 1:
            self.split_packets += 1
            self.output_segments += len(segments)
        return segments
