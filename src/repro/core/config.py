"""PXGW configuration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GatewayConfig", "Bound"]


class Bound:
    """Which way a packet is crossing the gateway."""

    #: Entering the b-network: merge small packets up toward the iMTU.
    INBOUND = "inbound"
    #: Leaving the b-network: split large packets down to the eMTU.
    OUTBOUND = "outbound"

    @staticmethod
    def opposite(bound: str) -> str:
        return Bound.OUTBOUND if bound == Bound.INBOUND else Bound.INBOUND


@dataclass(frozen=True)
class GatewayConfig:
    """Tunable behaviour of a PXGW instance.

    The defaults are the paper's "PX" configuration; flipping the
    booleans produces the ablations and the DPDK-GRO baseline:

    * ``delayed_merge=False`` flushes merge state at every poll batch
      (the baseline's behaviour, hurting conversion yield);
    * ``hairpin_small_flows=False`` sends mice through the merge engine
      (they pollute contexts and burn cycles);
    * ``header_only_dma=True`` adds the experimental on-NIC-memory
      datapath ("PX + header-only");
    * ``baseline_gro=True`` prices merging at the software-GRO cost
      instead of the offload-assisted PX fast path.
    """

    imtu: int = 9000
    emtu: int = 1500
    mss_clamp: bool = True
    caravan: bool = True
    delayed_merge: bool = True
    #: How long a partially filled merge context may wait for more
    #: contiguous packets before being flushed (seconds).
    merge_timeout: float = 500e-6
    hairpin_small_flows: bool = True
    #: Packets observed within the classifier window before a flow is
    #: promoted from mouse to elephant (merge-eligible).
    elephant_threshold_packets: int = 8
    header_only_dma: bool = False
    #: Usable on-NIC memory per worker for header-only DMA (payloads of
    #: packets held in merge contexts must fit; beyond it the datapath
    #: falls back to full DMA — the "experimental due to limited NIC
    #: store" caveat of §5.1).
    nic_memory_bytes: int = 2 * 1024 * 1024
    baseline_gro: bool = False
    merge_contexts_per_worker: int = 4096
    #: LRU bound on each worker's flow table.  The single-gateway
    #: default is effectively unbounded; fleet shards run much tighter
    #: tables so eviction policy (not memory growth) absorbs city-scale
    #: flow churn.
    flow_table_capacity: int = 1_000_000
    workers: int = 8
    poll_batch: int = 64
    #: Lifetime of learned PMTU-cache entries (resilience layer).
    pmtu_cache_ttl: float = 30.0
    #: How long a peer's proven caravan capability is trusted.
    caravan_positive_ttl: float = 60.0
    #: How long a silent peer stays in the caravan negative cache
    #: before re-probing (an upgraded host is re-discovered after this).
    caravan_negative_ttl: float = 5.0

    def __post_init__(self):
        if self.imtu <= self.emtu:
            raise ValueError(f"iMTU ({self.imtu}) must exceed eMTU ({self.emtu})")
        if self.emtu < 576:
            raise ValueError("eMTU below the IPv4 minimum of 576")
        if self.flow_table_capacity <= 0:
            raise ValueError("flow_table_capacity must be positive")

    @property
    def imtu_tcp_payload(self) -> int:
        """Max TCP payload inside the b-network (iMTU - IP - TCP)."""
        return self.imtu - 40

    @property
    def emtu_tcp_payload(self) -> int:
        """Max TCP payload outside (eMTU - IP - TCP)."""
        return self.emtu - 40

    @property
    def imtu_udp_payload(self) -> int:
        """Max UDP payload (incl. caravan inner headers) inside."""
        return self.imtu - 28
