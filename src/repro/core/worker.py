"""One PXGW worker core: the full per-packet pipeline with cycle pricing.

A worker owns the flow state for the flows RSS assigns to it, so the
pipeline is lock-free.  Every packet is processed by real engine code
(merge/split/caravan/clamp); cycle and memory charges follow
:class:`repro.cpu.GatewayCosts` and the active DMA model, which is how
Figure 5's throughput numbers are produced.
"""

from __future__ import annotations

from typing import List

from ..cpu import DEFAULT_GATEWAY_COSTS, CycleAccount, GatewayCosts
from ..nic.dma import FULL_DMA, HEADER_ONLY_DMA
from ..obs.spans import CARAVAN_BATCH_WAIT_SECONDS
from ..packet import IPProto, PX_CARAVAN_TOS, Packet, TCPFlags
from .caravan import (
    CaravanMergeEngine,
    CaravanSplitEngine,
    caravan_inner_count,
    is_caravan,
)
from .classifier import FlowClassifier
from .config import Bound, GatewayConfig
from .flow_table import FlowTable
from .mss_clamp import MssClamp
from .stats import GatewayStats
from .tcp_merge import TcpMergeEngine
from .tcp_split import TcpSplitEngine

__all__ = ["GatewayWorker", "WorkerMode"]


class WorkerMode:
    """Datapath operating modes, set by the resilience health monitor.

    * **NORMAL** — the full pipeline.
    * **DEGRADED** — stateful merging and MSS raising are off; traffic
      passes through at the eMTU it arrived with.  Splitting and
      caravan opening stay on (stateless, required for correctness).
    * **BYPASS** — everything hairpins past the classifier and flow
      state.  Only the mandatory pieces survive: the outbound MSS cap,
      the split engine, and caravan opening — without them a sick
      gateway would blackhole over-MTU packets instead of degrading.
    """

    NORMAL = "normal"
    DEGRADED = "degraded"
    BYPASS = "bypass"

    ALL = (NORMAL, DEGRADED, BYPASS)


class GatewayWorker:
    """A single-core PXGW datapath instance."""

    def __init__(
        self,
        config: GatewayConfig,
        costs: GatewayCosts = DEFAULT_GATEWAY_COSTS,
        index: int = 0,
    ):
        self.config = config
        self.costs = costs
        self.index = index
        self.dma = HEADER_ONLY_DMA if config.header_only_dma else FULL_DMA
        #: Live on-NIC memory budget; starts at the configured value but
        #: is mutable so fault injection can model memory exhaustion.
        self.nic_memory_bytes = config.nic_memory_bytes
        self.merge = TcpMergeEngine(
            config.imtu_tcp_payload, max_contexts=config.merge_contexts_per_worker
        )
        self.split = TcpSplitEngine(config.emtu)
        self.caravan_merge = CaravanMergeEngine(
            config.imtu_udp_payload, max_contexts=config.merge_contexts_per_worker
        )
        self.caravan_split = CaravanSplitEngine()
        self.mss_clamp = MssClamp(config)
        self.flows = FlowTable(capacity=config.flow_table_capacity)
        self.classifier = FlowClassifier(
            self.flows, threshold_packets=config.elephant_threshold_packets
        )
        self.stats = GatewayStats()
        self.account = CycleAccount()
        self.mode = WorkerMode.NORMAL
        # Hot-path constants, hoisted once: ``GatewayCosts`` is frozen
        # and ``GatewayConfig`` is never mutated in place (incidents and
        # canaries build new configs via ``dataclasses.replace``), so
        # the per-packet attribute chains below are pure overhead.
        self._cost_classifier = costs.classifier_per_packet
        self._cost_slowpath = costs.rx_descriptor + costs.flow_lookup
        self._cost_hairpin = costs.hairpin_forward
        self._cost_rx = costs.rx_descriptor
        self._cost_merge_in = costs.flow_lookup + costs.merge_append
        self._cost_merge_flush = costs.merge_flush
        self._cost_tx = costs.tx_descriptor
        self._header_only = config.header_only_dma
        self._hairpin_small = config.hairpin_small_flows
        self._mss_clamp_on = config.mss_clamp
        self._baseline_gro = config.baseline_gro
        self._emtu = config.emtu
        self._imtu = config.imtu
        #: Optional live PMTU store (repro.resilience.PmtuCache); when
        #: set, outbound splits are clamped to the cached path MTU.
        self.pmtu_cache = None
        #: Optional callable ``(peer_ip, now) -> bool`` consulted before
        #: bundling datagrams toward a peer (caravan negotiation).
        self.caravan_gate = None
        #: Optional :class:`repro.obs.FlowTracer`.  Every call site
        #: guards on it, so the default (None) costs one attribute test
        #: on the per-packet path and nothing on a per-batch path.
        self.tracer = None
        # Sim time of the event being processed, for trace records made
        # on paths (``_emit``) that are not handed ``now``.
        self._trace_now = 0.0
        #: Optional :class:`repro.obs.SpanTracker`; same guard contract
        #: as the tracer — ``None`` costs one attribute test per packet.
        self.spans = None
        # Gateway ingress time of the packet being processed.  Differs
        # from ``now`` for packets that queued during a stall; spans
        # open at ingress so residency includes that queueing.
        self._span_at = 0.0

    # ------------------------------------------------------------------
    def pending(self) -> bool:
        """True while either merge engine holds unflushed payload.

        The gateway's delayed-merge flush timer keys on this, so a
        standby worker swapped in by failover is always judged by its
        *own* engine state rather than the retired worker's.
        """
        # Counter reads, not pending_bytes()/pending_packets() calls:
        # the gateway consults this after every processed packet.
        return (
            self.merge._pending_bytes != 0
            or self.caravan_merge._pending_packets != 0
        )

    # ------------------------------------------------------------------
    def set_mode(self, mode: str, now: float) -> List[Packet]:
        """Switch datapath mode; returns packets flushed by the switch.

        Leaving NORMAL flushes every pending merge context — the
        degraded pipeline will never touch them again, and degradation
        must lose zero bytes.  The caller forwards the returned packets
        (they are inbound: only the merge engines hold state).
        """
        if mode not in WorkerMode.ALL:
            raise ValueError(f"unknown worker mode {mode!r}")
        if mode == self.mode:
            return []
        if self.tracer is not None:
            self._trace_now = now
            self.tracer.record(
                now, "mode-transition",
                worker=self.index, from_mode=self.mode, to_mode=mode,
            )
        self.mode = mode
        if mode == WorkerMode.NORMAL:
            return []
        flushed = self.merge.flush() + self.caravan_merge.flush()
        return self._emit(self._account_flush(flushed, now), Bound.INBOUND, data=True)

    # ------------------------------------------------------------------
    def process(
        self,
        packet: Packet,
        bound: str,
        now: float = 0.0,
        ingress_at: float = None,
    ) -> List[Packet]:
        """Run one packet through the pipeline; returns egress packets.

        ``ingress_at`` is when the packet reached the gateway (defaults
        to ``now``); it differs for packets re-processed after a stall,
        so span residency covers the queueing too.
        """
        account = self.account
        breakdown = account.breakdown
        ip = packet.ip
        proto = ip.protocol
        size = packet.total_len
        self.stats.rx_packets += 1
        account.packets += 1
        account.goodput_bytes += size

        tracer = self.tracer
        if tracer is not None:
            self._trace_now = now
            flow = packet.flow_key()
            tracer.record(
                now, "ingress",
                worker=self.index, bound=bound, proto=int(proto),
                bytes=size, flow=str(flow) if flow is not None else "-",
            )

        if self.spans is not None:
            self._span_at = now if ingress_at is None else ingress_at

        if self.mode == WorkerMode.BYPASS:
            return self._bypass(packet, bound, now)

        key = packet.flow_key()
        state = None
        if key is not None:
            # Cycle charges on this per-packet path are applied inline
            # (equivalent to ``account.charge``): the call overhead was
            # a measurable slice of the datapath.
            cycles = self._cost_classifier
            account.cycles += cycles
            breakdown["classify"] = breakdown.get("classify", 0.0) + cycles
            state = self.classifier.observe(packet, now, size=size)
            if tracer is not None:
                tracer.record(
                    now, "classify",
                    worker=self.index, flow=str(key),
                    elephant=state.is_elephant,
                )

        is_tcp = proto == IPProto.TCP
        # Handshake packets always take the slow path: MSS intervention.
        if is_tcp and packet.l4.flags & TCPFlags.SYN:
            cycles = self._cost_slowpath
            account.cycles += cycles
            breakdown["slowpath"] = breakdown.get("slowpath", 0.0) + cycles
            if self._mss_clamp_on and self.mss_clamp.process(
                packet, bound, allow_raise=self.mode == WorkerMode.NORMAL
            ):
                self.stats.mss_rewrites += 1
            if self.spans is not None:
                self.spans.sync(self._span_at, now, "mss")
            return self._emit([packet], bound, data=False)

        # Mice bypass the merge machinery via the NIC hairpin — but only
        # when the packet already conforms to the egress MTU (a jumbo
        # heading outside must still go through the split engine).
        if (
            self._hairpin_small
            and state is not None
            and not state.is_elephant
            and not (proto == IPProto.UDP and ip.tos == PX_CARAVAN_TOS)
            and (bound == Bound.INBOUND or size <= self._emtu)
        ):
            cycles = self._cost_hairpin
            account.cycles += cycles
            breakdown["hairpin"] = breakdown.get("hairpin", 0.0) + cycles
            self.stats.hairpinned += 1
            if self.spans is not None:
                self.spans.sync(self._span_at, now, "hairpin", flow=key)
            return self._emit([packet], bound, data=self._is_data(packet))

        cycles = self._cost_rx
        account.cycles += cycles
        breakdown["rx"] = breakdown.get("rx", 0.0) + cycles
        dma = self.dma
        if self._header_only:
            resident = self.merge.pending_bytes() + self.caravan_merge.pending_bytes()
            if resident + size > self.nic_memory_bytes:
                # On-NIC memory exhausted: this packet's payload must
                # cross into host DRAM after all (§5.1's "limited NIC
                # store" caveat).
                dma = FULL_DMA
                self.stats.hdo_fallbacks += 1
            else:
                cycles = self.costs.header_only_per_packet
                account.cycles += cycles
                breakdown["hdo"] = breakdown.get("hdo", 0.0) + cycles
        account.mem_bytes += dma.mem_bytes(packet, size=size)

        if is_tcp:
            if bound == Bound.INBOUND:
                return self._tcp_inbound(packet, now)
            return self._tcp_outbound(packet, now)
        if proto == IPProto.UDP:
            if bound == Bound.INBOUND:
                return self._udp_inbound(packet, now)
            return self._udp_outbound(packet, now)

        # ICMP and anything else is forwarded untouched.
        if self.spans is not None:
            self.spans.sync(self._span_at, now, "forward", flow=key)
        return self._emit([packet], bound, data=False)

    # ------------------------------------------------------------------
    def process_batch(
        self,
        packets: List[Packet],
        bound: str,
        now: float = 0.0,
    ) -> List[Packet]:
        """Run a poll batch through the pipeline; returns egress packets.

        Per-packet semantics match :meth:`process`, but the constant-
        per-packet prologue — mode/observability checks and the flow
        table lookup — runs once per batch (or once per flow group)
        instead of once per packet.  Packets are grouped by
        ``flow_key()`` in first-seen order with intra-flow arrival
        order preserved, so the merge engines see each flow's packets
        exactly as the scalar path would; egress packets come out
        flow-grouped rather than arrival-interleaved.

        When a tracer or span tracker is attached, or the worker is not
        in NORMAL mode, the batch defers to the scalar pipeline packet
        by packet — those paths must observe every per-packet firing
        point.
        """
        if (
            self.tracer is not None
            or self.spans is not None
            or self.mode != WorkerMode.NORMAL
        ):
            out: List[Packet] = []
            process = self.process
            for packet in packets:
                out.extend(process(packet, bound, now))
            return out

        groups: dict = {}
        for packet in packets:
            key = packet.flow_key()
            group = groups.get(key)
            if group is None:
                groups[key] = [packet]
            else:
                group.append(packet)

        account = self.account
        breakdown = account.breakdown
        stats = self.stats
        classifier = self.classifier
        cost_classifier = self._cost_classifier
        cost_slowpath = self._cost_slowpath
        cost_hairpin = self._cost_hairpin
        cost_rx = self._cost_rx
        hairpin_small = self._hairpin_small
        header_only = self._header_only
        emtu = self._emtu
        worker_dma = self.dma
        inbound = bound == Bound.INBOUND
        out = []
        extend = out.extend
        for key, group in groups.items():
            # One flow-table prologue per group: the lookup and window
            # check cover every packet; per-packet touches and the
            # promotion rule keep mid-batch elephant transitions exact.
            state = None if key is None else classifier.observe_group(key, now)
            for packet in group:
                ip = packet.ip
                proto = ip.protocol
                size = packet.total_len
                stats.rx_packets += 1
                account.packets += 1
                account.goodput_bytes += size

                if state is not None:
                    account.cycles += cost_classifier
                    breakdown["classify"] = (
                        breakdown.get("classify", 0.0) + cost_classifier
                    )
                    state.touch(size, now)
                    classifier.promote_if_due(state)

                is_tcp = proto == IPProto.TCP
                if is_tcp and packet.l4.flags & TCPFlags.SYN:
                    account.cycles += cost_slowpath
                    breakdown["slowpath"] = (
                        breakdown.get("slowpath", 0.0) + cost_slowpath
                    )
                    if self._mss_clamp_on and self.mss_clamp.process(
                        packet, bound, allow_raise=True
                    ):
                        stats.mss_rewrites += 1
                    extend(self._emit([packet], bound, data=False))
                    continue

                if (
                    hairpin_small
                    and state is not None
                    and not state.is_elephant
                    and not (proto == IPProto.UDP and ip.tos == PX_CARAVAN_TOS)
                    and (inbound or size <= emtu)
                ):
                    account.cycles += cost_hairpin
                    breakdown["hairpin"] = breakdown.get("hairpin", 0.0) + cost_hairpin
                    stats.hairpinned += 1
                    extend(self._emit([packet], bound, data=self._is_data(packet)))
                    continue

                account.cycles += cost_rx
                breakdown["rx"] = breakdown.get("rx", 0.0) + cost_rx
                dma = worker_dma
                if header_only:
                    resident = (
                        self.merge.pending_bytes() + self.caravan_merge.pending_bytes()
                    )
                    if resident + size > self.nic_memory_bytes:
                        dma = FULL_DMA
                        stats.hdo_fallbacks += 1
                    else:
                        cycles = self.costs.header_only_per_packet
                        account.cycles += cycles
                        breakdown["hdo"] = breakdown.get("hdo", 0.0) + cycles
                account.mem_bytes += dma.mem_bytes(packet, size=size)

                if is_tcp:
                    if inbound:
                        extend(self._tcp_inbound(packet, now))
                    else:
                        extend(self._tcp_outbound(packet, now))
                elif proto == IPProto.UDP:
                    if inbound:
                        extend(self._udp_inbound(packet, now))
                    else:
                        extend(self._udp_outbound(packet, now))
                else:
                    extend(self._emit([packet], bound, data=False))
        return out

    # ------------------------------------------------------------------
    def _bypass(self, packet: Packet, bound: str, now: float) -> List[Packet]:
        """BYPASS mode: hairpin everything, keep only mandatory work."""
        costs = self.costs
        self.account.charge(costs.hairpin_forward, category="bypass")
        self.stats.bypassed_packets += 1
        if packet.is_tcp and packet.tcp.syn:
            # The outbound cap stays mandatory: an uncapped external
            # peer would learn an MSS the external path cannot carry.
            if self.config.mss_clamp and self.mss_clamp.process(
                packet, bound, allow_raise=False
            ):
                self.stats.mss_rewrites += 1
            if self.spans is not None:
                self.spans.sync(self._span_at, now, "mss",
                                flow=packet.flow_key())
            return self._emit([packet], bound, data=False)
        if packet.is_tcp:
            self.stats.tcp_payload_in += len(packet.payload)
            if bound == Bound.OUTBOUND:
                segments = self.split.process(packet, limit=self._path_limit(packet, now))
                self.stats.split_segments += len(segments) if len(segments) > 1 else 0
            else:
                segments = [packet]
            self.stats.tcp_payload_out += sum(len(seg.payload) for seg in segments)
            if self.spans is not None:
                self._span_split(segments, now, packet.flow_key())
            return self._emit(segments, bound, data=True)
        if packet.is_udp:
            self.stats.udp_datagrams_in += caravan_inner_count(packet)
            if bound == Bound.OUTBOUND and is_caravan(packet):
                return self._open_caravan(packet, now)
            self.stats.udp_datagrams_out += caravan_inner_count(packet)
            if self.spans is not None:
                self.spans.sync(self._span_at, now, "forward",
                                flow=packet.flow_key())
            return self._emit([packet], bound, data=True)
        if self.spans is not None:
            self.spans.sync(self._span_at, now, "forward",
                            flow=packet.flow_key())
        return self._emit([packet], bound, data=False)

    def _path_limit(self, packet: Packet, now: float):
        """The live cached PMTU toward this packet's destination.

        The lookup is flow-scoped: a per-flow cache entry (hardened
        PMTU isolation across shared destination addresses) wins over
        the destination wildcard, so one flow's poisoned clamp cannot
        resize its neighbours' segments.
        """
        if self.pmtu_cache is None:
            return None
        flow = packet.flow_key()
        entry = self.pmtu_cache.lookup(
            packet.ip.dst, now,
            flow=tuple(flow) if flow is not None else None,
        )
        return entry.pmtu if entry is not None else None

    # ------------------------------------------------------------------
    def _tcp_inbound(self, packet: Packet, now: float) -> List[Packet]:
        account = self.account
        breakdown = account.breakdown
        stats = self.stats
        stats.tcp_payload_in += len(packet.payload)
        if self.mode != WorkerMode.NORMAL:
            # DEGRADED: stateful merging is off; pass through at eMTU.
            stats.passthrough_packets += 1
            stats.tcp_payload_out += len(packet.payload)
            if self.spans is not None:
                self.spans.sync(self._span_at, now, "passthrough",
                                flow=packet.flow_key())
            return self._emit([packet], Bound.INBOUND, data=True)
        if self._baseline_gro:
            cycles = self.costs.baseline_gro_per_packet
            account.cycles += cycles
            breakdown["gro-sw"] = breakdown.get("gro-sw", 0.0) + cycles
        else:
            cycles = self._cost_merge_in
            account.cycles += cycles
            breakdown["merge"] = breakdown.get("merge", 0.0) + cycles
        outputs = self.merge.feed(packet, now)
        if self.spans is not None:
            self._span_tcp_merge(packet, outputs, now)
        if outputs:
            flush_cycles = self._cost_merge_flush
            for out in outputs:
                account.cycles += flush_cycles
                breakdown["merge"] = breakdown.get("merge", 0.0) + flush_cycles
                stats.tcp_payload_out += len(out.payload)
                if out.meta.get("spliced"):
                    stats.merged_packets += 1
            if self.tracer is not None:
                for out in outputs:
                    self.tracer.record(
                        now, "merge",
                        worker=self.index, bytes=out.total_len,
                        spliced=bool(out.meta.get("spliced")),
                    )
        return self._emit(outputs, Bound.INBOUND, data=True)

    def _tcp_outbound(self, packet: Packet, now: float) -> List[Packet]:
        costs = self.costs
        self.stats.tcp_payload_in += len(packet.payload)
        # Clamp to the live cached path MTU: a flow whose MSS was
        # negotiated before a PMTU drop would otherwise emit segments
        # the narrowed path silently blackholes.
        segments = self.split.process(packet, limit=self._path_limit(packet, now))
        if self.config.baseline_gro and len(segments) > 1:
            self.account.charge(costs.baseline_tx_per_packet * len(segments), category="tso-sw")
        self.account.charge(costs.split_per_segment * len(segments), category="split")
        self.stats.split_segments += len(segments) if len(segments) > 1 else 0
        self.stats.tcp_payload_out += sum(len(seg.payload) for seg in segments)
        if self.tracer is not None and len(segments) > 1:
            self.tracer.record(
                now, "split",
                worker=self.index, segments=len(segments), bytes=packet.total_len,
            )
        if self.spans is not None:
            self._span_split(segments, now, packet.flow_key())
        return self._emit(segments, Bound.OUTBOUND, data=True)

    def _udp_inbound(self, packet: Packet, now: float) -> List[Packet]:
        costs = self.costs
        self.stats.udp_datagrams_in += caravan_inner_count(packet)
        bundling = self.config.caravan and self.mode == WorkerMode.NORMAL
        if bundling and self.caravan_gate is not None and not self.caravan_gate(
            packet.ip.dst, now
        ):
            # The peer has not (yet) proven it speaks PX-caravan: plain
            # datagrams only.
            bundling = False
            self.stats.caravans_suppressed += 1
        if not bundling:
            if self.config.caravan and self.mode != WorkerMode.NORMAL:
                self.stats.passthrough_packets += 1
            self.stats.udp_datagrams_out += caravan_inner_count(packet)
            if self.spans is not None:
                self.spans.sync(self._span_at, now, "passthrough",
                                flow=packet.flow_key())
            return self._emit([packet], Bound.INBOUND, data=True)
        account = self.account
        breakdown = account.breakdown
        cycles = costs.flow_lookup + costs.caravan_append
        account.cycles += cycles
        breakdown["caravan"] = breakdown.get("caravan", 0.0) + cycles
        outputs = self.caravan_merge.feed(packet, now)
        if self.spans is not None:
            self._span_caravan_merge(packet, outputs, now)
        if outputs:
            flush_cycles = costs.caravan_flush
            for out in outputs:
                account.cycles += flush_cycles
                breakdown["caravan"] = breakdown.get("caravan", 0.0) + flush_cycles
                self.stats.udp_datagrams_out += caravan_inner_count(out)
                if is_caravan(out):
                    self.stats.caravans_built += 1
                    if self.tracer is not None:
                        self.tracer.record(
                            now, "caravan-built",
                            worker=self.index,
                            inner=caravan_inner_count(out), bytes=out.total_len,
                        )
        return self._emit(outputs, Bound.INBOUND, data=True)

    def _udp_outbound(self, packet: Packet, now: float) -> List[Packet]:
        self.stats.udp_datagrams_in += caravan_inner_count(packet)
        if is_caravan(packet):
            return self._open_caravan(packet, now)
        self.stats.udp_datagrams_out += 1
        if self.spans is not None:
            self.spans.sync(self._span_at, now, "forward",
                            flow=packet.flow_key())
        return self._emit([packet], Bound.OUTBOUND, data=True)

    def _open_caravan(self, packet: Packet, now: float) -> List[Packet]:
        costs = self.costs
        try:
            datagrams = self.caravan_split.process(packet)
        except ValueError:
            # A damaged bundle (truncated/garbled in transit) cannot
            # be opened; discard it rather than emit garbage.
            self.stats.malformed_caravans += 1
            self.stats.udp_datagrams_malformed += caravan_inner_count(packet)
            if self.spans is not None:
                self.spans.sync_drop(self._span_at, now, "malformed-caravan",
                                     flow=packet.flow_key())
            return []
        self.stats.caravans_opened += 1
        if self.tracer is not None:
            self.tracer.record(
                now, "caravan-opened",
                worker=self.index, inner=len(datagrams),
            )
        self.account.charge(
            costs.caravan_split_per_datagram * len(datagrams), category="caravan"
        )
        self.stats.udp_datagrams_out += len(datagrams)
        if self.spans is not None:
            sid = self.spans.sync(self._span_at, now, "caravan-open",
                                  flow=packet.flow_key())
            self.spans.derived((sid,), "datagram", now, count=len(datagrams))
        return self._emit(datagrams, Bound.OUTBOUND, data=True)

    # ------------------------------------------------------------------
    def end_batch(self, now: float) -> List[Packet]:
        """Poll-batch boundary: apply the configured flush policy.

        Returns flushed packets (always inbound: only the merge engines
        hold state).  Delayed merging only flushes contexts that have
        exceeded the merge timeout; the baseline flushes everything, as
        the DPDK GRO library does at each ``gro_timeout`` expiry.
        """
        if self.config.delayed_merge:
            flushed = self.merge.flush_older_than(now, self.config.merge_timeout)
            flushed += self.caravan_merge.flush_older_than(now, self.config.merge_timeout)
        else:
            flushed = self.merge.flush() + self.caravan_merge.flush()
        if self.tracer is not None:
            self._trace_now = now
            if flushed:
                self.tracer.record(
                    now, "flush", worker=self.index, packets=len(flushed)
                )
        return self._emit(self._account_flush(flushed, now), Bound.INBOUND, data=True)

    def _account_flush(self, flushed: List[Packet], now: float) -> List[Packet]:
        """Charge and count packets flushed out of the merge engines."""
        spans = self.spans
        for out in flushed:
            self.account.charge(self.costs.merge_flush, category="merge")
            if out.is_tcp:
                self.stats.tcp_payload_out += len(out.payload)
                if spans is not None:
                    spans.derived(
                        spans.merge_consume(out.flow_key(), len(out.payload), now),
                        "merged", now, flow=out.flow_key(),
                    )
            elif out.is_udp:
                self.stats.udp_datagrams_out += caravan_inner_count(out)
                if spans is not None:
                    self._span_caravan_out(out, now)
            if is_caravan(out):
                self.stats.caravans_built += 1
        return flushed

    # ------------------------------------------------------------------
    # Span bookkeeping (repro.obs.spans) — every caller guards on
    # ``self.spans``, so the unattached datapath pays nothing.
    # ------------------------------------------------------------------
    def _span_split(self, segments: List[Packet], now: float,
                    flow=None) -> None:
        """Settle a split (1→N): close the ingress, emit N children."""
        spans = self.spans
        if len(segments) > 1:
            sid = spans.sync(self._span_at, now, "split", flow=flow)
            spans.derived((sid,), "split-segment", now, count=len(segments),
                          flow=flow)
        else:
            spans.sync(self._span_at, now, "forward", flow=flow)

    def _span_tcp_merge(self, packet: Packet, outputs: List[Packet], now: float) -> None:
        """Mirror one ``merge.feed`` call onto the span byte-FIFO.

        ``out is packet`` in the outputs ⟺ the packet passed through
        without being buffered (non-mergeable, flag-bearing, or empty);
        otherwise its payload entered the per-flow FIFO.  Enqueue before
        consume: spliced outputs drain old bytes head-first by exact
        count, so a flush-then-restart of the same flow stays balanced.
        """
        spans = self.spans
        entered = True
        for out in outputs:
            if out is packet:
                entered = False
                break
        if entered:
            spans.merge_enqueue(
                packet.flow_key(), spans.open(self._span_at),
                len(packet.payload), now,
            )
        for out in outputs:
            if out is packet:
                spans.sync(self._span_at, now, "passthrough",
                           flow=packet.flow_key())
            else:
                spans.derived(
                    spans.merge_consume(out.flow_key(), len(out.payload), now),
                    "merged", now, flow=out.flow_key(),
                )

    def _span_caravan_merge(self, packet: Packet, outputs: List[Packet], now: float) -> None:
        """Mirror one ``caravan_merge.feed`` call onto the datagram FIFO.

        Same identity contract as the TCP path; a single-datagram flush
        materializes as the *original* buffered packet object, never the
        current one, so the ``out is packet`` test stays sound.
        """
        spans = self.spans
        entered = True
        for out in outputs:
            if out is packet:
                entered = False
                break
        if entered:
            spans.caravan_enqueue(packet.flow_key(), spans.open(self._span_at), now)
        for out in outputs:
            if out is packet:
                spans.sync(self._span_at, now, "passthrough",
                           flow=packet.flow_key())
            else:
                self._span_caravan_out(out, now)

    def _span_caravan_out(self, out: Packet, now: float) -> None:
        """Settle the FIFO spans a materialized caravan/flush carries."""
        spans = self.spans
        bundled = is_caravan(out)
        parents = spans.caravan_consume(
            out.flow_key(), caravan_inner_count(out), now,
            outcome="bundled" if bundled else "flushed",
        )
        first_at = out.meta.get("caravan_first_at")
        if first_at is not None:
            spans.observe(CARAVAN_BATCH_WAIT_SECONDS, now - first_at)
        if bundled:
            spans.derived(parents, "caravan", now, flow=out.flow_key())

    def _is_data(self, packet: Packet) -> bool:
        if packet.is_tcp:
            return len(packet.payload) > 0
        return packet.is_udp

    def _emit(self, packets: List[Packet], bound: str, data: bool) -> List[Packet]:
        if not packets:
            return packets
        account = self.account
        breakdown = account.breakdown
        stats = self.stats
        tx_cycles = self._cost_tx
        # Per-packet adds (not ``cycles * n``) keep float accumulation
        # order — and therefore reported totals — bit-identical to the
        # pre-inlined accounting.
        inbound_data = data and bound == Bound.INBOUND
        imtu = self._imtu
        for packet in packets:
            account.cycles += tx_cycles
            breakdown["tx"] = breakdown.get("tx", 0.0) + tx_cycles
            stats.tx_packets += 1
            if inbound_data and (
                len(packet.payload) > 0 if packet.is_tcp else packet.is_udp
            ):
                stats.note_inbound_data_packet(packet.total_len, imtu)
        tracer = self.tracer
        if tracer is not None:
            now = self._trace_now
            for packet in packets:
                tracer.record(
                    now, "egress",
                    worker=self.index, bound=bound, bytes=packet.total_len,
                )
        return packets
