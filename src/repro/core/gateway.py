"""PXGateway: the simulator-facing MTU-translating border middlebox.

A PXGateway is a Router whose forwarding path runs every packet through
a :class:`GatewayWorker` pipeline.  The crossing direction is derived
from the routing decision: egress on an interface marked *internal*
means the packet is entering the b-network (merge up), anything else is
leaving it (split down).

Two §4.2 extensions are included:

* **Explicit iMTU advertisement** — a neighbor interface can be taught
  the peer network's iMTU (``set_neighbor_imtu``).  When the peer's
  iMTU is at least ours, packets cross untranslated (no split), and
  caravans are forwarded intact.
* **F-PMTUD probe passthrough** — probes to :data:`FPMTUD_PORT` are
  forwarded without caravan merging, as F-PMTUD requires.
"""

from __future__ import annotations

from typing import Optional, Set

from ..cpu import DEFAULT_GATEWAY_COSTS, GatewayCosts
from ..net.router import Router
from ..sim.engine import Simulator
from ..sim.node import Interface
from ..sim.trace import PacketTrace
from ..packet import IPProto, Packet
from .config import Bound, GatewayConfig
from .worker import GatewayWorker

__all__ = ["PXGateway", "FPMTUD_PORT"]

#: The well-known UDP port the F-PMTUD daemon listens on.
FPMTUD_PORT = 7837


class PXGateway(Router):
    """An MTU-translating gateway at the border of a b-network."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: Optional[GatewayConfig] = None,
        costs: GatewayCosts = DEFAULT_GATEWAY_COSTS,
        trace: Optional[PacketTrace] = None,
    ):
        super().__init__(sim, name, trace=trace)
        self.config = config or GatewayConfig()
        self.worker = GatewayWorker(self.config, costs=costs)
        self._internal: Set[int] = set()  # ids of internal interfaces
        self._neighbor_imtu: dict = {}
        self._flush_handle = None
        self.passthrough_udp_ports: Set[int] = {FPMTUD_PORT}
        self.untranslated = 0
        self._imtu_speaker = None
        self._stall_until = 0.0
        self._stalled: list = []
        self._local_udp: dict = {}
        self.health = None
        self.negotiator = None
        self.pmtu_cache = None
        #: Optional :class:`repro.obs.Observability` bundle (metrics
        #: registry + tracer); see :meth:`attach_observability`.
        self.obs = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def mark_internal(self, interface: Interface) -> None:
        """Declare *interface* as facing the b-network (iMTU side)."""
        if interface not in self.interfaces:
            raise ValueError("interface does not belong to this gateway")
        self._internal.add(id(interface))

    def is_internal(self, interface: Interface) -> bool:
        """True if *interface* faces the b-network."""
        return id(interface) in self._internal

    def set_neighbor_imtu(self, interface: Interface, imtu: int) -> None:
        """Record an explicitly advertised neighbor iMTU (§4.2)."""
        self._neighbor_imtu[id(interface)] = imtu

    def clear_neighbor_imtu(self, interface: Interface) -> None:
        """Forget a neighbor's iMTU (expiry: fall back to translation)."""
        self._neighbor_imtu.pop(id(interface), None)

    def neighbor_imtu(self, interface: Interface) -> Optional[int]:
        """The advertised iMTU of the network behind *interface*."""
        return self._neighbor_imtu.get(id(interface))

    def enable_imtu_exchange(self, interval: float = 30.0,
                             hold_time: float = 90.0) -> "ImtuSpeaker":
        """Run the §4.2 iMTU exchange protocol on this gateway."""
        from .imtu_exchange import ImtuSpeaker

        self._imtu_speaker = ImtuSpeaker(self, interval=interval, hold_time=hold_time)
        self._imtu_speaker.start()
        return self._imtu_speaker

    # ------------------------------------------------------------------
    # Resilience layer
    # ------------------------------------------------------------------
    def register_local_udp(self, port: int, handler) -> None:
        """Route locally-addressed UDP on *port* to *handler*.

        *handler* is called as ``handler(packet, interface)``; used by
        control protocols the gateway itself speaks (caravan capability
        negotiation, etc.).
        """
        self._local_udp[port] = handler

    def enable_resilience(self, policy=None, negotiation: bool = False):
        """Attach the resilience layer: health monitor, PMTU cache, and
        (optionally) caravan capability negotiation.

        Returns the started :class:`repro.resilience.HealthMonitor`.
        """
        from ..resilience.health import HealthMonitor
        from ..resilience.negotiation import CaravanNegotiator

        self.attach_pmtu_cache()
        if negotiation and self.negotiator is None:
            self.negotiator = CaravanNegotiator(
                self,
                positive_ttl=self.config.caravan_positive_ttl,
                negative_ttl=self.config.caravan_negative_ttl,
            )
            self.worker.caravan_gate = self.negotiator.allow_caravan
        self.health = HealthMonitor(self, policy=policy).start()
        return self.health

    def attach_pmtu_cache(self, cache=None):
        """Install a live PMTU cache, flushed on any routing change."""
        if cache is None:
            if self.pmtu_cache is not None:
                return self.pmtu_cache
            from ..resilience.pmtu_cache import PmtuCache

            cache = PmtuCache(default_ttl=self.config.pmtu_cache_ttl)
        self.pmtu_cache = cache
        self.worker.pmtu_cache = cache
        cache.watch(self.routes)
        return cache

    def attach_observability(self, obs=None):
        """Attach a metrics registry (and optional tracer) bundle.

        Registers the gateway's scrape-time collectors on the bundle's
        registry and hands its tracer to the live worker.  With no
        argument a fresh metrics-only bundle is created.  Returns the
        attached :class:`repro.obs.Observability`.
        """
        from ..obs import Observability, observe_gateway

        if obs is None:
            obs = Observability()
        self.obs = obs
        self.worker.tracer = obs.tracer
        self.worker.spans = obs.spans
        observe_gateway(obs, self)
        return obs

    def swap_worker(self, new_worker) -> "GatewayWorker":
        """Replace the datapath worker (failover); returns the old one.

        The new worker inherits the resilience and observability hooks
        so a takeover does not silently drop the PMTU clamp, the
        caravan gate, or the flow tracer.
        """
        old, self.worker = self.worker, new_worker
        new_worker.pmtu_cache = self.pmtu_cache
        if self.negotiator is not None:
            new_worker.caravan_gate = self.negotiator.allow_caravan
        if self.obs is not None:
            new_worker.tracer = self.obs.tracer
            new_worker.spans = self.obs.spans
            if self.obs.spans is not None:
                # The retired worker's buffered bytes are re-emitted from
                # the failover checkpoint through forward(), bypassing
                # any worker — settle their ingress spans here.
                self.obs.spans.flush_fifos(self.sim.now, outcome="failover")
            self.obs.trace(
                self.sim.now, "worker-swap",
                gateway=self.name, from_worker=old.index, to_worker=new_worker.index,
            )
        # The flush timer was armed (or left unarmed) against the OLD
        # worker's pending state; re-judge it against the new worker's,
        # else a swapped-in standby with pending merges never flushes —
        # or an armed timer flushes a worker with nothing pending.
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        self._ensure_flush_timer()
        return old

    # ------------------------------------------------------------------
    # Fault injection: worker stalls
    # ------------------------------------------------------------------
    def stall(self, duration: float) -> None:
        """Freeze the datapath for *duration* seconds (chaos testing).

        Arriving packets queue in arrival order and are processed in one
        burst when the stall ends — the simulation analogue of a worker
        core descheduled or stuck on a slow control-plane operation.
        """
        if duration <= 0:
            return
        until = self.sim.now + duration
        if until <= self._stall_until:
            return
        self._stall_until = until
        if self.obs is not None:
            self.obs.trace(self.sim.now, "stall", gateway=self.name, until=until)
        self.sim.schedule(duration, self._drain_stalled)

    def _drain_stalled(self) -> None:
        if self.sim.now < self._stall_until:
            return  # superseded by a longer stall; its drain will run
        stalled, self._stalled = self._stalled, []
        if self.obs is not None:
            self.obs.trace(
                self.sim.now, "stall-drain",
                gateway=self.name, queued=len(stalled),
            )
        for packet, interface, queued_at in stalled:
            self._process(packet, interface, ingress_at=queued_at)
        # The flush timer stayed silent for the whole stall window (see
        # _on_flush_timer); flush whatever aged past the merge timeout
        # exactly once, then let the timer re-arm normally.
        if self._flush_handle is None and self.worker.pending():
            self._on_flush_timer()

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, interface: Interface) -> None:
        if self.trace:
            self.trace.record(self.sim.now, self.name, "rx", packet)
        if self.sim.now < self._stall_until:
            self._stalled.append((packet, interface, self.sim.now))
            return
        self._process(packet, interface)

    def _process(
        self, packet: Packet, interface: Interface, ingress_at: float = None
    ) -> None:
        ip = packet.ip
        if ip.dst in self._if_by_ip:
            if self._imtu_speaker is not None and self._imtu_speaker.handle(
                packet, interface
            ):
                return
            if packet.is_udp and not packet.is_fragment:
                handler = self._local_udp.get(packet.udp.dst_port)
                if handler is not None:
                    handler(packet, interface)
                    return
            self._deliver_local(packet, interface)
            return

        route = self.routes.lookup(ip.dst)
        if route is None:
            self.dropped += 1
            if self.obs is not None and self.obs.spans is not None:
                now = self.sim.now
                self.obs.spans.sync_drop(
                    now if ingress_at is None else ingress_at, now, "no-route"
                )
            return
        egress = route.interface

        if id(egress) in self._internal:
            bound = Bound.INBOUND
        elif (imtu := self._neighbor_imtu.get(id(egress))) is not None and imtu >= self.config.imtu:
            # Peer b-network advertised an equal-or-larger iMTU: forward
            # large packets and caravans untranslated.
            self.untranslated += 1
            if self.obs is not None and self.obs.spans is not None:
                now = self.sim.now
                self.obs.spans.sync(
                    now if ingress_at is None else ingress_at, now, "untranslated"
                )
            self.forward(packet, arrived_on=interface)
            return
        else:
            bound = Bound.OUTBOUND

        # Passthrough only ever applies to UDP (probes/fragments), so
        # gate the check on the protocol byte before paying for a call.
        if ip.protocol == IPProto.UDP and self._is_passthrough(packet):
            if self.obs is not None and self.obs.spans is not None:
                now = self.sim.now
                self.obs.spans.sync(
                    now if ingress_at is None else ingress_at, now, "gateway-passthrough"
                )
            self.forward(packet, arrived_on=interface)
            return

        worker = self.worker
        for out in worker.process(
            packet, bound, now=self.sim.now, ingress_at=ingress_at
        ):
            self.forward(out, arrived_on=interface)
        # _ensure_flush_timer inlined: two extra calls per packet
        # otherwise (the method plus worker.pending()).
        if self._flush_handle is None and (
            worker.merge._pending_bytes != 0
            or worker.caravan_merge._pending_packets != 0
        ):
            self._flush_handle = self.sim.schedule(
                self.config.merge_timeout, self._on_flush_timer
            )

    def _is_passthrough(self, packet: Packet) -> bool:
        """F-PMTUD probes (and their fragments) skip caravan merging."""
        if not packet.is_udp:
            return False
        if packet.is_fragment:
            return True  # fragments cannot be merged; forward as-is
        return packet.udp.dst_port in self.passthrough_udp_ports

    # ------------------------------------------------------------------
    # Delayed-merge timer
    # ------------------------------------------------------------------
    def _ensure_flush_timer(self) -> None:
        if self._flush_handle is not None:
            return
        if not self.worker.pending():
            return
        self._flush_handle = self.sim.schedule(self.config.merge_timeout, self._on_flush_timer)

    def _on_flush_timer(self) -> None:
        self._flush_handle = None
        if self.sim.now < self._stall_until:
            # The datapath is frozen: flushing now would emit packets
            # mid-stall, and re-arming would tick fruitlessly for the
            # whole window.  _drain_stalled flushes once on resume.
            return
        for out in self.worker.end_batch(self.sim.now):
            self.forward(out)
        self._ensure_flush_timer()

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The worker's gateway statistics."""
        return self.worker.stats
