"""F-PMTUD: single-round-trip, ICMP-free path MTU discovery (§4.2).

The prober sends one dummy UDP probe sized to the next hop's eMTU with
DF *clear* toward a well-known port on the destination.  Routers along
the path fragment it wherever a link's MTU is smaller; the daemon on
the destination observes the sizes of the fragments that arrive (its
host stack reassembles them anyway) and reports them back in a single
UDP message.  The prober concludes:

* probe arrived whole → PMTU = probe size;
* probe was fragmented → PMTU = size of the largest fragment.

Because fragment payloads are 8-byte aligned, the reported value can
sit up to 7 bytes below the true bottleneck MTU (a 1000 B hop yields
996 B fragments); the reported value is always *usable*, which is what
an endpoint needs.  Total discovery cost: one RTT, no ICMP anywhere.

PXGWs forward probes (and fragments in general) without caravan
merging; see :class:`repro.core.PXGateway`.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.gateway import FPMTUD_PORT
from ..net.host import Host
from ..obs.spans import PROBE_RTT_SECONDS
from ..packet import Packet
from .hardening import MIN_PLAUSIBLE_PMTU, HardeningPolicy

__all__ = ["FPmtudDaemon", "FPmtudProber", "FPmtudResult", "FPMTUD_PORT"]

_PROBE_MAGIC = b"FPMP"
_REPORT_MAGIC = b"FPMR"


def _pack_probe(probe_id: int, size: int) -> bytes:
    """A probe payload of exactly *size* - 28 bytes (IP+UDP headers)."""
    payload_len = size - 28
    head = _PROBE_MAGIC + struct.pack("!I", probe_id)
    if payload_len < len(head):
        raise ValueError(f"probe size {size} too small")
    return head + bytes(payload_len - len(head))


def _parse_probe(payload: bytes) -> Optional[int]:
    if len(payload) < 8 or payload[:4] != _PROBE_MAGIC:
        return None
    return struct.unpack_from("!I", payload, 4)[0]


def _pack_report(probe_id: int, sizes: List[int]) -> bytes:
    return (
        _REPORT_MAGIC
        + struct.pack("!IH", probe_id, len(sizes))
        + b"".join(struct.pack("!H", size) for size in sizes)
    )


def _parse_report(payload: bytes) -> "Optional[tuple[int, List[int]]]":
    if len(payload) < 10 or payload[:4] != _REPORT_MAGIC:
        return None
    probe_id, count = struct.unpack_from("!IH", payload, 4)
    sizes = [
        struct.unpack_from("!H", payload, 10 + 2 * index)[0] for index in range(count)
    ]
    return probe_id, sizes


@dataclass
class FPmtudResult:
    """Outcome of one F-PMTUD discovery."""

    pmtu: int
    elapsed: float
    fragment_sizes: List[int]
    probe_size: int

    @property
    def was_fragmented(self) -> bool:
        return len(self.fragment_sizes) > 1


class FPmtudDaemon:
    """The destination-side agent: reports received fragment sizes."""

    def __init__(self, host: Host, port: int = FPMTUD_PORT):
        self.host = host
        self.port = port
        self.reports_sent = 0
        host.on_udp(port, self._on_probe)

    def _on_probe(self, packet: Packet, host: Host) -> None:
        probe_id = _parse_probe(packet.payload)
        if probe_id is None:
            return
        # The host's reassembler recorded how the probe arrived; an
        # unfragmented probe registers as a single "fragment".
        sizes = list(host.reassembler.last_fragment_sizes)
        report = _pack_report(probe_id, sizes)
        host.send_udp(packet.ip.src, self.port, packet.udp.src_port, report)
        self.reports_sent += 1


class FPmtudProber:
    """The sender-side agent: one probe, one report, one RTT.

    With a :class:`HardeningPolicy` attached, probe ids become
    unguessable per-probe nonces (the id field already round-trips
    through the daemon verbatim, so the wire format is unchanged) and
    incoming reports are validated against the plausible-PMTU band
    ``[576, min(probe size, link_mtu)]`` before acceptance.  Rejected
    reports are counted, never acted on, and leave the probe pending
    so the normal timeout/retry path drives recovery.
    """

    def __init__(self, host: Host, src_port: int = 52000, daemon_port: int = FPMTUD_PORT,
                 policy: Optional[HardeningPolicy] = None,
                 link_mtu: Optional[int] = None, nonce_seed: int = 0):
        self.host = host
        self.src_port = src_port
        self.daemon_port = daemon_port
        #: Defenses applied to incoming reports; defaults to the
        #: original trusting behaviour so existing callers see no change.
        self.policy = policy if policy is not None else HardeningPolicy.unhardened()
        #: Plausibility ceiling: no real path through our first hop can
        #: have a PMTU above the link MTU toward it.
        self.link_mtu = link_mtu
        self._nonce_rng = random.Random(f"fpmtud-nonce:{nonce_seed}")
        self._pending: Dict[int, dict] = {}
        self._next_id = 1
        self.probes_sent = 0
        self.reports_received = 0
        self.timeouts = 0
        #: Reports dropped by validation, with a per-reason breakdown
        #: (``unknown-id`` / ``bounds``) in :attr:`rejections`.
        self.rejected_reports = 0
        self.rejections: Dict[str, int] = {"unknown-id": 0, "bounds": 0}
        #: Most recently discovered PMTU (None until a report lands).
        self.last_pmtu: Optional[int] = None
        #: Optional :class:`repro.obs.FlowTracer` recording the probe
        #: lifecycle (probe → report|timeout); guarded at call sites.
        self.tracer = None
        #: Optional :class:`repro.obs.SpanTracker`: each probe opens a
        #: ``probe`` span and the report closes it, feeding the
        #: px_fpmtud_probe_rtt_seconds histogram (the one-RTT claim).
        self.spans = None
        host.on_udp(src_port, self._on_report)

    def pending_probes(self) -> int:
        """Probes launched but not yet reported or timed out."""
        return len(self._pending)

    def probe(
        self,
        dst: int,
        probe_size: int,
        on_result: Callable[[FPmtudResult], None],
        timeout: float = 5.0,
        on_timeout: Optional[Callable[[], None]] = None,
    ) -> int:
        """Send one probe of *probe_size* (the next hop's eMTU) to *dst*.

        *on_result* fires when the daemon's report arrives (normally
        after a single RTT).  Returns the probe id.
        """
        probe_id = self._allocate_id()
        payload = _pack_probe(probe_id, probe_size)
        sent_at = self.host.sim.now
        handle = self.host.sim.schedule(timeout, self._on_probe_timeout, probe_id)
        self._pending[probe_id] = {
            "sent_at": sent_at,
            "probe_size": probe_size,
            "on_result": on_result,
            "on_timeout": on_timeout,
            "timer": handle,
            "span": (self.spans.open(sent_at, kind="probe")
                     if self.spans is not None else None),
        }
        # DF clear: routers are *expected* to fragment the probe.
        self.host.send_udp(dst, self.src_port, self.daemon_port, payload,
                           dont_fragment=False)
        self.probes_sent += 1
        if self.tracer is not None:
            self.tracer.record(
                sent_at, "pmtud-probe",
                probe_id=probe_id, dst=dst, size=probe_size,
            )
        return probe_id

    def _allocate_id(self) -> int:
        """Sequential ids normally; unguessable nonces under hardening."""
        if not self.policy.probe_nonces:
            probe_id = self._next_id
            self._next_id += 1
            return probe_id
        probe_id = self._nonce_rng.getrandbits(32)
        while probe_id == 0 or probe_id in self._pending:
            probe_id = self._nonce_rng.getrandbits(32)
        return probe_id

    def _reject_report(self, reason: str, probe_id: int, pmtu: Optional[int]) -> None:
        self.rejected_reports += 1
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        now = self.host.sim.now
        if self.spans is not None:
            # A balanced anomaly span: visible in the span stream (and
            # the latency timeline) without leaving anything open.
            self.spans.drop(self.spans.open(now, kind="rejected-report"),
                            now, reason)
        if self.tracer is not None:
            self.tracer.record(now, "pmtud-report-rejected",
                               probe_id=probe_id, reason=reason, pmtu=pmtu)

    def _on_report(self, packet: Packet, host: Host) -> None:
        parsed = _parse_report(packet.payload)
        if parsed is None:
            return
        probe_id, sizes = parsed
        pending = self._pending.get(probe_id)
        if pending is None:
            # Unsolicited (or forged/duplicate) report: with nonce ids
            # an off-path attacker lands here with overwhelming
            # probability.  Count it so the obs layer can alert.
            self._reject_report("unknown-id", probe_id,
                                max(sizes) if sizes else None)
            return
        pmtu = max(sizes) if sizes else pending["probe_size"]
        if self.policy.pmtu_bounds:
            ceiling = pending["probe_size"]
            if self.link_mtu is not None:
                ceiling = min(ceiling, self.link_mtu)
            if not (MIN_PLAUSIBLE_PMTU <= pmtu <= ceiling) or any(
                size > ceiling for size in sizes
            ):
                # Leave the probe pending: the timeout drives a retry,
                # so a lying daemon costs time, not correctness.
                self._reject_report("bounds", probe_id, pmtu)
                return
        del self._pending[probe_id]
        pending["timer"].cancel()
        self.reports_received += 1
        self.last_pmtu = pmtu
        if self.spans is not None and pending["span"] is not None:
            now = self.host.sim.now
            self.spans.close(pending["span"], now, outcome="report")
            self.spans.observe(PROBE_RTT_SECONDS, now - pending["sent_at"])
        if self.tracer is not None:
            self.tracer.record(
                self.host.sim.now, "pmtud-report",
                probe_id=probe_id, pmtu=pmtu, fragments=len(sizes),
            )
        result = FPmtudResult(
            pmtu=pmtu,
            elapsed=self.host.sim.now - pending["sent_at"],
            fragment_sizes=sizes,
            probe_size=pending["probe_size"],
        )
        pending["on_result"](result)

    def _on_probe_timeout(self, probe_id: int) -> None:
        pending = self._pending.pop(probe_id, None)
        if pending is None:
            return
        self.timeouts += 1
        if self.spans is not None and pending["span"] is not None:
            self.spans.drop(pending["span"], self.host.sim.now, "timeout")
        if self.tracer is not None:
            self.tracer.record(
                self.host.sim.now, "pmtud-timeout", probe_id=probe_id
            )
        if pending["on_timeout"]:
            pending["on_timeout"]()
