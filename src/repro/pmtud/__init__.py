"""Path MTU discovery: F-PMTUD and its baselines, plus the §5.3 survey."""

from .classical import ClassicalPmtud, ClassicalResult, PLATEAU_TABLE
from .echo import ECHO_PORT, ProbeEchoDaemon, pack_echo_ack
from .fpmtud import FPMTUD_PORT, FPmtudDaemon, FPmtudProber, FPmtudResult
from .hardening import MIN_PLAUSIBLE_PMTU, HardeningPolicy, ReportRateLimiter
from .plpmtud import Plpmtud, PlpmtudResult
from .survey import FragmentSurvey, SurveyRates, SurveyResult, probe_path_with_fragments

__all__ = [
    "HardeningPolicy",
    "ReportRateLimiter",
    "MIN_PLAUSIBLE_PMTU",
    "pack_echo_ack",
    "FPmtudProber",
    "FPmtudDaemon",
    "FPmtudResult",
    "FPMTUD_PORT",
    "ClassicalPmtud",
    "ClassicalResult",
    "PLATEAU_TABLE",
    "Plpmtud",
    "PlpmtudResult",
    "ProbeEchoDaemon",
    "ECHO_PORT",
    "FragmentSurvey",
    "SurveyRates",
    "SurveyResult",
    "probe_path_with_fragments",
]
