"""Path MTU discovery: F-PMTUD and its baselines, plus the §5.3 survey."""

from .classical import ClassicalPmtud, ClassicalResult, PLATEAU_TABLE
from .echo import ECHO_PORT, ProbeEchoDaemon
from .fpmtud import FPMTUD_PORT, FPmtudDaemon, FPmtudProber, FPmtudResult
from .plpmtud import Plpmtud, PlpmtudResult
from .survey import FragmentSurvey, SurveyRates, SurveyResult, probe_path_with_fragments

__all__ = [
    "FPmtudProber",
    "FPmtudDaemon",
    "FPmtudResult",
    "FPMTUD_PORT",
    "ClassicalPmtud",
    "ClassicalResult",
    "PLATEAU_TABLE",
    "Plpmtud",
    "PlpmtudResult",
    "ProbeEchoDaemon",
    "ECHO_PORT",
    "FragmentSurvey",
    "SurveyRates",
    "SurveyResult",
    "probe_path_with_fragments",
]
