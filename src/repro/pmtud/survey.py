"""The §5.3 Internet fragment-delivery survey, reproduced synthetically.

The paper probed 389,428 live servers (top-1M Cloudflare Radar domains)
with IP-fragmented HTTP requests: 99.98 % answered; of the 59 failures,
15 paths showed last-hop AS fragment filtering and the rest simply never
responded.  ICMP-based PMTUD, for comparison, succeeded on only ~51 %
of paths as of the 2018 TMA study.

We cannot reach the Internet, so the population is synthesized with
exactly those per-path pathology rates, and the *mechanism* of each
outcome (a filtering router actually dropping fragments, a blackhole
router actually suppressing ICMP) is validated packet-by-packet on
sampled topologies built from the real Router/Host code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..net.topology import Topology
from ..packet import build_udp, fragment_packet

__all__ = ["SurveyRates", "SurveyResult", "FragmentSurvey", "probe_path_with_fragments"]


@dataclass(frozen=True)
class SurveyRates:
    """Per-path pathology probabilities.

    Defaults reproduce the paper's measured population: 15 fragment-
    filtering last hops and 44 otherwise-unresponsive paths out of
    389,428; and the ~49 % ICMP blackhole rate from Custura et al. 2018
    for the classical-PMTUD comparison.
    """

    fragment_filter: float = 15 / 389_428
    unresponsive_to_fragments: float = 44 / 389_428
    icmp_blackhole: float = 0.49

    PAPER_POPULATION: int = 389_428


@dataclass
class SurveyResult:
    """Aggregate outcome over a server population."""

    population: int
    fragmented_ok: int
    filtered_last_hop: int
    unresponsive: int
    icmp_pmtud_ok: int

    @property
    def fragment_success_rate(self) -> float:
        return self.fragmented_ok / self.population if self.population else 0.0

    @property
    def icmp_success_rate(self) -> float:
        return self.icmp_pmtud_ok / self.population if self.population else 0.0


class FragmentSurvey:
    """Draws a synthetic server population and tallies outcomes."""

    def __init__(self, rates: SurveyRates = SurveyRates(), seed: int = 42):
        self.rates = rates
        self.rng = random.Random(seed)

    def run(self, population: int = SurveyRates.PAPER_POPULATION) -> SurveyResult:
        """Survey *population* servers; per-server outcome is Bernoulli."""
        filtered = 0
        unresponsive = 0
        icmp_ok = 0
        for _ in range(population):
            roll = self.rng.random()
            if roll < self.rates.fragment_filter:
                filtered += 1
            elif roll < self.rates.fragment_filter + self.rates.unresponsive_to_fragments:
                unresponsive += 1
            if self.rng.random() >= self.rates.icmp_blackhole:
                icmp_ok += 1
        return SurveyResult(
            population=population,
            fragmented_ok=population - filtered - unresponsive,
            filtered_last_hop=filtered,
            unresponsive=unresponsive,
            icmp_pmtud_ok=icmp_ok,
        )


def probe_path_with_fragments(filtering_last_hop: bool) -> bool:
    """Packet-level validation of one surveyed path.

    Builds client → core router → last-hop router → server with the
    real simulator, sends a pre-fragmented request, and returns whether
    the server's (reassembled) response came back — demonstrating the
    mechanism behind each survey tally.
    """
    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    core = topo.add_router("core")
    last_hop = topo.add_router("last-hop", filter_fragments=filtering_last_hop)
    topo.link(client, core, mtu=1500)
    topo.link(core, last_hop, mtu=1500)
    topo.link(last_hop, server, mtu=1500)
    topo.build_routes()

    responded = []

    def on_request(packet, host):
        host.send_udp(packet.ip.src, 80, packet.udp.src_port, b"HTTP/1.1 200 OK")

    server.on_udp(80, on_request)
    client.on_udp(55555, lambda packet, host: responded.append(packet))

    request = build_udp(client.ip, server.ip, 55555, 80,
                        payload=b"GET / HTTP/1.1\r\nHost: example\r\n\r\n" + b"\0" * 2500)
    for fragment in fragment_packet(request, 1500):
        client.send(fragment)
    topo.run(until=1.0)
    return bool(responded)
