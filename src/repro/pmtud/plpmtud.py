"""Packetization-layer PMTUD (RFC 4821), Scamper-style.

PLPMTUD avoids ICMP by probing with DF data packets and treating the
*absence of acknowledgment* as evidence the probe exceeded the PMTU.
That inference is inherently slow: every size that fails costs the full
probe timeout (times the retry count, since a single loss might be
congestion), and the binary search needs several sizes to converge.
This is the multi-RTT behaviour F-PMTUD's one-round-trip design is
measured against in §5.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..net.host import Host
from ..packet import Packet
from .echo import ECHO_PORT, pack_echo_probe, parse_echo_ack
from .hardening import HardeningPolicy

__all__ = ["Plpmtud", "PlpmtudResult"]

#: RFC 4821 recommends starting from a size assumed safe everywhere.
BASE_PMTU = 1280
MIN_PMTU = 576


@dataclass
class PlpmtudResult:
    """Outcome of a PLPMTUD search."""

    pmtu: int
    elapsed: float
    probes_sent: int
    timeouts: int
    sizes_probed: List[int]


class Plpmtud:
    """Binary-search PLPMTUD toward an echo daemon."""

    def __init__(
        self,
        host: Host,
        src_port: int = 54000,
        probe_timeout: float = 2.0,
        max_retries: int = 2,
        granularity: int = 8,
        policy: Optional[HardeningPolicy] = None,
        nonce_seed: int = 0,
    ):
        self.host = host
        self.src_port = src_port
        self.probe_timeout = probe_timeout
        self.max_retries = max_retries
        self.granularity = granularity
        #: With ``probe_nonces`` on, probe ids are unguessable, so a
        #: spoofed PEAK ack cannot confirm a probe the path actually
        #: swallowed (the inflation attack on RFC 4821's loss inference).
        self.policy = policy if policy is not None else HardeningPolicy.unhardened()
        self._nonce_rng = random.Random(f"plpmtud-nonce:{nonce_seed}")
        self._active: Optional[dict] = None
        self._probe_counter = 0
        #: Acks that matched no outstanding probe id.
        self.acks_ignored = 0
        host.on_udp(src_port, self._on_ack)

    def discover(
        self,
        dst: int,
        local_mtu: int,
        on_done: Callable[[PlpmtudResult], None],
    ) -> None:
        """Search for the PMTU toward *dst*, bounded by *local_mtu*."""
        if self._active is not None:
            raise RuntimeError("discovery already in progress")
        self._active = {
            "dst": dst,
            "low": MIN_PMTU,
            "high": local_mtu,
            "candidate": min(BASE_PMTU, local_mtu),
            "on_done": on_done,
            "started_at": self.host.sim.now,
            "probes": 0,
            "timeouts": 0,
            "retries": 0,
            "sizes": [],
            "timer": None,
        }
        self._probe_current()

    # ------------------------------------------------------------------
    def _probe_current(self) -> None:
        state = self._active
        size = state["candidate"]
        if self.policy.probe_nonces:
            probe_id = self._nonce_rng.getrandbits(32)
        else:
            self._probe_counter += 1
            probe_id = self._probe_counter
        state["probe_id"] = probe_id
        state["probes"] += 1
        if not state["sizes"] or state["sizes"][-1] != size:
            state["sizes"].append(size)
        payload = pack_echo_probe(probe_id, size)
        self.host.send_udp(state["dst"], self.src_port, ECHO_PORT, payload,
                           dont_fragment=True)
        if state["timer"] is not None:
            state["timer"].cancel()
        state["timer"] = self.host.sim.schedule(self.probe_timeout, self._on_timeout)

    def _on_ack(self, packet: Packet, host: Host) -> None:
        state = self._active
        if state is None or parse_echo_ack(packet.payload) != state["probe_id"]:
            if state is not None and parse_echo_ack(packet.payload) is not None:
                self.acks_ignored += 1
            return
        state["timer"].cancel()
        state["retries"] = 0
        state["low"] = state["candidate"]
        self._advance()

    def _on_timeout(self) -> None:
        state = self._active
        if state is None:
            return
        state["retries"] += 1
        if state["retries"] < self.max_retries:
            # Could be congestion loss: retry the same size first.
            self._probe_current()
            return
        state["timeouts"] += 1
        state["retries"] = 0
        state["high"] = state["candidate"] - 1
        self._advance()

    def _advance(self) -> None:
        state = self._active
        if state["high"] - state["low"] < self.granularity:
            self._finish()
            return
        if state["candidate"] == state["low"] and state["candidate"] < state["high"]:
            # Last probe succeeded: try the upper bound directly first
            # (common case: the whole path supports the local MTU).
            if state["low"] == min(BASE_PMTU, state["high"]) and state["probes"] <= self.max_retries:
                state["candidate"] = state["high"]
                self._probe_current()
                return
        state["candidate"] = (state["low"] + state["high"] + 1) // 2
        self._probe_current()

    def _finish(self) -> None:
        state = self._active
        self._active = None
        result = PlpmtudResult(
            pmtu=state["low"],
            elapsed=self.host.sim.now - state["started_at"],
            probes_sent=state["probes"],
            timeouts=state["timeouts"],
            sizes_probed=state["sizes"],
        )
        state["on_done"](result)
