"""A small UDP echo responder used by the baseline PMTUD methods.

Classical PMTUD and PLPMTUD both need positive confirmation that a
probe of a given size reached the destination; this daemon echoes a
short acknowledgment carrying the probe id (the packetization-layer
ACK role in RFC 4821 terms).
"""

from __future__ import annotations

import struct
from typing import Optional

from ..net.host import Host
from ..packet import Packet

__all__ = [
    "ProbeEchoDaemon",
    "ECHO_PORT",
    "pack_echo_ack",
    "pack_echo_probe",
    "parse_echo_ack",
]

ECHO_PORT = 7838
_ACK_MAGIC = b"PEAK"
_PROBE_MAGIC = b"PEPR"


def pack_echo_probe(probe_id: int, size: int) -> bytes:
    """A padded probe payload for an IP packet of exactly *size* bytes."""
    payload_len = size - 28
    head = _PROBE_MAGIC + struct.pack("!I", probe_id)
    if payload_len < len(head):
        raise ValueError(f"probe size {size} too small")
    return head + bytes(payload_len - len(head))


def pack_echo_ack(probe_id: int) -> bytes:
    """An ack for *probe_id* — what the daemon sends, and exactly what
    an off-path forger has to guess to fake packetization-layer
    delivery (the RFC 4821 inflation attack modelled in
    :mod:`repro.chaos.attacks`)."""
    return _ACK_MAGIC + struct.pack("!I", probe_id)


def parse_echo_ack(payload: bytes) -> Optional[int]:
    """The probe id inside an ack, or None."""
    if len(payload) < 8 or payload[:4] != _ACK_MAGIC:
        return None
    return struct.unpack_from("!I", payload, 4)[0]


class ProbeEchoDaemon:
    """Acknowledges echo probes with a minimal UDP reply."""

    def __init__(self, host: Host, port: int = ECHO_PORT):
        self.host = host
        self.port = port
        self.acks_sent = 0
        host.on_udp(port, self._on_probe)

    def _on_probe(self, packet: Packet, host: Host) -> None:
        if len(packet.payload) < 8 or packet.payload[:4] != _PROBE_MAGIC:
            return
        probe_id = struct.unpack_from("!I", packet.payload, 4)[0]
        ack = pack_echo_ack(probe_id)
        host.send_udp(packet.ip.src, self.port, packet.udp.src_port, ack)
        self.acks_sent += 1
