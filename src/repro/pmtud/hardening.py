"""Hardening policy for the PMTUD probe/cache path.

The paper's F-PMTUD design (§4.2) trusts two inputs it does not
authenticate: the daemon's fragment-size report and — on the classical
fallback — ICMP fragmentation-needed messages.  Both are forgeable by
an off-path attacker who can guess a 4-tuple (trivial under address
sharing; see PAPERS.md on off-path PMTUD attacks), and both feed the
PXGW's split-clamp cache, so one accepted lie mis-sizes every
subsequent outbound segment of the victim flow.

:class:`HardeningPolicy` is the single knob bundle for the defenses,
each independently togglable so the adversarial corpus
(:mod:`repro.chaos.attacks`) can demonstrate every defense
*differentially* — the unhardened stack measurably breaks under each
attack, the hardened stack does not:

* ``probe_nonces`` — probe ids drawn from a seeded CSPRNG-style 32-bit
  space instead of a guessable sequential counter; a forged report or
  echo-ack must hit a live nonce to be heard at all.
* ``pmtu_bounds`` — accepted estimates are clamped to the plausible
  band ``[576, min(probe size, link MTU)]``; absurd values (covert
  channels, micro-segmentation bombs, inflation past the first hop)
  are rejected and counted.
* ``reject_raises`` — an unsolicited report may *lower* a cached PMTU
  (fail-safe) but never raise one learned from a probe; raising is how
  an attacker turns a safe clamp into a blackhole.
* ``rate_limit_reports`` — unsolicited PTB acceptance runs through a
  deterministic sim-time token bucket, bounding cache churn under a
  forged-PTB flood.
* ``validate_inner`` — the quoted inner header of a PTB must name a
  source address/port this endpoint actually uses, not just the
  destination (RFC 5927-style origin validation).
* ``per_flow_cache`` — PMTU entries are keyed per flow, not per
  destination, so a poisoned entry for one flow behind a shared
  address cannot shadow its neighbours'.

Every rejection is counted (``rejected_reports`` on the agents,
``poison_rejected`` on the cache) and exported through
:func:`repro.obs.collectors.observe_pmtud`, so an attack that the
hardened stack absorbs is still *visible* — the detection story the
alert rules in :func:`repro.obs.alerts.adversarial_alert_rules` build
on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardeningPolicy", "ReportRateLimiter", "MIN_PLAUSIBLE_PMTU"]

#: Below this the value cannot be a real IPv4 path MTU under RFC 791
#: reassembly guarantees; anything smaller in a report/PTB is hostile
#: (or broken, which deserves the same treatment).
MIN_PLAUSIBLE_PMTU = 576


@dataclass(frozen=True)
class HardeningPolicy:
    """Togglable defenses for the PMTUD probe/cache path."""

    probe_nonces: bool = True
    pmtu_bounds: bool = True
    reject_raises: bool = True
    rate_limit_reports: bool = True
    validate_inner: bool = True
    per_flow_cache: bool = True
    #: Sustained unsolicited-PTB acceptance rate (messages/second) when
    #: ``rate_limit_reports`` is on.
    report_rate: float = 10.0
    #: Burst allowance of the token bucket.
    report_burst: int = 4

    @classmethod
    def hardened(cls) -> "HardeningPolicy":
        """Every defense on (the recommended deployment posture)."""
        return cls()

    @classmethod
    def unhardened(cls) -> "HardeningPolicy":
        """Every defense off — the paper's original trusting stack."""
        return cls(
            probe_nonces=False,
            pmtu_bounds=False,
            reject_raises=False,
            rate_limit_reports=False,
            validate_inner=False,
            per_flow_cache=False,
        )


class ReportRateLimiter:
    """A deterministic sim-time token bucket for unsolicited reports.

    No wall clock, no randomness: two same-seed runs make identical
    accept/reject decisions, which keeps attack scenarios replayable.
    """

    def __init__(self, rate: float, burst: int):
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst >= 1")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._last: float = 0.0
        self.allowed = 0
        self.throttled = 0

    def allow(self, now: float) -> bool:
        """Spend one token if available; refills at ``rate``/second."""
        if now > self._last:
            self._tokens = min(float(self.burst),
                               self._tokens + (now - self._last) * self.rate)
            self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.allowed += 1
            return True
        self.throttled += 1
        return False
