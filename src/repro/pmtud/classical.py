"""Classical path MTU discovery (RFC 1191): DF probes + ICMP feedback.

The sender probes with DF set at its local MTU; routers that cannot
forward reply with ICMP 'fragmentation needed' carrying the next-hop
MTU, and the sender retries at that size.  The method's Achilles heel
is its total dependence on ICMP delivery: behind a blackhole router,
oversized probes vanish silently and discovery stalls until timeout —
the failure mode measured at ~49 % of Internet paths by 2018.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..net.host import Host
from ..packet import ICMPMessage, IPv4Header, Packet
from .echo import ECHO_PORT, pack_echo_probe, parse_echo_ack
from .hardening import MIN_PLAUSIBLE_PMTU, HardeningPolicy, ReportRateLimiter

__all__ = ["ClassicalPmtud", "ClassicalResult", "PLATEAU_TABLE"]

#: RFC 1191 §7.1 plateau table, used when the ICMP message carries no
#: next-hop MTU (old routers set it to zero).
PLATEAU_TABLE = [65535, 32000, 17914, 9000, 8166, 4352, 2002, 1492, 1006, 576, 296, 68]


@dataclass
class ClassicalResult:
    """Outcome of a classical PMTUD run."""

    pmtu: Optional[int]  # None when discovery failed (blackhole)
    elapsed: float
    probes_sent: int
    icmp_received: int
    blackholed: bool


class ClassicalPmtud:
    """One RFC 1191 discovery toward a destination running an echo daemon."""

    def __init__(
        self,
        host: Host,
        src_port: int = 53000,
        probe_timeout: float = 2.0,
        max_retries: int = 3,
        policy: Optional[HardeningPolicy] = None,
        nonce_seed: int = 0,
    ):
        self.host = host
        self.src_port = src_port
        self.probe_timeout = probe_timeout
        self.max_retries = max_retries
        #: ICMP is the attack surface here: with hardening on, a PTB
        #: must quote *our* 4-tuple, carry a plausible lowering hint,
        #: and pass a token-bucket rate limit before it moves the
        #: estimate (off-path RFC 5927-style validation).
        self.policy = policy if policy is not None else HardeningPolicy.unhardened()
        self._nonce_rng = random.Random(f"classical-nonce:{nonce_seed}")
        self._limiter = (ReportRateLimiter(self.policy.report_rate,
                                           self.policy.report_burst)
                         if self.policy.rate_limit_reports else None)
        self._active: Optional[dict] = None
        self._probe_counter = 0
        #: PTBs dropped by validation, by reason.
        self.ptb_rejected = 0
        self.ptb_rejections: dict = {}
        host.on_udp(src_port, self._on_ack)
        host.on_icmp(self._on_icmp)

    def discover(
        self,
        dst: int,
        initial_mtu: int,
        on_done: Callable[[ClassicalResult], None],
    ) -> None:
        """Start discovery toward *dst* from *initial_mtu*."""
        if self._active is not None:
            raise RuntimeError("discovery already in progress")
        self._active = {
            "dst": dst,
            "estimate": initial_mtu,
            "on_done": on_done,
            "started_at": self.host.sim.now,
            "probes": 0,
            "icmp": 0,
            "retries": 0,
            "timer": None,
        }
        self._send_probe()

    # ------------------------------------------------------------------
    def _send_probe(self) -> None:
        state = self._active
        if self.policy.probe_nonces:
            probe_id = self._nonce_rng.getrandbits(32)
        else:
            self._probe_counter += 1
            probe_id = self._probe_counter
        state["probe_id"] = probe_id
        state["probes"] += 1
        payload = pack_echo_probe(probe_id, state["estimate"])
        self.host.send_udp(state["dst"], self.src_port, ECHO_PORT, payload,
                           dont_fragment=True)
        if state["timer"] is not None:
            state["timer"].cancel()
        state["timer"] = self.host.sim.schedule(self.probe_timeout, self._on_timeout)

    def _on_ack(self, packet: Packet, host: Host) -> None:
        state = self._active
        if state is None:
            return
        if parse_echo_ack(packet.payload) != state["probe_id"]:
            return
        state["timer"].cancel()
        self._finish(pmtu=state["estimate"], blackholed=False)

    def _reject_ptb(self, reason: str) -> None:
        self.ptb_rejected += 1
        self.ptb_rejections[reason] = self.ptb_rejections.get(reason, 0) + 1

    def _on_icmp(self, packet: Packet, message: ICMPMessage) -> None:
        state = self._active
        if state is None or not message.is_frag_needed:
            return
        try:
            inner = IPv4Header.unpack(message.payload, verify=False)
        except ValueError:
            return
        if inner.dst != state["dst"]:
            return
        if self.policy.validate_inner:
            # The quoted packet must be one we could have sent: our
            # address, our probe source port.  An off-path forger has
            # to guess the port to get this far.
            if inner.src != self.host.ip:
                self._reject_ptb("inner-src")
                return
            if len(message.payload) >= 24:
                quoted_sport = struct.unpack_from("!H", message.payload, 20)[0]
                if quoted_sport != self.src_port:
                    self._reject_ptb("inner-port")
                    return
        if self._limiter is not None and not self._limiter.allow(self.host.sim.now):
            self._reject_ptb("rate-limited")
            return
        hinted = message.next_hop_mtu
        if self.policy.pmtu_bounds and hinted and not (
            MIN_PLAUSIBLE_PMTU <= hinted < state["estimate"]
        ):
            # Absurdly small, or a "raise" that contradicts the probe
            # we just saw die: hostile either way.
            self._reject_ptb("bounds")
            return
        if self.policy.pmtu_bounds and not hinted:
            # A hintless PTB would force a plateau drop — a forged one
            # walks the estimate down the whole table.  Treat silence
            # as untrustworthy and let the probe timeout path decide.
            self._reject_ptb("no-hint")
            return
        state["icmp"] += 1
        if hinted and hinted < state["estimate"]:
            state["estimate"] = hinted
        else:
            # No hint: drop to the next RFC 1191 plateau.
            state["estimate"] = next(
                (p for p in PLATEAU_TABLE if p < state["estimate"]), 68
            )
        state["retries"] = 0
        self._send_probe()

    def _on_timeout(self) -> None:
        state = self._active
        if state is None:
            return
        state["retries"] += 1
        if state["retries"] >= self.max_retries:
            # Silence: no ICMP, no ack — the blackhole case.
            self._finish(pmtu=None, blackholed=True)
            return
        self._send_probe()

    def _finish(self, pmtu: Optional[int], blackholed: bool) -> None:
        state = self._active
        self._active = None
        result = ClassicalResult(
            pmtu=pmtu,
            elapsed=self.host.sim.now - state["started_at"],
            probes_sent=state["probes"],
            icmp_received=state["icmp"],
            blackholed=blackholed,
        )
        state["on_done"](result)
