"""TCP congestion control: Reno with Appropriate Byte Counting, and CUBIC.

The paper's end-to-end argument (§2.1) rests on window arithmetic being
MSS-denominated: slow start grows the window per *byte acknowledged*
(RFC 3465) and congestion avoidance adds one MSS per RTT, so a 9000 B
MSS ramps ~6x faster than 1500 B.  These classes implement exactly that
arithmetic; the connection machinery calls them on ACK/loss events.
"""

from __future__ import annotations

__all__ = ["CongestionControl", "Reno", "Cubic"]


class CongestionControl:
    """Interface: byte-denominated congestion window management."""

    def __init__(self, mss: int, initial_window_packets: int = 10):
        if mss <= 0:
            raise ValueError(f"bad MSS {mss}")
        self.mss = mss
        #: RFC 6928 initial window (10 segments).
        self.cwnd = float(initial_window_packets * mss)
        self.ssthresh = float("inf")

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: int, now: float = 0.0) -> None:
        """New data was cumulatively acknowledged."""
        raise NotImplementedError

    def on_loss(self, now: float = 0.0) -> None:
        """A loss was detected via fast retransmit (multiplicative decrease)."""
        raise NotImplementedError

    def on_timeout(self, now: float = 0.0) -> None:
        """An RTO fired: collapse to one segment (RFC 5681)."""
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)


class Reno(CongestionControl):
    """NewReno-style AIMD with Appropriate Byte Counting (RFC 3465)."""

    #: ABC aggressiveness limit: at most L*SMSS growth per ACK.
    ABC_LIMIT = 2

    def on_ack(self, acked_bytes: int, now: float = 0.0) -> None:
        if acked_bytes <= 0:
            return
        if self.in_slow_start:
            self.cwnd += min(acked_bytes, self.ABC_LIMIT * self.mss)
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            # Additive increase: one MSS per window's worth of ACKs.
            self.cwnd += self.mss * min(acked_bytes, self.mss) / self.cwnd

    def on_loss(self, now: float = 0.0) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh


class Cubic(CongestionControl):
    """A compact CUBIC (RFC 9438) model.

    The window follows ``W(t) = C (t - K)^3 + W_max`` after a loss,
    with the standard TCP-friendly floor omitted (our experiments run
    either pure-CUBIC or pure-Reno populations).
    """

    C = 0.4  # scaling constant, in segments/s^3
    BETA = 0.7

    def __init__(self, mss: int, initial_window_packets: int = 10):
        super().__init__(mss, initial_window_packets)
        self._w_max = self.cwnd
        self._epoch_start: "float | None" = None
        self._k = 0.0

    def on_ack(self, acked_bytes: int, now: float = 0.0) -> None:
        if acked_bytes <= 0:
            return
        if self.in_slow_start:
            self.cwnd += min(acked_bytes, 2 * self.mss)
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
            return
        if self._epoch_start is None:
            self._epoch_start = now
            w_max_seg = self._w_max / self.mss
            cwnd_seg = self.cwnd / self.mss
            self._k = ((w_max_seg - cwnd_seg) / self.C) ** (1.0 / 3.0) if w_max_seg > cwnd_seg else 0.0
        t = now - self._epoch_start
        target_seg = self.C * (t - self._k) ** 3 + self._w_max / self.mss
        target = max(target_seg * self.mss, self.mss)
        if target > self.cwnd:
            # Approach the cubic target gradually (per-ACK fraction).
            self.cwnd += (target - self.cwnd) * min(acked_bytes, self.mss) / self.cwnd
        else:
            self.cwnd += 0.01 * self.mss * min(acked_bytes, self.mss) / self.cwnd

    def on_loss(self, now: float = 0.0) -> None:
        self._w_max = self.cwnd
        self.ssthresh = max(self.cwnd * self.BETA, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        self._epoch_start = None

    def on_timeout(self, now: float = 0.0) -> None:
        super().on_timeout(now)
        self._w_max = max(self._w_max, self.ssthresh)
        self._epoch_start = None
