"""An event-driven TCP implementation over the simulator.

Faithful enough for the paper's arguments to be *emergent*:

* MSS is negotiated in the handshake via the MSS option — which is the
  hook PXGW's MSS-clamp module rewrites;
* congestion control is byte-counting AIMD (or CUBIC), so window ramp
  and steady-state throughput scale with the negotiated MSS;
* loss recovery is NewReno-lite (3 dup-ACKs → fast retransmit, RTO with
  exponential backoff), so random WAN loss yields Mathis-like behaviour;
* data packets carry DF, and an ICMP frag-needed handler implements
  classical PMTUD at the sender.

The byte stream itself is modelled as counts with zero-filled payloads:
contents never matter to any experiment, but lengths, sequence numbers,
and wire packets are exact.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Type

from ..net.host import Host
from ..packet import (
    ICMPMessage,
    IPv4Header,
    Packet,
    TCPFlags,
    TCPHeader,
    TCPOption,
)
from ..packet.builder import next_ip_id
from .congestion import CongestionControl, Reno

__all__ = ["TCPConnection", "TCPListener", "TCPState"]

_ZERO_CACHE: Dict[int, bytes] = {}


def _zeros(length: int) -> bytes:
    """A shared zero buffer of *length* (payload contents are irrelevant)."""
    buffer = _ZERO_CACHE.get(length)
    if buffer is None:
        buffer = bytes(length)
        if len(_ZERO_CACHE) < 4096:
            _ZERO_CACHE[length] = buffer
    return buffer


class TCPState:
    """Connection states (subset sufficient for the experiments)."""

    CLOSED = "CLOSED"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT = "FIN_WAIT"
    CLOSE_WAIT = "CLOSE_WAIT"


MAX_SEQ = 1 << 32


def _seq_lt(a: int, b: int) -> bool:
    """Modular sequence comparison a < b (RFC 1982 style)."""
    return 0 < ((b - a) & (MAX_SEQ - 1)) < MAX_SEQ // 2


class TCPConnection:
    """One endpoint of a TCP connection living on a simulated Host."""

    INITIAL_RTO = 1.0
    MIN_RTO = 0.2
    MAX_RTO = 60.0
    DELACK_TIMEOUT = 0.025
    WINDOW_SCALE = 10

    def __init__(
        self,
        host: Host,
        local_port: int,
        peer_ip: int,
        peer_port: int,
        mss: int = 1460,
        cc_class: Type[CongestionControl] = Reno,
        pmtud: bool = True,
        iss: int = 0,
    ):
        self.host = host
        self.sim = host.sim
        self.local_port = local_port
        self.peer_ip = peer_ip
        self.peer_port = peer_port
        self.local_mss = mss
        self.cc_class = cc_class
        self.pmtud_enabled = pmtud
        self.state = TCPState.CLOSED

        # Sender sequence state.
        self.iss = iss
        self.snd_una = iss
        self.snd_nxt = iss
        self.send_mss = mss  # refined at handshake / by PMTUD
        self.peer_wscale = 0
        self.peer_window = 65535
        self.cc: Optional[CongestionControl] = None

        # Receiver sequence state.
        self.irs = 0
        self.rcv_nxt = 0
        #: Out-of-order data held for reassembly: disjoint, merged
        #: [start, end) sequence intervals, sorted by distance ahead of
        #: ``rcv_nxt``.
        self._ooo: List[tuple] = []
        self._segs_since_ack = 0
        self._delack_handle = None

        # Application model: bulk bytes pending to send.
        self._pending_bytes = 0
        self._fin_queued = False

        # RTT estimation / retransmission.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = self.INITIAL_RTO
        self._rto_handle = None
        self._rtt_sample: Optional[tuple] = None  # (target_seq, sent_at)
        self._dupacks = 0
        self._in_recovery = False
        self._recover = iss
        #: End of the range already retransmitted this recovery; a
        #: partial ACK below this mark must not trigger another
        #: retransmission (the data is already in flight).
        self._rtx_until = iss
        #: Peer-SACKed [start, end) intervals beyond snd_una (merged,
        #: sorted by distance ahead of snd_una).
        self._sacked: List[tuple] = []

        # Statistics.
        self.bytes_delivered = 0
        self.bytes_acked = 0
        self.retransmits = 0
        self.timeouts = 0
        self.established_at: Optional[float] = None
        self.cwnd_trace: List[tuple] = []
        self.on_data: Optional[Callable[[int], None]] = None
        self.on_established: Optional[Callable[[], None]] = None

        host.on_tcp(local_port, peer_ip, peer_port, self._on_packet)
        if pmtud:
            host.on_icmp(self._on_icmp)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Actively open: send SYN carrying our MSS and window scale."""
        if self.state != TCPState.CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = TCPState.SYN_SENT
        self._send_control(
            flags=TCPFlags.SYN,
            seq=self.iss,
            options=[TCPOption.mss(self.local_mss), TCPOption.window_scale(self.WINDOW_SCALE)],
        )
        self.snd_nxt = (self.iss + 1) & (MAX_SEQ - 1)
        self._arm_rto()

    def send_bulk(self, nbytes: int) -> None:
        """Queue *nbytes* of application data (an iPerf-style source)."""
        if nbytes < 0:
            raise ValueError("cannot send negative bytes")
        self._pending_bytes += nbytes
        self._pump()

    def close(self) -> None:
        """Half-close once all queued data has been sent."""
        self._fin_queued = True
        self._pump()

    @property
    def flight_size(self) -> int:
        """Unacknowledged bytes in flight."""
        return (self.snd_nxt - self.snd_una) & (MAX_SEQ - 1)

    @property
    def effective_peer_window(self) -> int:
        return self.peer_window << self.peer_wscale

    def throughput_bps(self, duration: float) -> float:
        """Receiver-side goodput over *duration*."""
        if duration <= 0:
            return 0.0
        return self.bytes_delivered * 8.0 / duration

    # ------------------------------------------------------------------
    # Packet construction
    # ------------------------------------------------------------------
    def _build(self, flags: int, seq: int, payload: bytes = b"", options=None) -> Packet:
        # Direct header construction instead of build_tcp(): this runs
        # once per segment and per ACK, and the builder's generality
        # (address coercion, option assembly, keyword plumbing) was a
        # measurable slice of the send path.  Field values — including
        # the IP total_length, which deliberately excludes TCP options
        # exactly as the builder-then-patch-options sequence did — are
        # byte-identical to the old path.
        tcp = TCPHeader.__new__(TCPHeader)
        tcp.src_port = self.local_port
        tcp.dst_port = self.peer_port
        tcp.seq = seq
        tcp.ack = self.rcv_nxt
        tcp.flags = flags
        tcp.window = 65535
        tcp.checksum = 0
        tcp.urgent = 0
        tcp.options = list(options) if options else []
        ip = IPv4Header.__new__(IPv4Header)
        ip.src = self.host.ip
        ip.dst = self.peer_ip
        ip.protocol = 6
        ip.total_length = 40 + len(payload)
        ip.identification = next_ip_id()
        ip.dont_fragment = True
        ip.more_fragments = False
        ip.fragment_offset = 0
        ip.ttl = 64
        ip.tos = 0
        ip.options = b""
        return Packet(ip, tcp, payload)

    def _send_control(self, flags: int, seq: int, options=None) -> None:
        self.host.send(self._build(flags, seq, options=options))

    def _send_ack(self) -> None:
        self._segs_since_ack = 0
        self._cancel_delack()
        options = None
        if self._ooo:
            # Advertise up to 3 SACK blocks (RFC 2018) so the sender
            # can retransmit exactly the missing ranges.
            blocks = b"".join(
                struct.pack("!II", start, stop)
                for start, stop in self._ooo[:3]
            )
            options = [TCPOption(TCPOption.SACK, blocks)]
        self._send_control(TCPFlags.ACK, self.snd_nxt, options=options)

    # ------------------------------------------------------------------
    # Handshake and ingress dispatch
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        tcp = packet.l4
        flags = tcp.flags
        state = self.state
        if state == TCPState.SYN_SENT and flags & TCPFlags.SYN and flags & TCPFlags.ACK:
            self._complete_active_open(packet)
            return
        if state == TCPState.SYN_RCVD and flags & TCPFlags.ACK and not flags & TCPFlags.SYN:
            if tcp.ack == self.snd_nxt:
                self._establish()
        if self.state == TCPState.ESTABLISHED and flags & TCPFlags.SYN:
            # A retransmitted SYN-ACK: our final ACK was lost; re-ACK.
            self._send_ack()
            return
        if self.state in (TCPState.ESTABLISHED, TCPState.FIN_WAIT, TCPState.CLOSE_WAIT,
                          TCPState.SYN_RCVD):
            if flags & TCPFlags.ACK:
                if tcp.options:
                    self._record_sack(tcp)
                self._handle_ack(tcp.ack)
            if packet.payload:
                self._handle_data(tcp.seq, len(packet.payload), flags & TCPFlags.PSH)
            if flags & TCPFlags.FIN:
                self._handle_fin(tcp.seq, len(packet.payload))

    def accept_syn(self, packet: Packet) -> None:
        """Passive open: respond to a SYN (called by TCPListener)."""
        tcp = packet.tcp
        self.irs = tcp.seq
        self.rcv_nxt = (tcp.seq + 1) & (MAX_SEQ - 1)
        peer_mss = tcp.mss_option
        if peer_mss is not None:
            self.send_mss = min(self.local_mss, peer_mss)
        wscale = tcp.find_option(TCPOption.WINDOW_SCALE)
        if wscale is not None:
            self.peer_wscale = wscale.data[0]
        self.state = TCPState.SYN_RCVD
        self._send_control(
            flags=TCPFlags.SYN | TCPFlags.ACK,
            seq=self.iss,
            options=[TCPOption.mss(self.local_mss), TCPOption.window_scale(self.WINDOW_SCALE)],
        )
        self.snd_nxt = (self.iss + 1) & (MAX_SEQ - 1)
        self._arm_rto()

    def _complete_active_open(self, packet: Packet) -> None:
        tcp = packet.tcp
        self.irs = tcp.seq
        self.rcv_nxt = (tcp.seq + 1) & (MAX_SEQ - 1)
        self.snd_una = tcp.ack
        peer_mss = tcp.mss_option
        if peer_mss is not None:
            self.send_mss = min(self.local_mss, peer_mss)
        wscale = tcp.find_option(TCPOption.WINDOW_SCALE)
        if wscale is not None:
            self.peer_wscale = wscale.data[0]
        self.peer_window = tcp.window
        self._establish()
        self._send_ack()

    def _establish(self) -> None:
        if self.state == TCPState.ESTABLISHED:
            return
        self.state = TCPState.ESTABLISHED
        self.established_at = self.sim.now
        self.cc = self.cc_class(self.send_mss)
        self._cancel_rto()
        if self.on_established:
            self.on_established()
        self._pump()

    # ------------------------------------------------------------------
    # Sender path
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Send as much queued data as cwnd and rwnd allow."""
        if self.state != TCPState.ESTABLISHED or self.cc is None:
            return
        window = min(int(self.cc.cwnd), self.peer_window << self.peer_wscale)
        # Locals for the window loop: flight size and pending bytes are
        # re-derived per iteration on the hot path otherwise.
        mask = MAX_SEQ - 1
        flight = (self.snd_nxt - self.snd_una) & mask
        pending = self._pending_bytes
        send_mss = self.send_mss
        while pending > 0 and flight < window:
            room = window - flight
            length = send_mss if send_mss < pending else pending
            if length > room:
                # Silly-window avoidance: hold a sub-MSS tail until the
                # window opens (unless nothing at all is in flight).
                if flight > 0:
                    break
                length = room
            if length <= 0:
                break
            self._transmit_segment(self.snd_nxt, length)
            self.snd_nxt = (self.snd_nxt + length) & mask
            pending -= length
            flight += length
            self._pending_bytes = pending
        if self._fin_queued and self._pending_bytes == 0 and self.state == TCPState.ESTABLISHED:
            self._send_control(TCPFlags.FIN | TCPFlags.ACK, self.snd_nxt)
            self.snd_nxt = (self.snd_nxt + 1) & (MAX_SEQ - 1)
            self.state = TCPState.FIN_WAIT
        if self.flight_size > 0 and self._rto_handle is None:
            self._arm_rto()

    def _transmit_segment(self, seq: int, length: int, retransmission: bool = False) -> None:
        packet = self._build(TCPFlags.ACK, seq, payload=_zeros(length))
        if not retransmission and self._rtt_sample is None:
            self._rtt_sample = ((seq + length) & (MAX_SEQ - 1), self.sim.now)
        self.host.send(packet)

    def _handle_ack(self, ack: int) -> None:
        if _seq_lt(self.snd_una, ack) and not _seq_lt(self.snd_nxt, ack):
            acked = (ack - self.snd_una) & (MAX_SEQ - 1)
            self.snd_una = ack
            self.bytes_acked += acked
            self._sack_prune()
            self._dupacks = 0
            self._sample_rtt(ack)
            if self._in_recovery and not _seq_lt(ack, self._recover):
                self._in_recovery = False  # full ACK: recovery complete
            if self.cc is not None:
                if self._in_recovery:
                    # NewReno partial ACK: retransmit the next hole,
                    # unless that range is already in flight from an
                    # earlier retransmission (receivers ACK at finer
                    # granularity than we retransmit when a PXGW has
                    # resegmented the stream).
                    if not _seq_lt(self.snd_una, self._rtx_until):
                        self._retransmit_head()
                else:
                    self.cc.on_ack(acked, self.sim.now)
                self.cwnd_trace.append((self.sim.now, self.cc.cwnd))
            self._cancel_rto()
            if self.snd_nxt != self.snd_una:
                self._arm_rto()
            else:
                self.rto = max(self.MIN_RTO, self.rto / 2)
            self._pump()
        elif ack == self.snd_una and self.snd_nxt != self.snd_una:
            self._dupacks += 1
            if self._dupacks == 3:
                self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        if self._in_recovery:
            return  # at most one window reduction per loss event
        self._in_recovery = True
        self._recover = self.snd_nxt
        self._rtx_until = self.snd_una
        if self.cc is not None:
            self.cc.on_loss(self.sim.now)
            self.cwnd_trace.append((self.sim.now, self.cc.cwnd))
        self._retransmit_head()

    def _record_sack(self, tcp) -> None:
        """Fold the packet's SACK blocks into the scoreboard."""
        option = tcp.find_option(TCPOption.SACK)
        if option is None or len(option.data) % 8:
            return
        for offset in range(0, len(option.data), 8):
            start, stop = struct.unpack_from("!II", option.data, offset)
            self._sack_insert(start, stop)

    def _sack_rel(self, seq: int) -> int:
        return (seq - self.snd_una) & (MAX_SEQ - 1)

    def _sack_insert(self, start: int, stop: int) -> None:
        if self._sack_rel(stop) >= MAX_SEQ // 2:
            return  # stale block entirely below snd_una
        self._sacked.append((start, stop))
        self._sacked.sort(key=lambda block: self._sack_rel(block[0]))
        merged: List[tuple] = []
        for lo, hi in self._sacked:
            if merged and self._sack_rel(lo) <= self._sack_rel(merged[-1][1]):
                if self._sack_rel(hi) > self._sack_rel(merged[-1][1]):
                    merged[-1] = (merged[-1][0], hi)
            else:
                merged.append((lo, hi))
        self._sacked = merged

    def _sack_prune(self) -> None:
        """Drop blocks at or below snd_una after it advanced."""
        kept = []
        for lo, hi in self._sacked:
            if 0 < self._sack_rel(hi) < MAX_SEQ // 2:
                kept.append((lo if 0 < self._sack_rel(lo) < MAX_SEQ // 2 else self.snd_una, hi))
        self._sacked = kept

    def _retransmit_head(self) -> None:
        """Retransmit the first missing range.

        With SACK information the retransmission covers exactly the
        hole in front of the first SACKed block — critical when a
        middlebox resegmented the stream and receiver ACK boundaries no
        longer match sender segments.
        """
        self._sack_prune()
        length = min(self.send_mss, self.flight_size)
        if self._sacked:
            hole = self._sack_rel(self._sacked[0][0])
            if 0 < hole < MAX_SEQ // 2:
                length = min(length, hole)
        if length <= 0:
            return
        self.retransmits += 1
        self._rtt_sample = None  # Karn's rule
        self._rtx_until = (self.snd_una + length) & (MAX_SEQ - 1)
        self._transmit_segment(self.snd_una, length, retransmission=True)
        self._arm_rto()

    def _sample_rtt(self, ack: int) -> None:
        if self._rtt_sample is None:
            return
        target, sent_at = self._rtt_sample
        if _seq_lt(ack, target):
            return
        self._rtt_sample = None
        sample = self.sim.now - sent_at
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(self.MAX_RTO, max(self.MIN_RTO, self.srtt + 4 * self.rttvar))

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        self._cancel_rto()
        self._rto_handle = self.sim.schedule(self.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_rto(self) -> None:
        self._rto_handle = None
        self.timeouts += 1
        self.rto = min(self.MAX_RTO, self.rto * 2)
        if self.state == TCPState.SYN_SENT:
            self._send_control(
                TCPFlags.SYN,
                self.iss,
                options=[TCPOption.mss(self.local_mss),
                         TCPOption.window_scale(self.WINDOW_SCALE)],
            )
            self._arm_rto()
            return
        if self.state == TCPState.SYN_RCVD:
            self._send_control(TCPFlags.SYN | TCPFlags.ACK, self.iss,
                               options=[TCPOption.mss(self.local_mss),
                                        TCPOption.window_scale(self.WINDOW_SCALE)])
            self._arm_rto()
            return
        if self.flight_size == 0:
            return
        if self.cc is not None:
            self.cc.on_timeout(self.sim.now)
            self.cwnd_trace.append((self.sim.now, self.cc.cwnd))
        self._in_recovery = True
        self._recover = self.snd_nxt
        self._rtx_until = self.snd_una  # RTO: force a fresh retransmit
        self._retransmit_head()

    # ------------------------------------------------------------------
    # Receiver path
    # ------------------------------------------------------------------
    def _handle_data(self, seq: int, length: int, psh: bool) -> None:
        end = (seq + length) & (MAX_SEQ - 1)
        if not _seq_lt(self.rcv_nxt, end):  # entirely old
            self._send_ack()
            return
        if seq != self.rcv_nxt and _seq_lt(seq, self.rcv_nxt):
            # Partial overlap: keep only the new tail.
            seq = self.rcv_nxt
        if seq == self.rcv_nxt:
            self._deliver((end - seq) & (MAX_SEQ - 1))
            self._drain_ooo()
            self._segs_since_ack += 1
            if self._segs_since_ack >= 2 or psh or self._ooo:
                self._send_ack()
            else:
                self._schedule_delack()
        else:
            # Out of order: hold and dup-ACK immediately.
            self._store_ooo(seq, end)
            self._send_ack()

    def _deliver(self, length: int) -> None:
        self.rcv_nxt = (self.rcv_nxt + length) & (MAX_SEQ - 1)
        self.bytes_delivered += length
        if self.on_data:
            self.on_data(length)

    def _rel(self, seq: int) -> int:
        """Distance of *seq* ahead of rcv_nxt (modular)."""
        return (seq - self.rcv_nxt) & (MAX_SEQ - 1)

    def _store_ooo(self, seq: int, end: int) -> None:
        """Insert [seq, end) into the merged out-of-order interval set.

        Segment boundaries need not align between transmissions and
        retransmissions (window-limited senders emit sub-MSS tails), so
        reassembly must merge arbitrary overlapping byte ranges.
        """
        intervals = self._ooo
        intervals.append((seq, end))
        intervals.sort(key=lambda interval: self._rel(interval[0]))
        merged: List[tuple] = []
        for start, stop in intervals:
            if merged and self._rel(start) <= self._rel(merged[-1][1]):
                if self._rel(stop) > self._rel(merged[-1][1]):
                    merged[-1] = (merged[-1][0], stop)
            else:
                merged.append((start, stop))
        self._ooo = merged

    def _drain_ooo(self) -> None:
        """Deliver any stored intervals now reachable from rcv_nxt."""
        while self._ooo:
            start, stop = self._ooo[0]
            if self._rel(start) > 0 and self._rel(start) < MAX_SEQ // 2:
                break  # still a hole in front
            self._ooo.pop(0)
            tail = self._rel(stop)
            if 0 < tail < MAX_SEQ // 2:
                self._deliver(tail)

    def _handle_fin(self, seq: int, payload_len: int) -> None:
        fin_seq = (seq + payload_len) & (MAX_SEQ - 1)
        if fin_seq == self.rcv_nxt:
            self.rcv_nxt = (self.rcv_nxt + 1) & (MAX_SEQ - 1)
            if self.state == TCPState.ESTABLISHED:
                self.state = TCPState.CLOSE_WAIT
            self._send_ack()

    def _schedule_delack(self) -> None:
        if self._delack_handle is None:
            self._delack_handle = self.sim.schedule(self.DELACK_TIMEOUT, self._on_delack)

    def _cancel_delack(self) -> None:
        if self._delack_handle is not None:
            self._delack_handle.cancel()
            self._delack_handle = None

    def _on_delack(self) -> None:
        self._delack_handle = None
        if self._segs_since_ack > 0:
            self._send_ack()

    # ------------------------------------------------------------------
    # Classical PMTUD at the sender
    # ------------------------------------------------------------------
    def _on_icmp(self, packet: Packet, message: ICMPMessage) -> None:
        if not message.is_frag_needed or not self.pmtud_enabled:
            return
        # Match the embedded header to this connection's flow.
        try:
            inner = IPv4Header.unpack(message.payload, verify=False)
        except ValueError:
            return
        if inner.dst != self.peer_ip or inner.protocol != 6:
            return
        new_mss = max(536, message.next_hop_mtu - 40)
        if new_mss < self.send_mss:
            self.send_mss = new_mss
            if self.cc is not None:
                self.cc.mss = new_mss
            # Retransmit the head at the new size.
            if self.flight_size > 0:
                self._retransmit_head()


class TCPListener:
    """A passive listener that spawns server connections on SYN."""

    def __init__(
        self,
        host: Host,
        port: int,
        mss: int = 1460,
        cc_class: Type[CongestionControl] = Reno,
        on_accept: Optional[Callable[[TCPConnection], None]] = None,
    ):
        self.host = host
        self.port = port
        self.mss = mss
        self.cc_class = cc_class
        self.on_accept = on_accept
        self.connections: List[TCPConnection] = []
        host.on_tcp_accept(port, self._on_syn)

    def _on_syn(self, packet: Packet) -> None:
        if not packet.tcp.syn or packet.tcp.ack_flag:
            return
        connection = TCPConnection(
            self.host,
            local_port=self.port,
            peer_ip=packet.ip.src,
            peer_port=packet.tcp.src_port,
            mss=self.mss,
            cc_class=self.cc_class,
        )
        self.connections.append(connection)
        connection.accept_syn(packet)
        if self.on_accept:
            self.on_accept(connection)
