"""Closed-form TCP throughput models used for validation.

* Mathis et al. (1997): ``tput = MSS / (RTT * sqrt(2p/3))`` — the
  "macroscopic" square-root law the paper cites for the claim that
  steady-state throughput is proportional to the MSS.
* Padhye et al. (1998): the full PFTK formula including timeouts.
* Slow-start ramp arithmetic for the cwnd-growth claims of §2.1.
"""

from __future__ import annotations

import math

__all__ = [
    "mathis_throughput_bps",
    "padhye_throughput_bps",
    "slow_start_rtts_to_rate",
    "congestion_avoidance_ramp_bps",
]


def mathis_throughput_bps(mss: int, rtt: float, loss: float) -> float:
    """Mathis square-root model; bits per second."""
    if loss <= 0:
        return float("inf")
    if rtt <= 0:
        raise ValueError("RTT must be positive")
    return (mss / (rtt * math.sqrt(2.0 * loss / 3.0))) * 8.0


def padhye_throughput_bps(
    mss: int,
    rtt: float,
    loss: float,
    rto: float = 0.2,
    acked_per_ack: int = 2,
) -> float:
    """Padhye (PFTK) model with timeout term; bits per second."""
    if loss <= 0:
        return float("inf")
    b = acked_per_ack
    term_fast = rtt * math.sqrt(2.0 * b * loss / 3.0)
    term_to = rto * min(1.0, 3.0 * math.sqrt(3.0 * b * loss / 8.0)) * loss * (
        1.0 + 32.0 * loss * loss
    )
    return (mss / (term_fast + term_to)) * 8.0


def slow_start_rtts_to_rate(target_bps: float, mss: int, rtt: float,
                            initial_window_packets: int = 10) -> float:
    """RTTs of slow start needed to reach *target_bps*.

    With per-byte ACB the window doubles per RTT from IW; a larger MSS
    starts from a proportionally larger window, saving log2(ratio) RTTs.
    """
    target_window = target_bps / 8.0 * rtt
    initial = initial_window_packets * mss
    if initial >= target_window:
        return 0.0
    return math.log2(target_window / initial)


def congestion_avoidance_ramp_bps(mss: int, rtt: float, duration: float) -> float:
    """Throughput gained over *duration* of pure additive increase.

    The window grows one MSS per RTT, so after ``duration`` the rate
    has climbed ``MSS * duration / RTT**2`` bytes/s — the 6x-faster
    ramp claim for 9000 B vs 1500 B in §5.2 is this linear slope.
    """
    if rtt <= 0:
        raise ValueError("RTT must be positive")
    return mss * duration / (rtt * rtt) * 8.0
