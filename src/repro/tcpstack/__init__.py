"""Event-driven TCP stack plus closed-form throughput models."""

from .congestion import CongestionControl, Cubic, Reno
from .connection import TCPConnection, TCPListener, TCPState
from .model import (
    congestion_avoidance_ramp_bps,
    mathis_throughput_bps,
    padhye_throughput_bps,
    slow_start_rtts_to_rate,
)

__all__ = [
    "TCPConnection",
    "TCPListener",
    "TCPState",
    "CongestionControl",
    "Reno",
    "Cubic",
    "mathis_throughput_bps",
    "padhye_throughput_bps",
    "slow_start_rtts_to_rate",
    "congestion_avoidance_ramp_bps",
]
