"""Fairness metrics for mixed-MTU flow populations.

The paper's conclusion asks: *"Does a large MTU affect network
congestion and how do we ensure fair bandwidth allocation in the mix of
small and large-MTU senders?"*  These helpers support the extension
experiment that quantifies the question: AIMD's additive-increase step
is one MSS per RTT, so a 9000 B sender reclaims bandwidth ~6x faster
after every loss and structurally out-competes 1500 B senders sharing a
bottleneck.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["jain_index", "throughput_shares", "mss_bias_ratio"]


def jain_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one flow hogs."""
    if not throughputs:
        raise ValueError("no throughputs")
    if any(value < 0 for value in throughputs):
        raise ValueError("throughputs must be non-negative")
    total = sum(throughputs)
    if total == 0:
        return 1.0  # all-zero is (vacuously) even
    squares = sum(value * value for value in throughputs)
    return total * total / (len(throughputs) * squares)


def throughput_shares(throughputs: Sequence[float]) -> "list[float]":
    """Normalize to fractional shares of the aggregate."""
    total = sum(throughputs)
    if total == 0:
        return [0.0] * len(throughputs)
    return [value / total for value in throughputs]


def mss_bias_ratio(by_group: "Dict[str, Sequence[float]]",
                   large: str = "large", small: str = "small") -> float:
    """Mean per-flow throughput of the large-MSS group over the small's."""
    large_flows = by_group[large]
    small_flows = by_group[small]
    if not large_flows or not small_flows:
        raise ValueError("both groups need flows")
    mean_large = sum(large_flows) / len(large_flows)
    mean_small = sum(small_flows) / len(small_flows)
    if mean_small == 0:
        return float("inf")
    return mean_large / mean_small
