"""Small measurement helpers shared by tests and benchmarks."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["throughput_bps", "mean", "percentile", "size_histogram_summary",
           "geometric_mean"]


def throughput_bps(bytes_delivered: int, duration: float) -> float:
    """Goodput in bits/second."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    return bytes_delivered * 8.0 / duration


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(values) / len(values) if values else 0.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= value
    return product ** (1.0 / len(values))


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100])."""
    if not values:
        raise ValueError("no values")
    if not 0 <= p <= 100:
        raise ValueError("percentile out of range")
    ordered = sorted(values)
    rank = max(1, round(p / 100 * len(ordered)))
    return ordered[rank - 1]


def size_histogram_summary(histogram: Dict[int, int]) -> "Tuple[float, int]":
    """(mean size, modal size) of a size->count histogram."""
    total = sum(histogram.values())
    if total == 0:
        return 0.0, 0
    mean_size = sum(size * count for size, count in histogram.items()) / total
    modal = max(histogram.items(), key=lambda item: item[1])[0]
    return mean_size, modal
