"""Measurement helpers and paper-vs-measured reporting."""

from .fairness import jain_index, mss_bias_ratio, throughput_shares
from .metrics import (
    geometric_mean,
    mean,
    percentile,
    size_histogram_summary,
    throughput_bps,
)
from .report import ExperimentReport, ReportRow, format_bps

__all__ = [
    "ExperimentReport",
    "ReportRow",
    "format_bps",
    "throughput_bps",
    "mean",
    "geometric_mean",
    "percentile",
    "size_histogram_summary",
    "jain_index",
    "throughput_shares",
    "mss_bias_ratio",
]
