"""Uniform paper-vs-measured reporting for the benchmark harness.

Every benchmark prints one :class:`ExperimentReport`: the experiment id
(table/figure number), one row per reported quantity, and the ratio of
measured to paper values.  ``EXPERIMENTS.md`` is generated from the
same rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["ReportRow", "ExperimentReport", "format_bps"]


def format_bps(value: float) -> str:
    """Human-readable bits/second."""
    if value >= 1e12:
        return f"{value / 1e12:.2f} Tbps"
    if value >= 1e9:
        return f"{value / 1e9:.1f} Gbps"
    if value >= 1e6:
        return f"{value / 1e6:.1f} Mbps"
    return f"{value:.0f} bps"


@dataclass
class ReportRow:
    """One reported quantity: paper's value vs ours."""

    metric: str
    paper: Optional[float]
    measured: float
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper


@dataclass
class ExperimentReport:
    """All rows for one table/figure reproduction."""

    experiment: str
    description: str
    rows: List[ReportRow] = field(default_factory=list)

    def add(self, metric: str, paper: Optional[float], measured: float,
            unit: str = "", note: str = "") -> ReportRow:
        """Record one quantity."""
        row = ReportRow(metric=metric, paper=paper, measured=measured,
                        unit=unit, note=note)
        self.rows.append(row)
        return row

    def render(self) -> str:
        """A fixed-width table for terminal output."""
        lines = [f"== {self.experiment}: {self.description} =="]
        header = f"{'metric':<44} {'paper':>12} {'measured':>12} {'ratio':>7}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            paper = f"{row.paper:g}" if row.paper is not None else "-"
            ratio = f"{row.ratio:.2f}x" if row.ratio is not None else "-"
            unit = f" {row.unit}" if row.unit else ""
            note = f"   [{row.note}]" if row.note else ""
            lines.append(
                f"{row.metric:<44} {paper:>12} {row.measured:>12g} {ratio:>7}{unit}{note}"
            )
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console side effect
        print()
        print(self.render())

    def within(self, metric: str, rel_tolerance: float) -> bool:
        """True if *metric*'s measured value is within tolerance of paper."""
        for row in self.rows:
            if row.metric == metric and row.paper:
                return abs(row.measured - row.paper) <= rel_tolerance * abs(row.paper)
        raise KeyError(f"no comparable row named {metric!r}")
