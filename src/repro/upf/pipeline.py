"""The UPF datapath: GTP-U decap/encap around PDR/QER/FAR processing.

Mirrors the OMEC/BESS run-to-completion pipeline: each packet is parsed,
matched, policed, rewritten, and transmitted by one core.  Cycle charges
use :class:`repro.cpu.UpfCosts`; the 'multiple rule table lookups per
packet' the paper highlights are the ``pdr_lookup``/``far_apply``/
``qer_enforce`` charges, which dwarf the per-byte cost and make the
pipeline packet-rate bound.
"""

from __future__ import annotations

from typing import List, Optional

from ..cpu import DEFAULT_UPF_COSTS, CycleAccount, UpfCosts
from ..packet import (
    GTPU_PORT,
    GTPUHeader,
    IPProto,
    IPv4Header,
    Packet,
    UDPHeader,
)
from ..packet.builder import next_ip_id
from ..packet.gtpu import GTPU_HEADER_LEN
from .policing import TokenBucket
from .rules import FarAction
from .session import SessionManager

__all__ = ["Upf", "UpfStats"]


class UpfStats:
    """Per-UPF counters."""

    def __init__(self):
        self.uplink_packets = 0
        self.downlink_packets = 0
        self.dropped_no_match = 0
        self.dropped_gate = 0
        self.dropped_malformed = 0
        self.dropped_mbr = 0
        self.buffered = 0


class Upf:
    """A software UPF instance bound to one N3 (RAN) address."""

    def __init__(
        self,
        n3_address: int,
        sessions: Optional[SessionManager] = None,
        costs: UpfCosts = DEFAULT_UPF_COSTS,
    ):
        self.n3_address = n3_address
        self.sessions = sessions or SessionManager()
        self.costs = costs
        self.stats = UpfStats()
        self.account = CycleAccount()
        #: Per-(seid, qer) token buckets, created lazily for QERs with
        #: an MBR configured.
        self._buckets: dict = {}
        #: PDR match counts keyed ``(direction, seid, pdr_id)`` — the
        #: per-rule hit counters the observability layer exports.
        self.rule_hits: dict = {}

    # ------------------------------------------------------------------
    def process(self, packet: Packet, now: float = 0.0) -> List[Packet]:
        """Run one packet through the pipeline; returns egress packets.

        *now* drives MBR policing; pass the simulation clock when QERs
        carry rate limits.
        """
        costs = self.costs
        self._now = now
        self.account.charge(costs.rx_descriptor, category="rx")
        self.account.charge(costs.per_byte * packet.total_len,
                            mem_bytes=packet.total_len, category="dma")

        if self._is_gtpu(packet):
            out = self._uplink(packet)
        else:
            out = self._downlink(packet)
        for egress in out:
            self.account.charge(costs.tx_descriptor, category="tx")
        return out

    def process_batch(self, packets: "list[Packet]") -> List[Packet]:
        """Process a burst (the benchmarks' entry point)."""
        out: List[Packet] = []
        for packet in packets:
            out.extend(self.process(packet))
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _is_gtpu(packet: Packet) -> bool:
        return packet.is_udp and packet.udp.dst_port == GTPU_PORT

    def _uplink(self, packet: Packet) -> List[Packet]:
        costs = self.costs
        try:
            gtpu = GTPUHeader.unpack(packet.payload)
        except ValueError:
            self.stats.dropped_malformed += 1
            return []
        self.account.charge(costs.gtpu_decap, category="gtpu")

        self.account.charge(costs.pdr_lookup, category="pdr")
        match = self.sessions.lookup_uplink(gtpu.teid)
        if match is None:
            self.stats.dropped_no_match += 1
            return []
        session, pdr = match
        key = ("uplink", session.seid, pdr.pdr_id)
        self.rule_hits[key] = self.rule_hits.get(key, 0) + 1

        if not self._qer_pass(session, pdr, packet):
            return []

        self.account.charge(costs.far_apply, category="far")
        far = session.fars[pdr.far_id]
        if far.action == FarAction.DROP:
            self.stats.dropped_gate += 1
            return []
        if far.action == FarAction.BUFFER:
            self.stats.buffered += 1
            return []

        # Decap: the inner IP packet continues toward the data network.
        inner_bytes = packet.payload[GTPU_HEADER_LEN : GTPU_HEADER_LEN + gtpu.length]
        try:
            inner = Packet.from_bytes(inner_bytes, verify=False)
        except ValueError:
            self.stats.dropped_malformed += 1
            return []
        self.stats.uplink_packets += 1
        self.account.note_packet(inner.l4_payload_len)
        return [inner]

    def _downlink(self, packet: Packet) -> List[Packet]:
        costs = self.costs
        self.account.charge(costs.pdr_lookup, category="pdr")
        match = self.sessions.lookup_downlink(packet.ip.dst)
        if match is None:
            self.stats.dropped_no_match += 1
            return []
        session, pdr = match
        key = ("downlink", session.seid, pdr.pdr_id)
        self.rule_hits[key] = self.rule_hits.get(key, 0) + 1

        if not self._qer_pass(session, pdr, packet):
            return []

        self.account.charge(costs.far_apply, category="far")
        far = session.fars[pdr.far_id]
        if far.action == FarAction.DROP:
            self.stats.dropped_gate += 1
            return []
        if far.action == FarAction.BUFFER:
            self.stats.buffered += 1
            return []

        self.account.charge(costs.gtpu_encap, category="gtpu")
        encapsulated = self._encap(packet, far.encap_teid, far.encap_peer_ip)
        self.stats.downlink_packets += 1
        self.account.note_packet(packet.l4_payload_len)
        return [encapsulated]

    def _qer_pass(self, session, pdr, packet: Packet) -> bool:
        if pdr.qer_id is None:
            return True
        self.account.charge(self.costs.qer_enforce, category="qer")
        qer = session.qers[pdr.qer_id]
        if not qer.gate_open:
            self.stats.dropped_gate += 1
            return False
        if qer.mbr_bps is not None:
            key = (session.seid, qer.qer_id)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(qer.mbr_bps)
                self._buckets[key] = bucket
            if not bucket.allow(packet.total_len, getattr(self, "_now", 0.0)):
                self.stats.dropped_mbr += 1
                return False
        return True

    def _encap(self, packet: Packet, teid: int, gnb_ip: int) -> Packet:
        """Wrap *packet* in GTP-U/UDP/IP toward the gNB."""
        inner_bytes = packet.to_bytes()
        gtpu = GTPUHeader(teid=teid)
        payload = gtpu.pack(payload_len=len(inner_bytes)) + inner_bytes
        udp = UDPHeader(src_port=GTPU_PORT, dst_port=GTPU_PORT, length=8 + len(payload))
        ip = IPv4Header(
            src=self.n3_address,
            dst=gnb_ip,
            protocol=IPProto.UDP,
            identification=next_ip_id(),
            ttl=64,
        )
        ip.total_length = ip.header_len + 8 + len(payload)
        return Packet(ip=ip, l4=udp, payload=payload)
