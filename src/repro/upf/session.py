"""PFCP-style session management for the UPF."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .rules import FAR, PDR, QER, Direction, FarAction

__all__ = ["Session", "SessionManager"]


@dataclass
class Session:
    """One UE's PFCP session: its rules and identifiers."""

    seid: int
    ue_ip: int
    uplink_teid: int
    gnb_teid: int
    gnb_ip: int
    pdrs: List[PDR] = field(default_factory=list)
    fars: Dict[int, FAR] = field(default_factory=dict)
    qers: Dict[int, QER] = field(default_factory=dict)


class SessionManager:
    """Installs sessions and maintains the UPF's fast-path lookup tables."""

    def __init__(self):
        self.sessions: Dict[int, Session] = {}
        #: Fast-path tables the datapath consults per packet.
        self.uplink_by_teid: Dict[int, "tuple[Session, PDR]"] = {}
        self.downlink_by_ue_ip: Dict[int, "tuple[Session, PDR]"] = {}

    def __len__(self) -> int:
        return len(self.sessions)

    def create_session(
        self,
        seid: int,
        ue_ip: int,
        uplink_teid: int,
        gnb_teid: int,
        gnb_ip: int,
        mbr_bps: Optional[float] = None,
    ) -> Session:
        """Install a standard bidirectional session (2 PDRs, 2 FARs, 1 QER)."""
        if seid in self.sessions:
            raise ValueError(f"duplicate SEID {seid}")
        if uplink_teid in self.uplink_by_teid:
            raise ValueError(f"TEID {uplink_teid} already allocated")

        qer = QER(qer_id=1, gate_open=True, mbr_bps=mbr_bps)
        uplink_far = FAR(far_id=1, action=FarAction.FORWARD, decap=True)
        downlink_far = FAR(
            far_id=2, action=FarAction.FORWARD, encap_teid=gnb_teid, encap_peer_ip=gnb_ip
        )
        uplink_pdr = PDR(
            pdr_id=1, direction=Direction.UPLINK, far_id=1, qer_id=1, match_teid=uplink_teid
        )
        downlink_pdr = PDR(
            pdr_id=2, direction=Direction.DOWNLINK, far_id=2, qer_id=1, match_ue_ip=ue_ip
        )
        session = Session(
            seid=seid,
            ue_ip=ue_ip,
            uplink_teid=uplink_teid,
            gnb_teid=gnb_teid,
            gnb_ip=gnb_ip,
            pdrs=[uplink_pdr, downlink_pdr],
            fars={1: uplink_far, 2: downlink_far},
            qers={1: qer},
        )
        self.sessions[seid] = session
        self.uplink_by_teid[uplink_teid] = (session, uplink_pdr)
        self.downlink_by_ue_ip[ue_ip] = (session, downlink_pdr)
        return session

    def remove_session(self, seid: int) -> None:
        """Tear down a session and its fast-path entries."""
        session = self.sessions.pop(seid, None)
        if session is None:
            raise KeyError(f"no session {seid}")
        self.uplink_by_teid.pop(session.uplink_teid, None)
        self.downlink_by_ue_ip.pop(session.ue_ip, None)

    def lookup_uplink(self, teid: int) -> "Optional[tuple[Session, PDR]]":
        """Fast-path uplink match by tunnel TEID."""
        return self.uplink_by_teid.get(teid)

    def lookup_downlink(self, ue_ip: int) -> "Optional[tuple[Session, PDR]]":
        """Fast-path downlink match by UE address."""
        return self.downlink_by_ue_ip.get(ue_ip)
