"""5G UPF substrate (OMEC-style PDR/FAR/QER pipeline over GTP-U)."""

from .pipeline import Upf, UpfStats
from .policing import TokenBucket
from .rules import FAR, PDR, QER, Direction, FarAction
from .session import Session, SessionManager

__all__ = [
    "Upf",
    "UpfStats",
    "TokenBucket",
    "PDR",
    "FAR",
    "QER",
    "Direction",
    "FarAction",
    "Session",
    "SessionManager",
]
