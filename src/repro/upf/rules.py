"""UPF rule structures: PDR, FAR, QER (3GPP TS 29.244 subset).

The OMEC UPF datapath applies, per packet: packet detection (PDR
match), QoS enforcement (QER), and a forwarding action (FAR) which may
remove or create a GTP-U outer header.  Everything here is header-only
work — the property that makes UPF throughput packet-rate-bound and
Figure 1a's MTU scaling nearly linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Direction", "PDR", "FAR", "QER", "FarAction"]


class Direction:
    """Traffic direction through the UPF."""

    UPLINK = "uplink"  # UE -> data network (GTP-U encapsulated on ingress)
    DOWNLINK = "downlink"  # data network -> UE (plain IP on ingress)


class FarAction:
    """What a FAR does with a matched packet."""

    FORWARD = "forward"
    DROP = "drop"
    BUFFER = "buffer"


@dataclass(frozen=True)
class FAR:
    """Forwarding Action Rule."""

    far_id: int
    action: str = FarAction.FORWARD
    #: Create a GTP-U outer header toward this TEID/peer (downlink).
    encap_teid: Optional[int] = None
    encap_peer_ip: Optional[int] = None
    #: Remove the GTP-U outer header (uplink).
    decap: bool = False


@dataclass(frozen=True)
class QER(object):
    """QoS Enforcement Rule: a gate plus an MBR cap (bits/second)."""

    qer_id: int
    gate_open: bool = True
    mbr_bps: Optional[float] = None


@dataclass(frozen=True)
class PDR:
    """Packet Detection Rule.

    Uplink PDRs match the local F-TEID of the GTP-U tunnel; downlink
    PDRs match the UE's IP as destination.  ``precedence`` breaks ties
    (lower wins), as in PFCP.
    """

    pdr_id: int
    direction: str
    far_id: int
    qer_id: Optional[int] = None
    precedence: int = 100
    match_teid: Optional[int] = None
    match_ue_ip: Optional[int] = None

    def __post_init__(self):
        if self.direction == Direction.UPLINK and self.match_teid is None:
            raise ValueError("uplink PDR needs match_teid")
        if self.direction == Direction.DOWNLINK and self.match_ue_ip is None:
            raise ValueError("downlink PDR needs match_ue_ip")
