"""Rate policing for QER enforcement: a classic token bucket.

PFCP QERs carry an MBR (maximum bit rate); the UPF polices each
session's traffic against it.  The bucket refills continuously at the
MBR and absorbs bursts up to its depth.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    """A byte-denominated token bucket."""

    def __init__(self, rate_bps: float, burst_bytes: float = 65536.0):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.rate_bytes_per_sec = rate_bps / 8.0
        self.burst_bytes = burst_bytes
        self.tokens = burst_bytes
        self._last_refill = 0.0
        self.allowed = 0
        self.denied = 0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self.tokens = min(
                self.burst_bytes, self.tokens + elapsed * self.rate_bytes_per_sec
            )
            self._last_refill = now

    def allow(self, nbytes: int, now: float) -> bool:
        """Charge *nbytes* at time *now*; False when over rate."""
        self._refill(now)
        if self.tokens >= nbytes:
            self.tokens -= nbytes
            self.allowed += 1
            return True
        self.denied += 1
        return False
