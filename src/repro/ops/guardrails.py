"""Declarative guardrail diffs over twin registry snapshots.

Alert rules judge the candidate against absolute SLO thresholds; the
guardrails here judge it against the **baseline twin** — relative
tolerance bands around the service-level indicators the paper's
operating envelope cares about: merge conversion ratio, gateway drops,
over-eMTU egress, egress packet amplification (micro-segmentation from
a poisoned or mis-sized clamp), and p95 gateway residency.

Each :class:`Guardrail` names one indicator and the direction that is
*good* for it.  A candidate breaches when it is worse than the
baseline by more than ``rel_tolerance`` (fractional) plus
``abs_tolerance`` (absolute, so a zero baseline still has slack
semantics).  Indicators with no data (``None``) never breach —
identical to the alert rules' no-data convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Guardrail", "default_guardrails", "histogram_quantile",
           "snapshot_indicators", "evaluate_guardrails"]

#: The direction in which the candidate may safely move.
_DIRECTIONS = ("higher", "lower")


@dataclass(frozen=True)
class Guardrail:
    """One tolerance band around a baseline-relative indicator.

    ``direction="lower"`` means lower is better (drops, latency): the
    candidate breaches when it exceeds
    ``baseline * (1 + rel_tolerance) + abs_tolerance``.
    ``direction="higher"`` means higher is better (merge ratio): the
    candidate breaches when it falls below
    ``baseline * (1 - rel_tolerance) - abs_tolerance``.
    """

    name: str
    indicator: str
    direction: str
    rel_tolerance: float = 0.0
    abs_tolerance: float = 0.0
    description: str = ""

    def __post_init__(self):
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r} (use {_DIRECTIONS})")
        if self.rel_tolerance < 0 or self.abs_tolerance < 0:
            raise ValueError("tolerances must be >= 0")

    def allowed(self, baseline: float) -> float:
        """The worst candidate value tolerated for *baseline*."""
        if self.direction == "lower":
            return baseline * (1 + self.rel_tolerance) + self.abs_tolerance
        return baseline * (1 - self.rel_tolerance) - self.abs_tolerance

    def breached(self, baseline: Optional[float],
                 candidate: Optional[float]) -> bool:
        """Whether the candidate is outside the band (no data: never)."""
        if baseline is None or candidate is None:
            return False
        allowed = self.allowed(baseline)
        if self.direction == "lower":
            return candidate > allowed
        return candidate < allowed

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "indicator": self.indicator,
            "direction": self.direction,
            "rel_tolerance": self.rel_tolerance,
            "abs_tolerance": self.abs_tolerance,
            "description": self.description,
        }


def default_guardrails() -> tuple:
    """The stock tolerance bands for a PXGW canary."""
    return (
        Guardrail(
            name="merge-ratio",
            indicator="merge_ratio",
            direction="higher",
            rel_tolerance=0.30, abs_tolerance=0.01,
            description="Merged-packet share of ingress must stay "
                        "within 30% of the baseline twin: a collapsed "
                        "ratio means PX is charging cycles without "
                        "converting packets.",
        ),
        Guardrail(
            name="gateway-drops",
            indicator="drop_count",
            direction="lower",
            description="Zero tolerance: any gateway drop the baseline "
                        "twin did not also take is a regression.",
        ),
        Guardrail(
            name="oversize-egress",
            indicator="oversize_egress",
            direction="lower",
            description="Zero tolerance: over-eMTU packets offered to "
                        "the external wire (counted at the egress tap, "
                        "including the link's silent drop-mtu losses) "
                        "mean the candidate believes a wrong MTU.",
        ),
        Guardrail(
            name="egress-amplification",
            indicator="egress_amplification",
            direction="lower",
            rel_tolerance=0.25, abs_tolerance=0.05,
            description="Egress-to-ingress packet ratio: a jump means "
                        "micro-segmentation — splits clamped far below "
                        "path MTU, e.g. from a poisoned PMTU cache.",
        ),
        Guardrail(
            name="p95-residency",
            indicator="p95_residency",
            direction="lower",
            rel_tolerance=1.00, abs_tolerance=0.001,
            description="Gateway residency p95 may at most double "
                        "(+1 ms): beyond that the merge engines are "
                        "holding payload, e.g. a flush-timer "
                        "regression.",
        ),
    )


def histogram_quantile(snapshot: Dict[str, float], metric: str,
                       quantile: float = 0.95) -> Optional[float]:
    """The *quantile* upper-bound estimate from cumulative buckets.

    Prometheus-style: the smallest bucket bound whose cumulative count
    reaches ``quantile * total``.  Returns ``None`` when the histogram
    is absent or empty.
    """
    prefix = f'{metric}_bucket{{le="'
    buckets = []
    for key, value in snapshot.items():
        if key.startswith(prefix):
            bound = key[len(prefix):-2]
            buckets.append((
                math.inf if bound == "+Inf" else float(bound), value))
    if not buckets:
        return None
    buckets.sort()
    total = buckets[-1][1]
    if total <= 0:
        return None
    target = quantile * total
    for bound, cumulative in buckets:
        if cumulative >= target:
            return bound
    return buckets[-1][0]


def snapshot_indicators(snapshot: Dict[str, float],
                        gateway: str = "pxgw",
                        oversize_egress: int = 0) -> Dict[str, Optional[float]]:
    """The guardrail indicators for one twin at one horizon.

    *oversize_egress* comes from the twin's egress tap (it is link
    evidence, not a registry series).
    """
    labels = f'{{gateway="{gateway}"}}'
    rx = snapshot.get(f"px_gateway_rx_packets_total{labels}", 0.0)
    tx = snapshot.get(f"px_gateway_tx_packets_total{labels}", 0.0)
    merged = snapshot.get(f"px_gateway_merged_packets_total{labels}", 0.0)
    dropped = snapshot.get(f"px_gateway_dropped_packets_total{labels}", 0.0)
    return {
        "merge_ratio": merged / rx if rx else None,
        "drop_count": dropped,
        "oversize_egress": float(oversize_egress),
        "egress_amplification": tx / rx if rx else None,
        "p95_residency": histogram_quantile(
            snapshot, "px_gateway_residency_seconds", 0.95),
    }


def evaluate_guardrails(
    guardrails,
    baseline: Dict[str, Optional[float]],
    candidate: Dict[str, Optional[float]],
) -> List[dict]:
    """Every guardrail breach of *candidate* against *baseline*.

    Returns one dict per breach (empty list = all bands held), each
    citing the indicator values and the allowed bound — the evidence
    the canary verdict records.
    """
    breaches = []
    for guardrail in guardrails:
        base = baseline.get(guardrail.indicator)
        cand = candidate.get(guardrail.indicator)
        if guardrail.breached(base, cand):
            breaches.append({
                "guardrail": guardrail.name,
                "indicator": guardrail.indicator,
                "direction": guardrail.direction,
                "baseline": base,
                "candidate": cand,
                "allowed": guardrail.allowed(base),
                "description": guardrail.description,
            })
    return breaches
