"""The production ops loop: twin-world canary deploys.

The paper's deployment story is *incremental* — PX gateways and larger
MTUs roll out gradually, and a rollout that hurts live traffic must be
caught and reversed before it spreads.  This package closes that loop
in simulation:

* :mod:`~repro.ops.twin` — run a baseline and a candidate
  :class:`Deployment` in two seeded worlds fed byte-identical offered
  load (and, optionally, identical chaos/attack environments);
* :mod:`~repro.ops.guardrails` — declarative tolerance bands over the
  twins' registry snapshots (merge ratio, drops, oversize egress,
  egress amplification, p95 residency);
* :mod:`~repro.ops.canary` — the staged rollout state machine
  ``BASELINE → CANARY(1% → 10% → 50%) → PROMOTED | ROLLED_BACK``,
  whose verdicts cite differential alert firings and guardrail
  breaches, and whose rollback is a live zero-loss failover takeover;
* :mod:`~repro.ops.incidents` — the incident-simulation corpus: five
  scripted rollout regressions that must roll back plus a benign
  candidate (under chaotic weather) that must promote.

Everything is sim-deterministic: one seed, one byte-identical JSON
report.  The ``repro canary`` CLI verb is the operator entry point.
"""

from .canary import (
    DEFAULT_STAGES,
    PROMOTED,
    ROLLED_BACK,
    CanaryController,
    RolloutStage,
    report_to_json,
    run_canary,
)
from .guardrails import (
    Guardrail,
    default_guardrails,
    evaluate_guardrails,
    histogram_quantile,
    snapshot_indicators,
)
from .incidents import (
    INCIDENTS,
    Incident,
    incident,
    incident_names,
    run_corpus,
    run_incident,
)
from .twin import (
    Deployment,
    OversizeTap,
    TwinRun,
    production_deployment,
    run_twin,
    run_twin_pair,
)

__all__ = [
    "CanaryController",
    "DEFAULT_STAGES",
    "Deployment",
    "Guardrail",
    "INCIDENTS",
    "Incident",
    "OversizeTap",
    "PROMOTED",
    "ROLLED_BACK",
    "RolloutStage",
    "TwinRun",
    "default_guardrails",
    "evaluate_guardrails",
    "histogram_quantile",
    "incident",
    "incident_names",
    "production_deployment",
    "report_to_json",
    "run_canary",
    "run_corpus",
    "run_incident",
    "run_twin",
    "run_twin_pair",
    "snapshot_indicators",
]
