"""Twin-world deployment harness.

A canary comparison is only meaningful when the two worlds differ in
exactly one thing: the deployment.  This module builds that pair — a
baseline and a candidate :class:`Deployment` each run in its own
seeded :func:`~repro.obs.world.run_observed_world`, fed the *same*
:class:`~repro.obs.world.WorkloadSchedule` and (optionally) the same
fault/attack *environment*.  Everything environmental — topology seed,
offered load, the scheduled failover takeover, injected chaos faults —
is identical across the pair, so any divergence in alerts or registry
snapshots is attributable to the candidate.

A :class:`Deployment` is a :class:`~repro.core.GatewayConfig` plus the
operational posture that travels with it (today: whether the PMTU
cache is hardened per :class:`~repro.pmtud.HardeningPolicy`).  Each
twin also carries an :class:`OversizeTap` on the gateway→outside link:
the external wire is where an MTU mis-deployment becomes visible, as
over-eMTU transmissions or silent ``drop-mtu`` losses.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core import GatewayConfig
from ..obs.world import (
    EXTERNAL_MTU,
    ObservedWorld,
    WorkloadSchedule,
    default_workload_schedule,
    run_observed_world,
)

__all__ = ["Deployment", "OversizeTap", "TwinRun", "production_deployment",
           "run_twin", "run_twin_pair"]


@dataclass(frozen=True)
class Deployment:
    """A gateway rollout unit: config + operational posture."""

    name: str
    config: GatewayConfig
    #: Attach a hardened PMTU cache (:class:`HardeningPolicy.hardened`)
    #: instead of the historical trusting one.  Disabling this on a
    #: candidate is itself a regression the canary must catch.
    hardened_pmtud: bool = True
    description: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "hardened_pmtud": self.hardened_pmtud,
            "description": self.description,
            "config": asdict(self.config),
        }


def production_deployment() -> Deployment:
    """The stock baseline: the observed world's config, hardened."""
    return Deployment(
        name="production",
        config=GatewayConfig(
            imtu=9000, emtu=1500,
            elephant_threshold_packets=2, header_only_dma=True,
        ),
        hardened_pmtud=True,
        description="The observed world's stock PX configuration with "
                    "the hardened PMTUD posture.",
    )


class OversizeTap:
    """Counts over-eMTU egress on the external link, stamped in sim time.

    Two symptoms of a mis-sized rollout show up here: packets larger
    than the physical eMTU that the link silently drops (``drop-mtu``)
    and — if the link model were permissive — oversize transmissions.
    Both are recorded as ``(time, kind, size)`` so staged evaluation
    can count events up to each observation horizon.
    """

    def __init__(self, limit: int = EXTERNAL_MTU):
        self.limit = limit
        self.events: List[Tuple[float, str, int]] = []

    def __call__(self, event: str, packet, now: float) -> None:
        if event == "drop-mtu":
            self.events.append((now, "drop-mtu", packet.total_len))
        elif event == "tx" and packet.total_len > self.limit:
            self.events.append((now, "oversize-tx", packet.total_len))

    def count(self, until: Optional[float] = None) -> int:
        """Events at or before *until* (all of them when ``None``)."""
        if until is None:
            return len(self.events)
        return sum(1 for at, _, _ in self.events if at <= until)


@dataclass
class TwinRun:
    """One finished twin: the world plus its egress evidence."""

    role: str
    deployment: Deployment
    world: ObservedWorld
    oversize: OversizeTap
    _final_snapshot: Optional[dict] = field(default=None, repr=False)

    def final_snapshot(self) -> dict:
        """The end-of-run registry snapshot (cached)."""
        if self._final_snapshot is None:
            self._final_snapshot = self.world.obs.registry.snapshot()
        return self._final_snapshot

    def snapshot_at(self, instant: float, horizon: float) -> dict:
        """The registry snapshot for observation horizon *instant*.

        Mid-run horizons use the snapshots captured in-sim; a horizon
        at or past the schedule's end uses the final snapshot.
        """
        if instant >= horizon:
            return self.final_snapshot()
        return self.world.snapshots[instant]


def run_twin(
    role: str,
    deployment: Deployment,
    seed: int = 0,
    schedule: Optional[WorkloadSchedule] = None,
    snapshot_at: Sequence[float] = (),
    environment: Optional[Callable[[ObservedWorld], None]] = None,
) -> TwinRun:
    """Run one deployment in its own seeded world.

    *environment* is applied to the constructed world before traffic
    (the :func:`run_observed_world` ``mutate`` hook) — fault plans,
    attack events, anything that should hit **both** twins alike.
    """
    if schedule is None:
        schedule = default_workload_schedule(seed)
    oversize = OversizeTap(EXTERNAL_MTU)

    def mutate(world: ObservedWorld) -> None:
        if deployment.hardened_pmtud:
            from ..pmtud import HardeningPolicy
            from ..resilience import PmtuCache

            world.gateway.attach_pmtu_cache(PmtuCache(
                default_ttl=world.gateway.config.pmtu_cache_ttl,
                policy=HardeningPolicy.hardened(),
            ))
        world.links["ext_out"].add_tap(oversize)
        if environment is not None:
            environment(world)

    world = run_observed_world(
        seed=seed,
        config=deployment.config,
        schedule=schedule,
        snapshot_at=snapshot_at,
        mutate=mutate,
    )
    return TwinRun(role=role, deployment=deployment,
                   world=world, oversize=oversize)


def run_twin_pair(
    baseline: Deployment,
    candidate: Deployment,
    seed: int = 0,
    schedule: Optional[WorkloadSchedule] = None,
    snapshot_at: Sequence[float] = (),
    environment: Optional[Callable[[ObservedWorld], None]] = None,
) -> Tuple[TwinRun, TwinRun]:
    """Run baseline and candidate under identical conditions."""
    if schedule is None:
        schedule = default_workload_schedule(seed)
    return (
        run_twin("baseline", baseline, seed, schedule, snapshot_at, environment),
        run_twin("candidate", candidate, seed, schedule, snapshot_at, environment),
    )
