"""The staged canary rollout state machine.

``BASELINE → CANARY(1% → 10% → 50%) → PROMOTED | ROLLED_BACK``

The twins run once to the schedule's full horizon; each
:class:`RolloutStage` then maps a traffic fraction to an **observation
horizon** — the sim instant by which that stage's verdict must be in.
Evaluation is retrospective and purely differential:

* **alerts** — rules that fired (or are firing) in the candidate twin
  by the stage horizon but not in the baseline twin.  Differencing
  cancels environmental noise: the scheduled failover takeover, or an
  injected chaos fault hitting both twins, fires identically on both
  sides and never blocks a promote.
* **guardrails** — :mod:`repro.ops.guardrails` tolerance bands over
  the per-horizon registry snapshots plus the egress oversize taps.

The first failing stage rolls the candidate back; the rollback is a
live zero-loss drill, not bookkeeping: the candidate world's
:class:`~repro.resilience.FailoverManager` performs a takeover (the
same flush-don't-drop path ``set_mode`` uses), and the report records
that no merged payload was stranded.  All of it is sim-deterministic:
the same seed yields a byte-identical JSON report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs.world import ObservedWorld, WorkloadSchedule, default_workload_schedule
from .guardrails import default_guardrails, evaluate_guardrails, snapshot_indicators
from .twin import Deployment, TwinRun, run_twin_pair

__all__ = ["RolloutStage", "DEFAULT_STAGES", "PROMOTED", "ROLLED_BACK",
           "CanaryController", "run_canary", "report_to_json"]

PROMOTED = "PROMOTED"
ROLLED_BACK = "ROLLED_BACK"


@dataclass(frozen=True)
class RolloutStage:
    """One rung of the rollout ladder.

    ``fraction`` is the share of production traffic the candidate
    would carry at this stage; ``observe_until`` is the sim horizon by
    which the stage must look healthy before the controller widens the
    blast radius.
    """

    name: str
    fraction: float
    observe_until: float

    def __post_init__(self):
        if not 0 < self.fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self.observe_until <= 0:
            raise ValueError("observe_until must be > 0")

    def to_dict(self) -> dict:
        return {"name": self.name, "fraction": self.fraction,
                "observe_until": self.observe_until}


DEFAULT_STAGES: Tuple[RolloutStage, ...] = (
    RolloutStage("canary-1", 0.01, 1.0),
    RolloutStage("canary-10", 0.10, 2.0),
    RolloutStage("canary-50", 0.50, 3.0),
)


class CanaryController:
    """Drives one candidate through the staged rollout."""

    def __init__(
        self,
        baseline: Deployment,
        candidate: Deployment,
        seed: int = 0,
        stages: Sequence[RolloutStage] = DEFAULT_STAGES,
        guardrails=None,
        schedule: Optional[WorkloadSchedule] = None,
        environment: Optional[Callable[[ObservedWorld], None]] = None,
    ):
        if not stages:
            raise ValueError("need at least one rollout stage")
        self.baseline = baseline
        self.candidate = candidate
        self.seed = seed
        self.stages = tuple(sorted(stages, key=lambda s: s.observe_until))
        self.guardrails = tuple(
            default_guardrails() if guardrails is None else guardrails)
        self.schedule = schedule or default_workload_schedule(seed)
        self.environment = environment
        #: Populated by :meth:`run`.
        self.baseline_run: Optional[TwinRun] = None
        self.candidate_run: Optional[TwinRun] = None

    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Run both twins, walk the stages, return the verdict report."""
        horizon = self.schedule.horizon
        snapshot_at = sorted({stage.observe_until for stage in self.stages
                              if stage.observe_until < horizon})
        self.baseline_run, self.candidate_run = run_twin_pair(
            self.baseline, self.candidate, seed=self.seed,
            schedule=self.schedule, snapshot_at=snapshot_at,
            environment=self.environment,
        )

        stage_trace: List[dict] = []
        rolled_back_at: Optional[str] = None
        for stage in self.stages:
            if rolled_back_at is not None:
                stage_trace.append({**stage.to_dict(), "status": "not-reached",
                                    "alerts": [], "alert_evidence": [],
                                    "guardrail_breaches": []})
                continue
            entry = self._evaluate_stage(stage)
            stage_trace.append(entry)
            if entry["status"] == "fail":
                rolled_back_at = stage.name

        verdict = ROLLED_BACK if rolled_back_at is not None else PROMOTED
        rollback = (self._zero_loss_rollback()
                    if verdict == ROLLED_BACK else None)
        bundle = (self._rollback_bundle(rolled_back_at, rollback)
                  if verdict == ROLLED_BACK else None)
        return {
            "schema": "repro-canary/1",
            "seed": self.seed,
            "baseline": self.baseline.to_dict(),
            "candidate": self.candidate.to_dict(),
            "workload": self.schedule.to_dict(),
            "guardrails": [g.to_dict() for g in self.guardrails],
            "stages": stage_trace,
            "verdict": verdict,
            "rolled_back_at": rolled_back_at,
            "rollback": rollback,
            "incident_bundle": bundle,
            "notes": {
                "baseline": self.baseline_run.world.notes,
                "candidate": self.candidate_run.world.notes,
            },
        }

    # ------------------------------------------------------------------
    def _evaluate_stage(self, stage: RolloutStage) -> dict:
        """One stage's differential verdict at its observation horizon."""
        at = stage.observe_until
        base, cand = self.baseline_run, self.candidate_run

        base_engine = base.world.alerts
        cand_engine = cand.world.alerts
        fired = sorted(set(cand_engine.fired_by(at))
                       - set(base_engine.fired_by(at)))
        firing = sorted(set(cand_engine.firing_at(at))
                        - set(base_engine.firing_at(at)))
        cited = sorted(set(fired) | set(firing))
        evidence = [entry for name in cited
                    for entry in cand_engine.history(rule=name)
                    if entry["time"] <= at]

        horizon = self.schedule.horizon
        breaches = evaluate_guardrails(
            self.guardrails,
            snapshot_indicators(base.snapshot_at(at, horizon),
                                oversize_egress=base.oversize.count(at)),
            snapshot_indicators(cand.snapshot_at(at, horizon),
                                oversize_egress=cand.oversize.count(at)),
        )
        status = "pass" if not cited and not breaches else "fail"
        return {**stage.to_dict(), "status": status, "alerts": cited,
                "alert_evidence": evidence, "guardrail_breaches": breaches}

    # ------------------------------------------------------------------
    def _zero_loss_rollback(self) -> dict:
        """Roll the candidate twin back through a live failover takeover.

        Whatever the candidate's merge engines still hold is flushed —
        never dropped — by the checkpoint/restore path, and the world
        runs briefly past the takeover so the flushed packets drain.
        """
        world = self.candidate_run.world
        worker = world.gateway.worker
        pending_bytes = worker.merge.pending_bytes()
        pending_datagrams = worker.caravan_merge.pending_packets()
        world.failover.takeover(reason="canary-rollback")
        sim = world.topo.sim
        world.topo.run(until=sim.now + 0.05)
        still_pending = world.gateway.worker.pending()
        return {
            "mechanism": "failover-takeover",
            "reason": "canary-rollback",
            "pending_bytes_before": pending_bytes,
            "pending_datagrams_before": pending_datagrams,
            "pending_after": bool(still_pending),
            "takeovers": world.failover.takeovers,
            "zero_loss": not still_pending,
        }

    # ------------------------------------------------------------------
    def _rollback_bundle(self, stage_name: Optional[str],
                         rollback: dict) -> dict:
        """Package the rollback as a deterministic incident bundle.

        Cites the candidate twin's flight-recorder window, both twins'
        alert engines (the differential evidence), the candidate's
        registry snapshot, the guardrails, the exact candidate config,
        and the adoption journeys of the flows the rollback takeover
        moved to the standby.
        """
        from ..obs.incident import build_incident_bundle

        world = self.candidate_run.world
        at = world.topo.sim.now
        checkpoint = world.failover.last_checkpoint
        flows = ([record[0] for record in checkpoint.flows][:8]
                 if checkpoint else [])
        return build_incident_bundle(
            "canary-rollback",
            at,
            window=at,
            detail={"stage": stage_name, "seed": self.seed,
                    "candidate": self.candidate.to_dict(),
                    "rollback": rollback},
            flights=[world.flight] if world.flight is not None else [],
            alerts={"baseline": self.baseline_run.world.alerts,
                    "candidate": world.alerts},
            registry=world.obs.registry,
            guardrails=self.guardrails,
            config=world.config,
            trace=world.trace,
            trackers={world.gateway.worker.index: world.obs.spans},
            flows=flows,
        )


def run_canary(
    baseline: Deployment,
    candidate: Deployment,
    seed: int = 0,
    **kwargs,
) -> dict:
    """One-call convenience: build a controller and run it."""
    return CanaryController(baseline, candidate, seed=seed, **kwargs).run()


def report_to_json(report: dict) -> str:
    """The canonical byte-deterministic rendering of a canary report."""
    return json.dumps(report, sort_keys=True, indent=2)
