"""The incident-simulation corpus: regressions the canary must catch.

Each :class:`Incident` pairs a candidate deployment (and optionally a
shared fault/attack *environment* built on the chaos DSL) with the
verdict the controller is **expected** to reach.  Five are real
rollout regressions that must be ROLLED_BACK with cited evidence; one
is a benign candidate — run under environmental chaos that hits both
twins — that must PROMOTE, so the corpus has teeth in both directions.

The incidents map one-to-one onto failure modes the earlier layers
modelled:

* ``mis-sized-mtu-rollout`` — the candidate believes a 3000 B eMTU;
  its splits exceed the physical 1500 B wire and the external link
  silently drops them (the classic MTU blackhole).
* ``pmtud-hardening-disabled`` — the candidate ships the trusting
  PMTU cache; an off-path forged report (PR 6's attack model) poisons
  its clamp to 400 B and egress micro-segments.  The hardened
  baseline rejects the same learn.
* ``caravan-flush-timer-regression`` — a 500× merge-timeout typo
  (500 µs → 250 ms): merges convert, but payload sits in the engines
  and p95 residency explodes.
* ``merge-disabled-config`` — a classifier threshold typo (no flow
  ever promotes to merge-eligible, delayed merging off) collapses the
  merge ratio the fleet is paying PX cycles to achieve.
* ``bypass-under-nic-pressure`` — a header-only-DMA candidate sized
  with a 256 B on-NIC store: every merge context falls back, and
  under a sustained inbound trickle (this incident ships its own
  workload schedule) the health monitor sees NIC pressure on every
  watchdog beat and degrades the datapath toward BYPASS.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple

from ..chaos.faults import Fault, FaultPlan, GatewayFault, Match, apply_gateway_faults
from ..obs.world import ObservedWorld, WorkloadSchedule, default_workload_schedule
from .canary import PROMOTED, ROLLED_BACK, CanaryController
from .twin import Deployment, production_deployment

__all__ = ["Incident", "INCIDENTS", "incident", "incident_names",
           "run_incident", "run_corpus"]


@dataclass(frozen=True)
class Incident:
    """One scripted rollout with a known correct verdict."""

    name: str
    description: str
    expected: str  # PROMOTED or ROLLED_BACK
    candidate: Deployment
    #: Applied to *both* twins (chaos weather, attack events); the
    #: controller must judge the deployment, not the environment.
    environment: Optional[Callable[[ObservedWorld], None]] = None
    #: Optional workload override (seed → schedule), fed identically
    #: to both twins; ``None`` uses the stock schedule.
    schedule: Optional[Callable[[int], WorkloadSchedule]] = None


# ----------------------------------------------------------------------
# Environments (module-level so incidents stay picklable/deterministic)
# ----------------------------------------------------------------------

def _benign_weather(world: ObservedWorld) -> None:
    """Environmental chaos both twins must shrug off identically.

    A download-segment reorder on the outside→gateway link plus a
    brief gateway stall: enough to perturb health and latency in both
    twins, so a naive (non-differential) judge would false-positive.
    """
    plan = FaultPlan(
        link_faults=[
            Fault(action="reorder", link="ext_in", nth=20, count=2,
                  match=Match(min_payload=1), delay=2e-3),
        ],
        gateway_faults=[
            GatewayFault(kind="stall", at=0.35, duration=2e-3),
        ],
    )
    for role, injector in plan.injectors().items():
        world.links[role].injector = injector
    apply_gateway_faults(plan, world.gateway)


def _forged_pmtu_report(world: ObservedWorld) -> None:
    """An off-path attacker's forged 400 B fragmentation report.

    Delivered unsolicited (``trust="report"``) against the egress
    destination's wildcard cache entry at t=0.15 — just before the
    bulk transfers start, so the clamp governs the whole upload.  The
    hardened cache rejects it (below the 576 B plausibility floor and
    unsolicited); the trusting cache swallows it and clamps every
    outbound split to 400 B.
    """
    gateway = world.gateway
    dst = world.outside.ip

    def poison() -> None:
        gateway.pmtu_cache.learn(
            dst, 400, gateway.sim.now,
            source="ptb", flow=None, trust="report",
        )

    world.topo.sim.schedule_at(0.15, poison)


def _nic_pressure_schedule(seed: int) -> WorkloadSchedule:
    """The stock workload plus a sustained inbound UDP trickle.

    One 500 B datagram every 10 ms from t=0.25 to t=0.64 — light load
    a healthy gateway absorbs invisibly, but *sustained*: a candidate
    whose on-NIC store cannot hold even one caravan context falls back
    on every beat of the health monitor's watchdog, which is what
    distinguishes chronic NIC pressure from a survivable burst.
    """
    base = default_workload_schedule(seed)
    trickle = tuple(bytes([3, i & 0xFF]) * 250 for i in range(40))
    offset = len(base.inbound_payloads)
    drips = tuple((round(0.25 + 0.01 * i, 9), offset + i, 1)
                  for i in range(len(trickle)))
    return replace(
        base,
        inbound_payloads=base.inbound_payloads + trickle,
        inbound_bursts=base.inbound_bursts + drips,
    )


# ----------------------------------------------------------------------
# The corpus
# ----------------------------------------------------------------------

def _corpus() -> Tuple[Incident, ...]:
    production = production_deployment()
    stock = production.config
    return (
        Incident(
            name="benign-candidate",
            description="A capacity bump (double the merge-context "
                        "table) under chaotic weather hitting both "
                        "twins; behaviourally identical, must promote.",
            expected=PROMOTED,
            candidate=replace(
                production, name="bigger-context-table",
                config=replace(stock, merge_contexts_per_worker=8192),
                description="Stock config with a doubled merge-context "
                            "table.",
            ),
            environment=_benign_weather,
        ),
        Incident(
            name="mis-sized-mtu-rollout",
            description="Candidate configured for a 3000 B eMTU on a "
                        "1500 B wire: its splits are silently dropped "
                        "at the external link (MTU blackhole).",
            expected=ROLLED_BACK,
            candidate=replace(
                production, name="emtu-3000",
                config=replace(stock, emtu=3000),
                description="Rolled out ahead of the (unupgraded) "
                            "external network.",
            ),
        ),
        Incident(
            name="pmtud-hardening-disabled",
            description="Candidate ships the trusting PMTU cache; a "
                        "forged off-path fragmentation report (sent at "
                        "both twins) poisons its clamp to 400 B and "
                        "egress micro-segments.",
            expected=ROLLED_BACK,
            candidate=replace(
                production, name="unhardened-pmtud",
                hardened_pmtud=False,
                description="Stock config with the PMTUD hardening "
                            "posture disabled.",
            ),
            environment=_forged_pmtu_report,
        ),
        Incident(
            name="caravan-flush-timer-regression",
            description="merge_timeout mis-set 500 µs → 250 ms: "
                        "payload dwells in the merge/caravan engines "
                        "and p95 gateway residency explodes.",
            expected=ROLLED_BACK,
            candidate=replace(
                production, name="slow-flush-timer",
                config=replace(stock, merge_timeout=0.25),
                description="A units typo in the flush-timer config.",
            ),
        ),
        Incident(
            name="merge-disabled-config",
            description="The elephant classifier threshold mis-set so "
                        "no flow ever promotes to merge-eligible (and "
                        "delayed merging off): the merge ratio "
                        "collapses while per-packet cycles keep being "
                        "charged.",
            expected=ROLLED_BACK,
            candidate=replace(
                production, name="merge-disabled",
                config=replace(stock, delayed_merge=False,
                               elephant_threshold_packets=1_000_000),
                description="A classifier threshold typo that disables "
                            "the merge path.",
            ),
        ),
        Incident(
            name="bypass-under-nic-pressure",
            description="Header-only DMA sized with a 256 B on-NIC "
                        "store: every merge context falls back, and "
                        "under a sustained inbound trickle the health "
                        "monitor sees NIC pressure on every beat and "
                        "degrades the datapath toward BYPASS.",
            expected=ROLLED_BACK,
            candidate=replace(
                production, name="tiny-nic-store",
                config=replace(stock, nic_memory_bytes=256),
                description="Header-only DMA with a mis-sized NIC "
                            "memory budget.",
            ),
            schedule=_nic_pressure_schedule,
        ),
    )


INCIDENTS: Tuple[Incident, ...] = _corpus()


def incident_names() -> Tuple[str, ...]:
    return tuple(item.name for item in INCIDENTS)


def incident(name: str) -> Incident:
    for item in INCIDENTS:
        if item.name == name:
            return item
    raise KeyError(f"unknown incident {name!r} (have {incident_names()})")


def run_incident(name: str, seed: int = 0) -> dict:
    """Run one incident; the report gains expectation bookkeeping."""
    item = incident(name)
    controller = CanaryController(
        baseline=production_deployment(),
        candidate=item.candidate,
        seed=seed,
        environment=item.environment,
        schedule=item.schedule(seed) if item.schedule is not None else None,
    )
    report = controller.run()
    report["incident"] = item.name
    report["incident_description"] = item.description
    report["expected"] = item.expected
    report["ok"] = report["verdict"] == item.expected
    return report


def run_corpus(seed: int = 0) -> dict:
    """Run every incident; ``ok`` only when every verdict matches."""
    reports = [run_incident(item.name, seed=seed) for item in INCIDENTS]
    return {
        "schema": "repro-canary-corpus/1",
        "seed": seed,
        "incidents": reports,
        "ok": all(report["ok"] for report in reports),
    }
