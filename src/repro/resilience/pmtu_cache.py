"""The PMTU cache: TTL'd entries, route-change flush, poison defenses.

Path MTU is a property of the *current* route, so a learned value has
two expiry conditions:

* **age** — RFC 1191 §6.3 recommends re-probing on the order of
  minutes; every entry carries an absolute ``expires_at``;
* **route change** — when the routing table under the gateway shifts,
  a cached PMTU may describe a path that no longer exists.  The cache
  can :meth:`watch` a :class:`repro.net.routing.RoutingTable` and
  flushes itself on any change, which is strictly conservative (a
  re-probe costs one RTT; a stale entry costs blackholed jumbos).

The split engine consults the cache per packet (satellite fix: a flow
whose MSS was re-clamped mid-stream must never be split to segments
larger than the *live* path MTU), so :meth:`lookup` is a dict probe.

Adversarial hardening (see :mod:`repro.pmtud.hardening`): entries are
keyed ``(dst, flow)`` where ``flow`` defaults to the ``None`` wildcard.
A :class:`~repro.pmtud.hardening.HardeningPolicy` with
``per_flow_cache`` stores flow-attributed learns under their own key,
so a poisoned entry for one flow behind a shared destination address
cannot shadow its neighbours' (the off-path cache-poisoning attack on
address-sharing deployments).  Every entry carries a ``trust``
provenance tag — ``probe`` (solicited measurement), ``icmp`` /
``report`` (unsolicited hints), ``static`` — and with
``reject_raises`` an unsolicited hint may lower a cached value
(fail-safe) but never raise one: raising is how an attacker converts
a safe clamp into a blackhole.  Rejections are counted in
``poison_rejected``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["PmtuEntry", "PmtuCache", "TRUST_RANK"]

#: Provenance ordering: a live higher-trust entry cannot be *raised*
#: by a lower-trust learn under ``reject_raises``.
TRUST_RANK = {"static": 0, "icmp": 1, "report": 1, "probe": 2}

#: Trust tags the endpoint did not solicit; raises from these are the
#: poison vector.
_UNSOLICITED = ("icmp", "report")

#: Default trust derived from the legacy ``source`` tag.
_SOURCE_TRUST = {
    "fpmtud": "probe",
    "plpmtud": "probe",
    "fallback": "static",
    "static": "static",
    "ptb": "icmp",
    "report": "report",
}

#: Below 576 B no value can be a real IPv4 path MTU (mirrors
#: :data:`repro.pmtud.hardening.MIN_PLAUSIBLE_PMTU` without importing
#: across the package boundary).
_MIN_PLAUSIBLE = 576


@dataclass
class PmtuEntry:
    """One cached path-MTU verdict."""

    pmtu: int
    learned_at: float
    expires_at: float
    #: How the value was obtained: "fpmtud", "plpmtud", "fallback",
    #: "ptb" (ICMP hint), or "static" (operator-installed).
    source: str = "static"
    #: Provenance class used by the poison guards: "probe", "icmp",
    #: "report", or "static".
    trust: str = "static"
    #: The flow 5-tuple this entry is scoped to, or None (wildcard).
    flow: Optional[tuple] = None

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class PmtuCache:
    """Flow-scoped PMTU store with TTL, invalidation, and trust guards."""

    def __init__(self, default_ttl: float = 30.0, policy=None):
        if default_ttl <= 0:
            raise ValueError("TTL must be positive")
        self.default_ttl = default_ttl
        #: Any object with ``per_flow_cache`` / ``reject_raises`` /
        #: ``pmtu_bounds`` attributes (duck-typed HardeningPolicy);
        #: ``None`` keeps the original trusting per-destination store.
        self.policy = policy
        self._entries: Dict[Tuple[int, Optional[tuple]], PmtuEntry] = {}
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.invalidations = 0
        #: Learns refused by the trust/bounds guards.
        self.poison_rejected = 0
        #: Live entries dropped because a fresh probe contradicted them.
        self.contradictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, dst: int) -> bool:
        return any(key[0] == dst for key in self._entries)

    # ------------------------------------------------------------------
    def _key(self, dst: int, flow: Optional[tuple]) -> Tuple[int, Optional[tuple]]:
        if flow is not None and self.policy is not None and self.policy.per_flow_cache:
            return (dst, tuple(flow))
        return (dst, None)

    def _shadowed(self, dst: int, flow: Optional[tuple],
                  now: float) -> Optional[PmtuEntry]:
        """The live entry a lookup for (dst, flow) would currently see."""
        for key in ((dst, tuple(flow)) if flow is not None else None, (dst, None)):
            if key is None:
                continue
            entry = self._entries.get(key)
            if entry is not None and not entry.expired(now):
                return entry
        return None

    def learn(
        self,
        dst: int,
        pmtu: int,
        now: float,
        ttl: Optional[float] = None,
        source: str = "static",
        flow: Optional[tuple] = None,
        trust: Optional[str] = None,
    ) -> Optional[PmtuEntry]:
        """Record *pmtu* toward *dst*, valid for *ttl* seconds.

        Returns the stored entry, or ``None`` when a hardening guard
        rejected the learn (counted in :attr:`poison_rejected`).
        """
        if pmtu < 68:  # the IPv4 absolute minimum
            raise ValueError(f"implausible PMTU {pmtu}")
        if trust is None:
            trust = _SOURCE_TRUST.get(source, "static")
        key = self._key(dst, flow)
        if self.policy is not None:
            if (self.policy.pmtu_bounds and trust in _UNSOLICITED
                    and pmtu < _MIN_PLAUSIBLE):
                self.poison_rejected += 1
                return None
            if self.policy.reject_raises and trust in _UNSOLICITED:
                shadowed = self._shadowed(dst, flow, now)
                if shadowed is not None and pmtu > shadowed.pmtu:
                    self.poison_rejected += 1
                    return None
        entry = PmtuEntry(
            pmtu=pmtu,
            learned_at=now,
            expires_at=now + (ttl if ttl is not None else self.default_ttl),
            source=source,
            trust=trust,
            flow=key[1],
        )
        self._entries[key] = entry
        return entry

    def lookup(self, dst: int, now: float,
               flow: Optional[tuple] = None) -> Optional[PmtuEntry]:
        """The live entry for *(dst, flow)*, or None (miss or expired).

        A flow-scoped entry wins over the destination wildcard; an
        expired flow entry falls back to a live wildcard.  Exactly one
        hit or miss is counted per call.
        """
        keys = []
        if flow is not None:
            keys.append((dst, tuple(flow)))
        keys.append((dst, None))
        for key in keys:
            entry = self._entries.get(key)
            if entry is None:
                continue
            if entry.expired(now):
                del self._entries[key]
                self.expirations += 1
                continue
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def invalidate(self, dst: Optional[int] = None,
                   flow: Optional[tuple] = None) -> int:
        """Drop one flow's entry, a destination's entries, or all.

        ``invalidate(dst)`` removes every entry for *dst* (wildcard and
        flow-scoped alike); ``invalidate(dst, flow)`` removes just that
        flow's.  Returns the number removed.
        """
        if dst is None:
            removed = len(self._entries)
            self._entries.clear()
        elif flow is not None:
            removed = 1 if self._entries.pop((dst, tuple(flow)), None) is not None else 0
        else:
            doomed = [key for key in self._entries if key[0] == dst]
            for key in doomed:
                del self._entries[key]
            removed = len(doomed)
        self.invalidations += removed
        return removed

    def reconcile(self, dst: int, measured_pmtu: int, now: float) -> int:
        """Drop live entries for *dst* that a fresh probe contradicts.

        A solicited measurement is stronger evidence than anything
        cached: entries disagreeing with it (poisoned or stale) must
        not be reused.  Returns the number invalidated.
        """
        doomed = [
            key for key, entry in self._entries.items()
            if key[0] == dst and not entry.expired(now)
            and entry.pmtu != measured_pmtu
        ]
        for key in doomed:
            del self._entries[key]
        self.contradictions += len(doomed)
        self.invalidations += len(doomed)
        return len(doomed)

    def peek(self, dst: int, now: float,
             flow: Optional[tuple] = None) -> Optional[PmtuEntry]:
        """A lookup that counts nothing and expires nothing."""
        return self._shadowed(dst, flow, now)

    def watch(self, table) -> None:
        """Flush the whole cache whenever *table* (a RoutingTable) changes."""
        table.on_change(lambda: self.invalidate())

    def summary(self) -> Dict[str, int]:
        """Counters for the resilience report."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "poison_rejected": self.poison_rejected,
            "contradictions": self.contradictions,
        }
