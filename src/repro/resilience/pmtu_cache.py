"""The per-destination PMTU cache: TTL'd entries, route-change flush.

Path MTU is a property of the *current* route, so a learned value has
two expiry conditions:

* **age** — RFC 1191 §6.3 recommends re-probing on the order of
  minutes; every entry carries an absolute ``expires_at``;
* **route change** — when the routing table under the gateway shifts,
  a cached PMTU may describe a path that no longer exists.  The cache
  can :meth:`watch` a :class:`repro.net.routing.RoutingTable` and
  flushes itself on any change, which is strictly conservative (a
  re-probe costs one RTT; a stale entry costs blackholed jumbos).

The split engine consults the cache per packet (satellite fix: a flow
whose MSS was re-clamped mid-stream must never be split to segments
larger than the *live* path MTU), so :meth:`lookup` is a dict probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["PmtuEntry", "PmtuCache"]


@dataclass
class PmtuEntry:
    """One cached path-MTU verdict."""

    pmtu: int
    learned_at: float
    expires_at: float
    #: How the value was obtained: "fpmtud", "plpmtud", "fallback",
    #: or "static" (operator-installed).
    source: str = "static"

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class PmtuCache:
    """Destination-keyed PMTU store with TTL and invalidation."""

    def __init__(self, default_ttl: float = 30.0):
        if default_ttl <= 0:
            raise ValueError("TTL must be positive")
        self.default_ttl = default_ttl
        self._entries: Dict[int, PmtuEntry] = {}
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, dst: int) -> bool:
        return dst in self._entries

    def learn(
        self,
        dst: int,
        pmtu: int,
        now: float,
        ttl: Optional[float] = None,
        source: str = "static",
    ) -> PmtuEntry:
        """Record *pmtu* toward *dst*, valid for *ttl* seconds."""
        if pmtu < 68:  # the IPv4 absolute minimum
            raise ValueError(f"implausible PMTU {pmtu}")
        entry = PmtuEntry(
            pmtu=pmtu,
            learned_at=now,
            expires_at=now + (ttl if ttl is not None else self.default_ttl),
            source=source,
        )
        self._entries[dst] = entry
        return entry

    def lookup(self, dst: int, now: float) -> Optional[PmtuEntry]:
        """The live entry for *dst*, or None (miss or expired)."""
        entry = self._entries.get(dst)
        if entry is None:
            self.misses += 1
            return None
        if entry.expired(now):
            del self._entries[dst]
            self.expirations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def invalidate(self, dst: Optional[int] = None) -> int:
        """Drop one destination's entry, or all of them; returns count."""
        if dst is not None:
            removed = 1 if self._entries.pop(dst, None) is not None else 0
        else:
            removed = len(self._entries)
            self._entries.clear()
        self.invalidations += removed
        return removed

    def watch(self, table) -> None:
        """Flush the whole cache whenever *table* (a RoutingTable) changes."""
        table.on_change(lambda: self.invalidate())

    def summary(self) -> Dict[str, int]:
        """Counters for the resilience report."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
        }
