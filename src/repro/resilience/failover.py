"""Flow-state checkpoint and worker failover for a PXGW.

Merging makes the gateway *stateful*: at any instant a worker holds
half-merged TCP bytes and un-shipped caravan records that exist nowhere
else.  If that worker dies, those bytes die with it — a correctness
failure, not just a performance one.  The failover protocol:

1. a :class:`FailoverManager` periodically captures a
   :class:`WorkerCheckpoint` — the flow table (:meth:`FlowTable.snapshot`),
   a stats snapshot, and *materialized copies* of every pending
   merge-context (the segments the engines would emit if flushed now);
2. on :meth:`~FailoverManager.takeover`, a standby
   :class:`~repro.core.worker.GatewayWorker` adopts the checkpoint:
   flow records are restored (classifier verdicts survive, so elephants
   stay on the merge path), the stats snapshot is folded in, and the
   checkpointed pending segments are re-emitted through the gateway —
   half-merged data is *flushed, never dropped*;
3. the conservation identities hold on the standby by construction:
   the snapshot carries ``payload_in`` including the pending bytes, and
   re-emitting the pending segments supplies the matching
   ``payload_out``, leaving the standby balanced at zero buffered.

Checkpointing is non-destructive — the running worker's contexts are
copied, not drained — so a checkpoint never perturbs the datapath it
protects.  The cost of that choice is bounded staleness: traffic
processed after the last checkpoint is not replayed (PX is a
middlebox; end-to-end TCP retransmission covers the gap, exactly as it
covers any single packet loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.stats import GatewayStats
from ..core.worker import GatewayWorker
from ..packet import Packet

__all__ = ["WorkerCheckpoint", "FailoverManager", "checkpoint_worker", "restore_worker"]


@dataclass
class WorkerCheckpoint:
    """Everything a standby needs to adopt a worker's duties."""

    taken_at: float
    #: Serialized flow records (see FlowTable.snapshot()).
    flows: List[tuple]
    #: Counter snapshot at checkpoint time.
    stats: GatewayStats
    #: Materialized copies of the pending merge/caravan contexts.
    pending: List[Packet] = field(default_factory=list)
    worker_index: int = 0

    @property
    def pending_tcp_bytes(self) -> int:
        return sum(len(p.payload) for p in self.pending if p.is_tcp)

    @property
    def pending_datagrams(self) -> int:
        from ..core.caravan import caravan_inner_count

        return sum(caravan_inner_count(p) for p in self.pending if p.is_udp)


def checkpoint_worker(worker: GatewayWorker, now: float) -> WorkerCheckpoint:
    """Capture *worker*'s adoptable state without perturbing it."""
    stats = GatewayStats()
    stats.merge(worker.stats)
    pending = worker.merge.export_pending() + worker.caravan_merge.export_pending()
    return WorkerCheckpoint(
        taken_at=now,
        flows=worker.flows.snapshot(),
        stats=stats,
        pending=pending,
        worker_index=worker.index,
    )


def restore_worker(worker: GatewayWorker, checkpoint: WorkerCheckpoint) -> List[Packet]:
    """Load *checkpoint* into (standby) *worker*.

    Returns the checkpointed pending segments; the caller must forward
    them (they are the flushed half-merged data).  After this call the
    worker's conservation identities balance with empty engines.
    """
    from ..core.caravan import caravan_inner_count, is_caravan

    worker.flows.restore(checkpoint.flows)
    worker.stats.merge(checkpoint.stats)
    for packet in checkpoint.pending:
        worker.stats.tx_packets += 1
        if packet.is_tcp:
            worker.stats.tcp_payload_out += len(packet.payload)
        elif packet.is_udp:
            worker.stats.udp_datagrams_out += caravan_inner_count(packet)
            if is_caravan(packet):
                worker.stats.caravans_built += 1
    return list(checkpoint.pending)


class FailoverManager:
    """Periodic checkpoints plus standby takeover for one gateway."""

    def __init__(self, gateway, interval: float = 0.1):
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.gateway = gateway
        self.sim = gateway.sim
        self.interval = interval
        self.last_checkpoint: Optional[WorkerCheckpoint] = None
        self.checkpoints_taken = 0
        self.takeovers = 0
        self._timer = None
        #: Optional :class:`~repro.obs.propagation.TracePropagation`:
        #: when attached, every takeover stamps an adoption hop on each
        #: checkpointed flow (pure bookkeeping, nothing on the datapath).
        self.propagation = None

    # ------------------------------------------------------------------
    def start(self) -> "FailoverManager":
        """Begin periodic checkpointing (first capture immediately)."""
        if self._timer is None:
            self.checkpoint_now()
            self._timer = self.sim.schedule(self.interval, self._tick)
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        self.checkpoint_now()
        self._timer = self.sim.schedule(self.interval, self._tick)

    def checkpoint_now(self) -> WorkerCheckpoint:
        """Capture the live worker right now."""
        self.last_checkpoint = checkpoint_worker(self.gateway.worker, self.sim.now)
        self.checkpoints_taken += 1
        return self.last_checkpoint

    # ------------------------------------------------------------------
    def takeover(
        self,
        standby: Optional[GatewayWorker] = None,
        fresh_checkpoint: bool = True,
        reason: str = "failover",
    ) -> GatewayWorker:
        """Swap in *standby* (or a fresh worker) from the checkpoint.

        With ``fresh_checkpoint`` (the planned-maintenance case) the
        live worker is checkpointed at this instant, so nothing at all
        is lost.  Without it (the crash case) the standby resumes from
        the last periodic capture and end-to-end retransmission covers
        the staleness window.  *reason* is recorded on the trace event
        so planned swaps (canary rollbacks, maintenance) are
        distinguishable from crash recovery.  Returns the replaced
        worker.
        """
        gateway = self.gateway
        checkpoint = self.checkpoint_now() if fresh_checkpoint else self.last_checkpoint
        if checkpoint is None:
            raise RuntimeError("no checkpoint available; call start() first")
        if standby is None:
            old = gateway.worker
            standby = GatewayWorker(
                gateway.config, costs=old.costs, index=old.index + 1
            )
        flushed = restore_worker(standby, checkpoint)
        old = gateway.swap_worker(standby)
        for packet in flushed:
            gateway.forward(packet)
        self.takeovers += 1
        if self.propagation is not None:
            for record in checkpoint.flows:
                self.propagation.adopt(
                    record[0], standby.index, self.sim.now, reason=reason
                )
        if gateway.obs is not None:
            gateway.obs.trace(
                self.sim.now, "failover-takeover",
                gateway=gateway.name, to_worker=standby.index,
                flushed=len(flushed), reason=reason,
                checkpoint_age=self.sim.now - checkpoint.taken_at,
            )
        return old

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Counters for the resilience report."""
        last = self.last_checkpoint
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "takeovers": self.takeovers,
            "interval": self.interval,
            "last_checkpoint": None
            if last is None
            else {
                "taken_at": last.taken_at,
                "flows": len(last.flows),
                "pending_packets": len(last.pending),
                "pending_tcp_bytes": last.pending_tcp_bytes,
                "pending_datagrams": last.pending_datagrams,
            },
        }
