"""The gateway health state machine: HEALTHY → DEGRADED → BYPASS.

The paper's incremental-deployment story only works if a PXGW can
*never* take the b-network offline: a gateway that misbehaves must shed
its optional work (merging) before it sheds correctness (forwarding).
The :class:`HealthMonitor` runs a heartbeat on the simulator clock and
evaluates three signal families each beat:

* **watchdog** — the datapath was stalled at any point since the last
  beat (a worker core descheduled, a control-plane operation blocking
  the poll loop);
* **conservation** — the :class:`repro.core.GatewayStats` identities
  are violated (payload bytes or datagrams unaccounted for): the
  gateway is corrupting traffic and must stop touching it;
* **pressure** — merge-context occupancy or on-NIC memory fallbacks
  indicate the stateful machinery is thrashing.

Escalation is streak-based: ``degrade_after`` consecutive bad beats
leave HEALTHY, ``bypass_after`` consecutive bad beats escalate
DEGRADED to BYPASS; ``recover_after`` consecutive clean beats step back
*one* level at a time (BYPASS → DEGRADED → HEALTHY), so a flapping
gateway re-earns trust gradually.

What each state means for the datapath (see
:class:`repro.core.worker.WorkerMode`):

* **HEALTHY** — full pipeline: merge, caravan build, MSS raise.
* **DEGRADED** — stateful merging disabled; traffic passes through at
  the eMTU it arrived with.  Correctness is fully preserved (splitting
  and caravan opening are stateless and stay on); only the iMTU
  *benefit* is lost.
* **BYPASS** — everything hairpins: no flow state, no classifier, no
  MSS rewriting beyond the mandatory outbound cap.  The minimal
  stateless translation (split / caravan open) is retained because
  links silently drop over-MTU packets — shedding it would turn a sick
  gateway into a blackhole, the exact failure this layer exists to
  prevent.

Every transition is recorded as ``(time, from, to, reason)`` for the
``repro resilience-report`` CLI and the chaos recovery oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["HealthState", "HealthPolicy", "HealthMonitor"]


class HealthState:
    """The three gateway health levels, ordered by degradation."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    BYPASS = "bypass"

    #: Escalation order (index = severity).
    ORDER = (HEALTHY, DEGRADED, BYPASS)


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds driving the health state machine."""

    #: Seconds between watchdog beats.
    heartbeat_interval: float = 0.02
    #: Consecutive bad beats before HEALTHY degrades.
    degrade_after: int = 1
    #: Consecutive bad beats before DEGRADED escalates to BYPASS.
    bypass_after: int = 3
    #: Consecutive clean beats to step down one level.
    recover_after: int = 2
    #: Merge-context occupancy fraction considered pressure.
    context_pressure: float = 0.9
    #: Header-only-DMA fallbacks per beat considered NIC pressure.
    nic_pressure_fallbacks: int = 1

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if min(self.degrade_after, self.bypass_after, self.recover_after) < 1:
            raise ValueError("streak thresholds are 1-based")
        if not 0.0 < self.context_pressure <= 1.0:
            raise ValueError("context_pressure is an occupancy fraction")


class HealthMonitor:
    """Watchdog-driven health tracking for one :class:`PXGateway`."""

    def __init__(self, gateway, policy: Optional[HealthPolicy] = None):
        self.gateway = gateway
        self.sim = gateway.sim
        self.policy = policy or HealthPolicy()
        self.state = HealthState.HEALTHY
        #: (time, from_state, to_state, reason) history.
        self.transitions: List[Tuple[float, str, str, str]] = []
        self.beats = 0
        self.bad_beats = 0
        #: reason -> count of beats where the signal fired.
        self.signal_counts: Dict[str, int] = {}
        self._bad_streak = 0
        self._clean_streak = 0
        self._last_beat_at = self.sim.now
        self._last_hdo_fallbacks = 0
        self._timer = None
        # Span id of the current away-from-HEALTHY excursion, so its
        # dwell time is measurable (see repro.obs.spans); None while
        # healthy or when no span tracker is attached.
        self._excursion_sid = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "HealthMonitor":
        """Begin heartbeats (the first fires one interval from now)."""
        if self._timer is None:
            self._last_beat_at = self.sim.now
            self._last_hdo_fallbacks = self.gateway.worker.stats.hdo_fallbacks
            self._timer = self.sim.schedule(self.policy.heartbeat_interval, self._beat)
        return self

    def stop(self) -> None:
        """Stop heartbeats; the current state is frozen."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _signals(self) -> List[str]:
        """Which bad-health signals fired since the last beat."""
        gateway = self.gateway
        worker = gateway.worker
        policy = self.policy
        reasons: List[str] = []

        # Watchdog: any stall window overlapping (last_beat, now].
        if gateway._stall_until > self._last_beat_at:
            reasons.append("stall")

        # Conservation identities: a nonzero imbalance means the
        # datapath is corrupting traffic right now.
        errors = worker.stats.conservation_errors(
            pending_tcp_bytes=worker.merge.pending_bytes(),
            pending_datagrams=worker.caravan_merge.pending_packets(),
        )
        if errors:
            reasons.append("conservation")

        # Merge-context pressure (eviction storms show up here).
        for engine in (worker.merge, worker.caravan_merge):
            if engine.max_contexts > 0 and (
                len(engine) / engine.max_contexts >= policy.context_pressure
            ):
                reasons.append("context-pressure")
                break

        # On-NIC memory pressure: header-only DMA falling back to DRAM.
        fallbacks = worker.stats.hdo_fallbacks
        if fallbacks - self._last_hdo_fallbacks >= policy.nic_pressure_fallbacks:
            reasons.append("nic-pressure")
        self._last_hdo_fallbacks = fallbacks

        return reasons

    # ------------------------------------------------------------------
    # The beat
    # ------------------------------------------------------------------
    def _beat(self) -> None:
        policy = self.policy
        self.beats += 1
        reasons = self._signals()
        self._last_beat_at = self.sim.now

        if reasons:
            self.bad_beats += 1
            for reason in reasons:
                self.signal_counts[reason] = self.signal_counts.get(reason, 0) + 1
            self._clean_streak = 0
            self._bad_streak += 1
            if (
                self.state == HealthState.HEALTHY
                and self._bad_streak >= policy.degrade_after
            ):
                self._transition(HealthState.DEGRADED, "+".join(reasons))
            elif (
                self.state == HealthState.DEGRADED
                and self._bad_streak >= policy.bypass_after
            ):
                self._transition(HealthState.BYPASS, "+".join(reasons))
        else:
            self._bad_streak = 0
            self._clean_streak += 1
            if (
                self.state != HealthState.HEALTHY
                and self._clean_streak >= policy.recover_after
            ):
                index = HealthState.ORDER.index(self.state)
                self._transition(HealthState.ORDER[index - 1], "recovered")
                self._clean_streak = 0

        self._timer = self.sim.schedule(policy.heartbeat_interval, self._beat)

    def _transition(self, to_state: str, reason: str) -> None:
        from_state = self.state
        self.state = to_state
        self.transitions.append((self.sim.now, from_state, to_state, reason))
        spans = self.gateway.obs.spans if self.gateway.obs is not None else None
        if spans is not None:
            # One span covers the whole away-from-HEALTHY excursion
            # (DEGRADED→BYPASS deepens it; only recovery closes it).
            if from_state == HealthState.HEALTHY:
                self._excursion_sid = spans.open(
                    self.sim.now, kind="health-excursion"
                )
            elif to_state == HealthState.HEALTHY and self._excursion_sid is not None:
                spans.close(self._excursion_sid, self.sim.now, outcome="recovered")
                self._excursion_sid = None
        if self.gateway.obs is not None:
            self.gateway.obs.trace(
                self.sim.now, "health-transition",
                gateway=self.gateway.name,
                from_state=from_state, to_state=to_state, reason=reason,
            )
        # Pending merge state is flushed (never dropped) on every mode
        # change away from NORMAL, so degradation loses no bytes.
        for packet in self.gateway.worker.set_mode(_MODE_FOR[to_state], self.sim.now):
            self.gateway.forward(packet)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def excursions(self) -> List[Tuple[float, Optional[float]]]:
        """Maximal [left-HEALTHY, back-to-HEALTHY] windows.

        The second element is None for an excursion still open at the
        end of the record.
        """
        out: List[Tuple[float, Optional[float]]] = []
        left_at: Optional[float] = None
        for time, from_state, to_state, _reason in self.transitions:
            if from_state == HealthState.HEALTHY and left_at is None:
                left_at = time
            if to_state == HealthState.HEALTHY and left_at is not None:
                out.append((left_at, time))
                left_at = None
        if left_at is not None:
            out.append((left_at, None))
        return out

    def summary(self) -> Dict[str, object]:
        """A JSON-friendly digest for the resilience report."""
        return {
            "state": self.state,
            "beats": self.beats,
            "bad_beats": self.bad_beats,
            "signals": dict(sorted(self.signal_counts.items())),
            "transitions": [list(entry) for entry in self.transitions],
            "excursions": [list(window) for window in self.excursions()],
        }


# Maps health states onto worker datapath modes (import-cycle-free:
# the worker defines the mode strings, we mirror them here).
_MODE_FOR = {
    HealthState.HEALTHY: "normal",
    HealthState.DEGRADED: "degraded",
    HealthState.BYPASS: "bypass",
}
