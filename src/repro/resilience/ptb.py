"""Feeding ICMP fragmentation-needed hints into the PMTU clamp cache.

The PXGW splits outbound jumbos on behalf of its b-network hosts, so
when a host behind it receives an ICMP PTB ("fragmentation needed and
DF set") for one of its flows, the actionable consumer is the
*gateway's* clamp cache: the next outbound split toward that
destination must honour the narrower hop.  :class:`PtbListener` is
that bridge — it subscribes to a host's ICMP deliveries and writes
accepted hints into a :class:`~repro.resilience.pmtu_cache.PmtuCache`
with ``trust="icmp"`` provenance and the quoted inner 4-tuple as the
flow key.

Unauthenticated ICMP is the classic PMTUD attack surface, so every
hint runs the :class:`~repro.pmtud.hardening.HardeningPolicy` gauntlet
before it touches the cache:

* ``validate_inner`` — the quoted packet must name the listening
  host as its source (an off-path forger must guess the full tuple);
* ``pmtu_bounds`` — the hint must sit in ``[576, link_mtu]``;
* ``rate_limit_reports`` — acceptance is token-bucketed, bounding
  cache churn under a PTB flood;
* ``reject_raises`` / ``per_flow_cache`` — enforced by the cache
  itself at :meth:`~repro.resilience.pmtu_cache.PmtuCache.learn`.

Every rejection is counted by reason; the observability layer exports
the counters so an absorbed attack still shows up on the timeline.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from ..packet import ICMPMessage, IPv4Header, Packet
from ..pmtud.hardening import MIN_PLAUSIBLE_PMTU, HardeningPolicy, ReportRateLimiter
from .pmtu_cache import PmtuCache

__all__ = ["PtbListener"]


class PtbListener:
    """Consumes PTB messages delivered to *host* into *cache*."""

    def __init__(
        self,
        host,
        cache: PmtuCache,
        policy: Optional[HardeningPolicy] = None,
        link_mtu: Optional[int] = None,
        ttl: Optional[float] = None,
    ):
        self.host = host
        self.cache = cache
        self.policy = policy if policy is not None else HardeningPolicy.unhardened()
        self.link_mtu = link_mtu
        self.ttl = ttl
        self._limiter = (ReportRateLimiter(self.policy.report_rate,
                                           self.policy.report_burst)
                         if self.policy.rate_limit_reports else None)
        self.ptb_received = 0
        self.ptb_accepted = 0
        self.ptb_rejected = 0
        self.rejections: Dict[str, int] = {}
        host.on_icmp(self._on_icmp)

    # ------------------------------------------------------------------
    def _reject(self, reason: str) -> None:
        self.ptb_rejected += 1
        self.rejections[reason] = self.rejections.get(reason, 0) + 1

    def _on_icmp(self, packet: Packet, message: ICMPMessage) -> None:
        if not message.is_frag_needed:
            return
        try:
            inner = IPv4Header.unpack(message.payload, verify=False)
        except ValueError:
            return
        self.ptb_received += 1
        flow = None
        if len(message.payload) >= 24:
            sport, dport = struct.unpack_from("!HH", message.payload, 20)
            flow = (inner.protocol, inner.src, sport, inner.dst, dport)
        if self.policy.validate_inner and inner.src != self.host.ip:
            self._reject("inner-src")
            return
        if self._limiter is not None and not self._limiter.allow(self.host.sim.now):
            self._reject("rate-limited")
            return
        hinted = message.next_hop_mtu
        if not hinted or hinted < 68:
            self._reject("no-hint")
            return
        if self.policy.pmtu_bounds:
            ceiling = self.link_mtu
            if hinted < MIN_PLAUSIBLE_PMTU or (
                ceiling is not None and hinted > ceiling
            ):
                self._reject("bounds")
                return
        stored = self.cache.learn(
            inner.dst, hinted, self.host.sim.now, ttl=self.ttl,
            source="ptb", flow=flow, trust="icmp",
        )
        if stored is None:
            # The cache's trust guard refused it (a raise over a live
            # probe-learned entry).
            self._reject("raise")
            return
        self.ptb_accepted += 1

    def summary(self) -> Dict[str, object]:
        """Counters for the resilience report."""
        return {
            "received": self.ptb_received,
            "accepted": self.ptb_accepted,
            "rejected": self.ptb_rejected,
            "rejections": dict(sorted(self.rejections.items())),
        }
