"""Retry policies: jittered exponential backoff and probe budgets.

Every retry loop in the resilience layer (F-PMTUD re-probes, caravan
capability queries, failed failover checkpoints) shares these two
primitives:

* :class:`BackoffPolicy` — the classic exponential backoff with full
  deterministic jitter: attempt *n* waits
  ``initial * multiplier**(n-1)`` seconds, capped at ``max_delay``,
  scaled by a seeded ±``jitter`` fraction.  Jitter decorrelates
  concurrent retriers (a thundering herd of probers would otherwise
  re-collide forever), while the explicit rng keeps whole experiments
  replayable.
* :class:`RetryBudget` — a hard cap on attempts across one logical
  operation.  Backoff bounds the *rate* of retries; the budget bounds
  their *total*, which is what keeps a permanent blackhole from
  consuming probe capacity forever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["BackoffPolicy", "RetryBudget"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Jittered exponential backoff between retry attempts."""

    #: Delay before the second attempt (the first fires immediately).
    initial: float = 0.2
    multiplier: float = 2.0
    max_delay: float = 5.0
    #: Fractional jitter: the delay is scaled by ``1 ± jitter``.
    jitter: float = 0.1
    #: Total attempts allowed (first try included).
    max_attempts: int = 4

    def __post_init__(self):
        if self.initial <= 0 or self.multiplier < 1.0 or self.max_delay <= 0:
            raise ValueError("backoff delays must be positive and non-shrinking")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_attempts < 1:
            raise ValueError("at least one attempt is required")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Seconds to wait after failed attempt *attempt* (1-based).

        Deterministic given *rng*; without one, the un-jittered delay
        is returned.
        """
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        base = min(self.initial * self.multiplier ** (attempt - 1), self.max_delay)
        if rng is None or self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def exhausted(self, attempt: int) -> bool:
        """True once *attempt* tries have been consumed."""
        return attempt >= self.max_attempts


class RetryBudget:
    """A consumable allowance of attempts for one logical operation."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("budget must allow at least one attempt")
        self.limit = limit
        self.spent = 0

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.spent)

    def take(self, n: int = 1) -> bool:
        """Consume *n* attempts; False (and no charge) if unaffordable."""
        if self.spent + n > self.limit:
            return False
        self.spent += n
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RetryBudget {self.spent}/{self.limit}>"
