"""Degrade-don't-die machinery for the PX datapath (guide: `docs/RESILIENCE.md`).

Four cooperating pieces:

* :mod:`~repro.resilience.health` — the per-gateway HEALTHY → DEGRADED
  → BYPASS state machine driven by watchdog heartbeats;
* :mod:`~repro.resilience.discovery` — the PMTU fallback chain
  (F-PMTUD → PLPMTUD → conservative 1500 B) with retry/backoff and a
  TTL'd :mod:`~repro.resilience.pmtu_cache`;
* :mod:`~repro.resilience.negotiation` — per-peer caravan capability
  negotiation with a negative cache;
* :mod:`~repro.resilience.failover` — flow-state checkpoints a standby
  worker adopts mid-run.
"""

from .discovery import CONSERVATIVE_PMTU, DiscoveryOutcome, ResilientPmtud
from .failover import (
    FailoverManager,
    WorkerCheckpoint,
    checkpoint_worker,
    restore_worker,
)
from .health import HealthMonitor, HealthPolicy, HealthState
from .negotiation import CARAVAN_CAP_PORT, CaravanNegotiator
from .pmtu_cache import TRUST_RANK, PmtuCache, PmtuEntry
from .ptb import PtbListener
from .retry import BackoffPolicy, RetryBudget

__all__ = [
    "BackoffPolicy",
    "RetryBudget",
    "PmtuCache",
    "PmtuEntry",
    "PtbListener",
    "TRUST_RANK",
    "HealthState",
    "HealthPolicy",
    "HealthMonitor",
    "CaravanNegotiator",
    "CARAVAN_CAP_PORT",
    "ResilientPmtud",
    "DiscoveryOutcome",
    "CONSERVATIVE_PMTU",
    "FailoverManager",
    "WorkerCheckpoint",
    "checkpoint_worker",
    "restore_worker",
]
