"""The PMTU discovery fallback chain: F-PMTUD → PLPMTUD → 1500 B.

F-PMTUD (§4.2) is the fast path — one RTT, no ICMP — but it depends on
the probe's *fragments* reaching the remote daemon and the daemon's
report reaching us.  A middlebox that drops fragments (common; see
PAPERS.md on PMTUD blackholes) or a silent daemon kills it.  Classical
PMTUD is no fallback at all: it is the ICMP-dependent mechanism the
paper is escaping.  So the chain is:

1. **F-PMTUD**, retried under a jittered :class:`BackoffPolicy` and a
   hard :class:`RetryBudget` — a permanent blackhole must not consume
   probe capacity forever;
2. **PLPMTUD** (RFC 4821) — slow (multi-RTT binary search) but immune
   to both ICMP and fragment blackholes because its probes are small
   DF packets acknowledged end-to-end;
3. **conservative 1500 B** — if even PLPMTUD produced nothing better
   than its all-timeouts floor, assume the classic Ethernet MTU (or
   the local MTU, if smaller).  Traffic keeps flowing; it is merely
   not jumbo.

Every outcome is written into a :class:`repro.resilience.PmtuCache`
with a source tag so the resilience report can show *how* each path's
MTU was learned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..pmtud.fpmtud import FPmtudProber, FPmtudResult
from ..pmtud.plpmtud import MIN_PMTU, Plpmtud, PlpmtudResult
from .pmtu_cache import PmtuCache
from .retry import BackoffPolicy, RetryBudget

__all__ = ["DiscoveryOutcome", "ResilientPmtud", "CONSERVATIVE_PMTU"]

#: The never-wrong-on-the-real-Internet fallback (classic Ethernet).
CONSERVATIVE_PMTU = 1500


@dataclass
class DiscoveryOutcome:
    """How one destination's PMTU was finally obtained."""

    dst: int
    pmtu: int
    #: "fpmtud", "plpmtud", or "fallback".
    source: str
    elapsed: float
    fpmtud_attempts: int = 0
    fpmtud_timeouts: int = 0
    plpmtud_result: Optional[PlpmtudResult] = None
    #: (sim-time, event) breadcrumbs for the resilience report.
    trail: List[str] = field(default_factory=list)


class ResilientPmtud:
    """F-PMTUD with retry/backoff and an automatic fallback chain."""

    def __init__(
        self,
        host,
        cache: Optional[PmtuCache] = None,
        backoff: Optional[BackoffPolicy] = None,
        probe_budget: int = 6,
        fpmtud_timeout: float = 0.5,
        cache_ttl: Optional[float] = None,
        seed: int = 0,
        prober: Optional[FPmtudProber] = None,
        plpmtud: Optional[Plpmtud] = None,
    ):
        self.host = host
        self.sim = host.sim
        self.cache = cache if cache is not None else PmtuCache()
        self.backoff = backoff or BackoffPolicy(
            initial=0.2, multiplier=2.0, max_delay=2.0, jitter=0.1, max_attempts=3
        )
        self.probe_budget = probe_budget
        self.fpmtud_timeout = fpmtud_timeout
        self.cache_ttl = cache_ttl
        self.rng = random.Random(seed)
        self.prober = prober or FPmtudProber(host)
        self.plpmtud = plpmtud or Plpmtud(host)
        #: dst -> in-flight discovery state.
        self._active: Dict[int, dict] = {}
        self.discoveries = 0
        self.fpmtud_successes = 0
        self.plpmtud_fallbacks = 0
        self.conservative_fallbacks = 0
        self.cache_short_circuits = 0

    # ------------------------------------------------------------------
    def discover(
        self,
        dst: int,
        local_mtu: int,
        on_done: Callable[[DiscoveryOutcome], None],
        force: bool = False,
    ) -> None:
        """Resolve the PMTU toward *dst*, preferring the cache.

        *on_done* fires exactly once — synchronously on a cache hit,
        otherwise when the chain converges.  The chain cannot hang: the
        budget bounds F-PMTUD, PLPMTUD's all-timeouts floor bounds the
        search, and the conservative default catches everything else.
        """
        if not force:
            entry = self.cache.lookup(dst, self.sim.now)
            if entry is not None:
                self.cache_short_circuits += 1
                on_done(
                    DiscoveryOutcome(
                        dst=dst,
                        pmtu=entry.pmtu,
                        source=entry.source,
                        elapsed=0.0,
                        trail=["cache-hit"],
                    )
                )
                return
        if dst in self._active:
            self._active[dst]["waiters"].append(on_done)
            return
        self.discoveries += 1
        self._active[dst] = {
            "local_mtu": local_mtu,
            "waiters": [on_done],
            "started_at": self.sim.now,
            "budget": RetryBudget(self.probe_budget),
            "attempt": 0,
            "timeouts": 0,
            "trail": [],
        }
        self._try_fpmtud(dst)

    # ------------------------------------------------------------------
    # Stage 1: F-PMTUD under backoff + budget
    # ------------------------------------------------------------------
    def _try_fpmtud(self, dst: int) -> None:
        state = self._active[dst]
        if not state["budget"].take():
            state["trail"].append("fpmtud-budget-exhausted")
            self._try_plpmtud(dst)
            return
        state["attempt"] += 1
        state["trail"].append(f"fpmtud-probe-{state['attempt']}")
        self.prober.probe(
            dst,
            probe_size=state["local_mtu"],
            on_result=lambda result, dst=dst: self._on_fpmtud_result(dst, result),
            timeout=self.fpmtud_timeout,
            on_timeout=lambda dst=dst: self._on_fpmtud_timeout(dst),
        )

    def _on_fpmtud_result(self, dst: int, result: FPmtudResult) -> None:
        state = self._active.get(dst)
        if state is None:
            return
        self.fpmtud_successes += 1
        state["trail"].append(f"fpmtud-ok-{result.pmtu}")
        self._finish(dst, result.pmtu, "fpmtud")

    def _on_fpmtud_timeout(self, dst: int) -> None:
        state = self._active.get(dst)
        if state is None:
            return
        state["timeouts"] += 1
        state["trail"].append("fpmtud-timeout")
        if self.backoff.exhausted(state["attempt"]):
            state["trail"].append("fpmtud-attempts-exhausted")
            self._try_plpmtud(dst)
            return
        delay = self.backoff.delay(state["attempt"], self.rng)
        self.sim.schedule(delay, self._retry_fpmtud, dst)

    def _retry_fpmtud(self, dst: int) -> None:
        if dst in self._active:
            self._try_fpmtud(dst)

    # ------------------------------------------------------------------
    # Stage 2: PLPMTUD
    # ------------------------------------------------------------------
    def _try_plpmtud(self, dst: int) -> None:
        state = self._active[dst]
        self.plpmtud_fallbacks += 1
        state["trail"].append("plpmtud-start")
        try:
            self.plpmtud.discover(
                dst,
                state["local_mtu"],
                lambda result, dst=dst: self._on_plpmtud_done(dst, result),
            )
        except RuntimeError:
            # The shared searcher is busy with another destination;
            # skip straight to the conservative default rather than
            # queueing behind a multi-RTT search.
            state["trail"].append("plpmtud-busy")
            self._conservative(dst)

    def _on_plpmtud_done(self, dst: int, result: PlpmtudResult) -> None:
        state = self._active.get(dst)
        if state is None:
            return
        state["plpmtud_result"] = result
        # An all-timeouts search never saw a single ack: the floor it
        # returns is a guess, not a measurement.  Fall through to the
        # conservative default instead of trusting it.
        if result.pmtu <= MIN_PMTU and result.timeouts > 0:
            state["trail"].append("plpmtud-blackhole")
            self._conservative(dst)
            return
        state["trail"].append(f"plpmtud-ok-{result.pmtu}")
        self._finish(dst, result.pmtu, "plpmtud")

    # ------------------------------------------------------------------
    # Stage 3: the conservative default
    # ------------------------------------------------------------------
    def _conservative(self, dst: int) -> None:
        state = self._active[dst]
        pmtu = min(CONSERVATIVE_PMTU, state["local_mtu"])
        self.conservative_fallbacks += 1
        state["trail"].append(f"conservative-{pmtu}")
        self._finish(dst, pmtu, "fallback")

    # ------------------------------------------------------------------
    def _finish(self, dst: int, pmtu: int, source: str) -> None:
        state = self._active.pop(dst)
        # A fresh measurement outranks anything cached: drop every live
        # entry it contradicts (a poisoned or stale value must not be
        # reused by flows whose key the learn below does not overwrite).
        dropped = self.cache.reconcile(dst, pmtu, self.sim.now)
        if dropped:
            state["trail"].append(f"cache-reconciled-{dropped}")
        self.cache.learn(dst, pmtu, self.sim.now, ttl=self.cache_ttl, source=source)
        outcome = DiscoveryOutcome(
            dst=dst,
            pmtu=pmtu,
            source=source,
            elapsed=self.sim.now - state["started_at"],
            fpmtud_attempts=state["attempt"],
            fpmtud_timeouts=state["timeouts"],
            plpmtud_result=state.get("plpmtud_result"),
            trail=state["trail"],
        )
        for waiter in state["waiters"]:
            waiter(outcome)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Counters for the resilience report."""
        return {
            "discoveries": self.discoveries,
            "in_flight": len(self._active),
            "fpmtud_successes": self.fpmtud_successes,
            "plpmtud_fallbacks": self.plpmtud_fallbacks,
            "conservative_fallbacks": self.conservative_fallbacks,
            "cache_short_circuits": self.cache_short_circuits,
            "cache": self.cache.summary(),
        }
