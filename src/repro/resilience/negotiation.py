"""Caravan capability negotiation with a per-peer negative cache.

PX-caravan requires a modified receiver stack (§4.1) — an un-upgraded
host that receives a caravan sees one big garbled datagram instead of
its originals.  During incremental deployment most receivers are *not*
upgraded, so the gateway must know, per destination, whether bundling
is safe.  The protocol is a one-RTT query:

* the gateway sends a CAP-QUERY (UDP, :data:`CARAVAN_CAP_PORT`) toward
  the destination the first time it would bundle for it;
* a caravan-aware stack (one that called
  :meth:`repro.net.Host.enable_caravan_stack`) answers with a CAP-ACK
  carrying its iMTU; an un-upgraded stack has no listener and stays
  silent;
* silence after a backoff-spaced retry budget lands the peer in the
  **negative cache**: datagrams toward it pass through as plain UDP.
  Negative entries carry a TTL so a host upgraded mid-deployment is
  re-discovered, while positive entries expire too (a reinstalled host
  may have *lost* the capability).

While a peer's capability is unknown (query in flight) the gateway
fails safe: plain datagrams.  Losing the optimization for one RTT is
free; garbling a datagram stream is not.

Wire format::

    query:  "PXCQ" + probe_id u32
    ack:    "PXCA" + probe_id u32 + imtu u16
"""

from __future__ import annotations

import random
import struct
from typing import Dict, Optional, Tuple

from ..packet import Packet, build_udp
from .retry import BackoffPolicy

__all__ = [
    "CARAVAN_CAP_PORT",
    "CaravanNegotiator",
    "pack_cap_query",
    "parse_cap_query",
    "pack_cap_ack",
    "parse_cap_ack",
]

#: Well-known UDP port of the capability responder.
CARAVAN_CAP_PORT = 7838

_QUERY_MAGIC = b"PXCQ"
_ACK_MAGIC = b"PXCA"


def pack_cap_query(probe_id: int) -> bytes:
    return _QUERY_MAGIC + struct.pack("!I", probe_id)


def parse_cap_query(payload: bytes) -> Optional[int]:
    if len(payload) < 8 or payload[:4] != _QUERY_MAGIC:
        return None
    return struct.unpack_from("!I", payload, 4)[0]


def pack_cap_ack(probe_id: int, imtu: int) -> bytes:
    return _ACK_MAGIC + struct.pack("!IH", probe_id, imtu)


def parse_cap_ack(payload: bytes) -> "Optional[Tuple[int, int]]":
    if len(payload) < 10 or payload[:4] != _ACK_MAGIC:
        return None
    probe_id, imtu = struct.unpack_from("!IH", payload, 4)
    return probe_id, imtu


class CaravanNegotiator:
    """Per-peer caravan capability tracking for one gateway.

    Attach via :meth:`repro.core.PXGateway.enable_resilience` (which
    registers the ACK listener and installs :meth:`allow_caravan` as
    the worker's caravan gate), or wire manually for tests.
    """

    def __init__(
        self,
        gateway,
        positive_ttl: float = 60.0,
        negative_ttl: float = 5.0,
        query_timeout: float = 0.25,
        backoff: Optional[BackoffPolicy] = None,
        seed: int = 0,
    ):
        if positive_ttl <= 0 or negative_ttl <= 0 or query_timeout <= 0:
            raise ValueError("TTLs and timeouts must be positive")
        self.gateway = gateway
        self.sim = gateway.sim
        self.positive_ttl = positive_ttl
        self.negative_ttl = negative_ttl
        self.query_timeout = query_timeout
        self.backoff = backoff or BackoffPolicy(
            initial=0.1, multiplier=2.0, max_delay=1.0, jitter=0.1, max_attempts=3
        )
        self.rng = random.Random(seed)
        #: peer ip -> (imtu, absolute expiry).
        self._positive: Dict[int, Tuple[int, float]] = {}
        #: peer ip -> absolute expiry of the negative verdict.
        self._negative: Dict[int, float] = {}
        #: peer ip -> in-flight probe state.
        self._pending: Dict[int, dict] = {}
        self._next_probe_id = 1
        self.queries_sent = 0
        self.acks_received = 0
        self.negative_verdicts = 0
        self.suppressed_bundles = 0
        gateway.register_local_udp(CARAVAN_CAP_PORT, self._on_ack)

    # ------------------------------------------------------------------
    # The gate the worker consults
    # ------------------------------------------------------------------
    def allow_caravan(self, peer: int, now: float) -> bool:
        """May the gateway bundle datagrams toward *peer* right now?

        Unknown or negative-cached peers answer False (plain datagrams
        pass through); an unknown peer additionally kicks off a
        capability query so a later answer can flip the verdict.
        """
        entry = self._positive.get(peer)
        if entry is not None:
            if now < entry[1]:
                return True
            del self._positive[peer]
        expiry = self._negative.get(peer)
        if expiry is not None:
            if now < expiry:
                self.suppressed_bundles += 1
                return False
            del self._negative[peer]
        if peer not in self._pending:
            self._start_probe(peer)
        self.suppressed_bundles += 1
        return False

    def capability(self, peer: int, now: float) -> Optional[bool]:
        """The cached verdict: True/False, or None while unknown."""
        entry = self._positive.get(peer)
        if entry is not None and now < entry[1]:
            return True
        expiry = self._negative.get(peer)
        if expiry is not None and now < expiry:
            return False
        return None

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def _start_probe(self, peer: int) -> None:
        self._pending[peer] = {"attempt": 0, "probe_id": 0, "timer": None}
        self._send_query(peer)

    def _send_query(self, peer: int) -> None:
        state = self._pending[peer]
        route = self.gateway.routes.lookup(peer)
        if route is None:
            # Unroutable peers fail safe immediately.
            self._conclude_negative(peer)
            return
        state["attempt"] += 1
        state["probe_id"] = self._next_probe_id
        self._next_probe_id += 1
        packet = build_udp(
            route.interface.ip,
            peer,
            CARAVAN_CAP_PORT,
            CARAVAN_CAP_PORT,
            payload=pack_cap_query(state["probe_id"]),
        )
        route.interface.send(packet)
        self.queries_sent += 1
        state["timer"] = self.sim.schedule(self.query_timeout, self._on_timeout, peer)

    def _on_timeout(self, peer: int) -> None:
        state = self._pending.get(peer)
        if state is None:
            return
        if self.backoff.exhausted(state["attempt"]):
            self._conclude_negative(peer)
            return
        delay = self.backoff.delay(state["attempt"], self.rng)
        state["timer"] = self.sim.schedule(delay, self._send_query, peer)

    def _conclude_negative(self, peer: int) -> None:
        self._pending.pop(peer, None)
        self._negative[peer] = self.sim.now + self.negative_ttl
        self.negative_verdicts += 1

    def _on_ack(self, packet: Packet, interface) -> None:
        parsed = parse_cap_ack(packet.payload)
        if parsed is None:
            return
        _probe_id, imtu = parsed
        peer = packet.ip.src
        state = self._pending.pop(peer, None)
        if state is not None and state["timer"] is not None:
            state["timer"].cancel()
        self._negative.pop(peer, None)
        self._positive[peer] = (imtu, self.sim.now + self.positive_ttl)
        self.acks_received += 1

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Counters for the resilience report."""
        return {
            "positive_entries": len(self._positive),
            "negative_entries": len(self._negative),
            "pending_probes": len(self._pending),
            "queries_sent": self.queries_sent,
            "acks_received": self.acks_received,
            "negative_verdicts": self.negative_verdicts,
            "suppressed_bundles": self.suppressed_bundles,
        }


def make_cap_responder(imtu: int):
    """The host-side CAP-QUERY listener (see Host.enable_caravan_stack)."""

    def responder(packet: Packet, host) -> None:
        probe_id = parse_cap_query(packet.payload)
        if probe_id is None:
            return
        host.send_udp(
            packet.ip.src,
            CARAVAN_CAP_PORT,
            packet.udp.src_port,
            pack_cap_ack(probe_id, imtu),
        )

    return responder
