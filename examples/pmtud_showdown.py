#!/usr/bin/env python3
"""PMTUD showdown: F-PMTUD vs classical PMTUD vs PLPMTUD.

Builds a WAN path with a hidden 1400 B bottleneck and — crucially — an
ICMP blackhole router (the widespread misconfiguration that breaks
classical PMTUD), then runs all three discovery methods side by side:

* classical PMTUD (RFC 1191) stalls: its oversized DF probes vanish
  silently and no ICMP ever arrives;
* PLPMTUD (RFC 4821, Scamper-style) succeeds but needs a multi-round
  search where every failed size costs a multi-second timeout;
* F-PMTUD reads the answer out of the fragment sizes in a single RTT.

Run:  python examples/pmtud_showdown.py
"""

from repro.net import Topology
from repro.pmtud import (
    ClassicalPmtud,
    FPmtudDaemon,
    FPmtudProber,
    Plpmtud,
    ProbeEchoDaemon,
)


def build_path(blackhole: bool):
    """client - r0 - r1(bottleneck 1400 B behind it) - r2 - server."""
    topo = Topology()
    client = topo.add_host("client")
    server = topo.add_host("server")
    routers = [topo.add_router(f"r{i}", icmp_blackhole=blackhole) for i in range(3)]
    chain = [client] + routers + [server]
    mtus = [9000, 9000, 1400, 9000]
    for index, mtu in enumerate(mtus):
        topo.link(chain[index], chain[index + 1], mtu=mtu, delay=0.005)
    topo.build_routes()
    return topo, client, server


def main():
    print("path: client -> 3 routers (ICMP blackholes) -> server")
    print("true bottleneck MTU: 1400 B, local MTU: 9000 B\n")

    topo, client, server = build_path(blackhole=True)
    FPmtudDaemon(server)
    ProbeEchoDaemon(server)

    outcomes = {}
    FPmtudProber(client).probe(
        server.ip, 9000, lambda result: outcomes.__setitem__("fpmtud", result)
    )
    Plpmtud(client).discover(
        server.ip, 9000, lambda result: outcomes.__setitem__("plpmtud", result)
    )
    ClassicalPmtud(client).discover(
        server.ip, 9000, lambda result: outcomes.__setitem__("classical", result)
    )
    topo.run(until=600.0)

    fp = outcomes["fpmtud"]
    plp = outcomes["plpmtud"]
    classic = outcomes["classical"]

    print(f"{'method':<12} {'PMTU':>8} {'time':>12} {'probes':>8}  notes")
    print("-" * 64)
    print(f"{'F-PMTUD':<12} {fp.pmtu:>8} {fp.elapsed * 1e3:>9.1f} ms {1:>8}  "
          f"{len(fp.fragment_sizes)} fragments observed")
    print(f"{'PLPMTUD':<12} {plp.pmtu:>8} {plp.elapsed:>10.1f} s {plp.probes_sent:>8}  "
          f"{plp.timeouts} sizes timed out")
    classical_pmtu = classic.pmtu if classic.pmtu is not None else "FAILED"
    print(f"{'classical':<12} {classical_pmtu:>8} {classic.elapsed:>10.1f} s "
          f"{classic.probes_sent:>8}  blackholed={classic.blackholed}")

    print(f"\nF-PMTUD speedup over PLPMTUD: {plp.elapsed / fp.elapsed:.0f}x")
    print("(the paper measured up to 368x on CloudLab's Utah<->Mass path)")

    # Rerun classical PMTUD on a well-behaved path for contrast.
    topo2, client2, server2 = build_path(blackhole=False)
    ProbeEchoDaemon(server2)
    results2 = {}
    ClassicalPmtud(client2).discover(
        server2.ip, 9000, lambda result: results2.__setitem__("classical", result)
    )
    topo2.run(until=60.0)
    good = results2["classical"]
    print(f"\nwith well-behaved ICMP, classical PMTUD does work: "
          f"PMTU={good.pmtu} after {good.icmp_received} ICMP messages "
          f"in {good.elapsed * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
