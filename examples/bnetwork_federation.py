#!/usr/bin/env python3
"""Federating b-networks: explicit iMTU advertisement (§4.2).

When two beneficiary networks neighbor each other, their PXGWs can
exchange iMTU information and skip translation entirely: large packets
cross the border untouched, extending the jumbo path end to end.

Topology (the paper's Figure 2, with a direct peering):

    host_a -- PXGW-1 ====(peering, 9000 B)==== PXGW-2 -- host_b
                 \\
                  \\--(legacy Internet, 1500 B)-- legacy_host

Traffic between host_a and host_b flows as 9000 B jumbos the whole way;
traffic toward the legacy host is still split/merged at PXGW-1.

Run:  python examples/bnetwork_federation.py
"""

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.tcpstack import TCPConnection, TCPListener


def main():
    topo = Topology()
    host_a = topo.add_host("host_a")
    host_b = topo.add_host("host_b")
    legacy = topo.add_host("legacy")
    gw1 = PXGateway(topo.sim, "pxgw1", config=GatewayConfig(elephant_threshold_packets=2))
    gw2 = PXGateway(topo.sim, "pxgw2", config=GatewayConfig(elephant_threshold_packets=2))
    topo.add_node(gw1)
    topo.add_node(gw2)

    topo.link(host_a, gw1, mtu=9000, bandwidth_bps=10e9, delay=50e-6)
    topo.link(gw1, gw2, mtu=9000, bandwidth_bps=10e9, delay=1e-3)  # jumbo peering
    topo.link(gw2, host_b, mtu=9000, bandwidth_bps=10e9, delay=50e-6)
    topo.link(gw1, legacy, mtu=1500, bandwidth_bps=10e9, delay=1e-3)
    topo.build_routes()

    gw1.mark_internal(gw1.interfaces[0])  # toward host_a
    gw2.mark_internal(gw2.interfaces[1])  # toward host_b

    # The iMTU exchange: each gateway learns its peer runs 9000 B too.
    gw1.set_neighbor_imtu(gw1.interfaces[1], gw2.config.imtu)
    gw2.set_neighbor_imtu(gw2.interfaces[0], gw1.config.imtu)

    # ------------------------------------------------------------------
    # b-network to b-network: jumbos end to end, zero translation.
    # ------------------------------------------------------------------
    listener_b = TCPListener(host_b, 9000, mss=8960)
    conn_ab = TCPConnection(host_a, 40000, host_b.ip, 9000, mss=8960)
    conn_ab.connect()
    topo.run(until=0.2)
    conn_ab.send_bulk(3_000_000)
    topo.run(until=2.0)

    print("host_a -> host_b (federated b-networks):")
    print(f"  bytes delivered            : {conn_ab.bytes_acked:,}")
    print(f"  negotiated MSS             : {conn_ab.send_mss} B (never clamped)")
    print(f"  packets gw1 left untouched : {gw1.untranslated}")
    print(f"  jumbo segments split by gw1: {gw1.stats.split_segments}")

    # ------------------------------------------------------------------
    # b-network to legacy: PXGW-1 still translates.
    # ------------------------------------------------------------------
    listener_l = TCPListener(legacy, 8080, mss=1460)
    conn_al = TCPConnection(host_a, 40001, legacy.ip, 8080, mss=8960)
    conn_al.connect()
    topo.run(until=2.2)
    conn_al.send_bulk(3_000_000)
    topo.run(until=4.0)

    print("\nhost_a -> legacy host (translation still needed):")
    print(f"  bytes delivered            : {listener_l.connections[0].bytes_delivered:,}")
    print(f"  negotiated MSS             : {conn_al.send_mss} B "
          "(kept large by the MSS clamp)")
    print(f"  jumbo segments split by gw1: {gw1.stats.split_segments}")
    print("\nthe same border gateway federates with jumbo peers and"
          "\ntranslates for legacy ones, per destination.")


if __name__ == "__main__":
    main()
