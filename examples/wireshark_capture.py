#!/usr/bin/env python3
"""Export simulated PXGW traffic to a Wireshark-compatible pcap file.

Packets in this library are byte-accurate, so a capture taken at the
b-network side of a PXGW opens in Wireshark/tcpdump like a real trace —
you can inspect the 9000 B spliced jumbos, the rewritten MSS option in
the SYN-ACK, and the PX-caravan framing byte by byte.

Run:  python examples/wireshark_capture.py [output.pcap]
"""

import sys

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.sim.pcap import InterfaceTap, PcapWriter
from repro.tcpstack import TCPConnection, TCPListener


def main():
    output = sys.argv[1] if len(sys.argv) > 1 else "pxgw_inside.pcap"

    topo = Topology()
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    gateway = PXGateway(topo.sim, "pxgw",
                        config=GatewayConfig(elephant_threshold_packets=2))
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=9000, bandwidth_bps=10e9, delay=100e-6)
    topo.link(gateway, outside, mtu=1500, bandwidth_bps=10e9, delay=1e-3)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])

    writer = PcapWriter(output)
    tap = InterfaceTap(inside.interfaces[0], writer)

    # A download (outside -> inside): the capture shows the handshake
    # with the MSS raised to 8960 and data arriving as 9000 B jumbos.
    server = TCPListener(outside, 80, mss=1460)
    client = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
    client.connect()
    topo.run(until=0.2)
    server.connections[0].send_bulk(500_000)
    # And some UDP that will arrive as PX-caravan bundles.
    for index in range(12):
        outside.send_udp(inside.ip, 5353, 4433, bytes([index]) * 1200)
    topo.run(until=3.0)

    tap.detach()
    writer.close()
    print(f"wrote {writer.packets_written} packets to {output}")
    print("open it with:  wireshark", output)
    print("(or: tcpdump -r", output, "| head)")
    print("\nthings to look for:")
    print("  - the SYN-ACK's MSS option reads 8960 (rewritten by PXGW)")
    print("  - data packets are 9000 B spliced jumbos")
    print("  - UDP packets with ToS 0x04 are PX-caravan bundles")


if __name__ == "__main__":
    main()
