#!/usr/bin/env python3
"""Quickstart: a b-network behind a PXGW, talking to the legacy Internet.

Builds the smallest interesting PacketExpress deployment:

    inside host (9000 B iMTU) --- PXGW --- outside host (1500 B eMTU)

then opens a TCP connection from inside to outside, downloads 2 MB, and
shows what the gateway did: the MSS intervention during the handshake,
the downlink merge into 9000 B jumbos, the uplink split back to eMTU,
and the conversion yield.

Run:  python examples/quickstart.py
"""

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.tcpstack import TCPConnection, TCPListener


def main():
    # ------------------------------------------------------------------
    # Topology: one b-network border.
    # ------------------------------------------------------------------
    topo = Topology()
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    gateway = PXGateway(topo.sim, "pxgw", config=GatewayConfig(imtu=9000, emtu=1500))
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=9000, bandwidth_bps=10e9, delay=50e-6)
    topo.link(gateway, outside, mtu=1500, bandwidth_bps=10e9, delay=500e-6)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])  # first link faces the b-network

    # ------------------------------------------------------------------
    # A legacy server outside, a jumbo-capable client inside.
    # ------------------------------------------------------------------
    server = TCPListener(outside, port=80, mss=1460)
    client = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
    client.connect()
    topo.run(until=0.1)

    print("after the handshake:")
    print(f"  inside client negotiated MSS : {client.send_mss} B "
          "(PXGW raised the server's 1460 B advertisement)")
    print(f"  outside server negotiated MSS: {server.connections[0].send_mss} B")
    print(f"  MSS options rewritten by PXGW: {gateway.stats.mss_rewrites}")

    # ------------------------------------------------------------------
    # Download 2 MB from the outside server (downlink: PXGW merges).
    # ------------------------------------------------------------------
    server.connections[0].send_bulk(2_000_000)
    topo.run(until=3.0)

    print("\nafter a 2 MB download (outside -> inside):")
    print(f"  bytes delivered to the client : {client.bytes_delivered:,}")
    print(f"  jumbo segments spliced by PXGW: {gateway.stats.merged_packets}")
    sizes = gateway.stats.inbound_size_histogram
    jumbo = sizes.get(9000, 0)
    print(f"  9000 B packets on the inside  : {jumbo}")
    print(f"  conversion yield              : {gateway.stats.conversion_yield:.1%}")

    # ------------------------------------------------------------------
    # Upload 2 MB (uplink: PXGW splits jumbos to the eMTU).
    # ------------------------------------------------------------------
    client.send_bulk(2_000_000)
    topo.run(until=6.0)
    print("\nafter a 2 MB upload (inside -> outside):")
    print(f"  bytes delivered to the server : {server.connections[0].bytes_delivered:,}")
    print(f"  eMTU segments split by PXGW   : {gateway.stats.split_segments}")


if __name__ == "__main__":
    main()
