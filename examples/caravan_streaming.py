#!/usr/bin/env python3
"""PX-caravan: carrying a QUIC-like UDP media stream across a b-network.

UDP datagrams cannot be merged or split like TCP bytes — a QUIC stack
encrypts and frames per datagram — so PXGW *tunnels* them: consecutive
datagrams of a flow are bundled into one jumbo "caravan" whose inner
records preserve every original boundary (Figure 3's format).

This example streams 1200 B datagrams (a typical QUIC packet size) from
a legacy-MTU server through a PXGW into a 9000 B b-network, where a
caravan-aware receiver unpacks them.  It then shows the CPU-efficiency
win the bundling buys the receiver.

Run:  python examples/caravan_streaming.py
"""

from repro.core import GatewayConfig, PXGateway, decode_caravan, is_caravan
from repro.cpu import XEON_5512U
from repro.net import Topology
from repro.nic import ReceiverConfig, ReceiverModel

DATAGRAMS = 600
DATAGRAM_SIZE = 1200


def main():
    topo = Topology()
    viewer = topo.add_host("viewer")  # inside the b-network
    cdn = topo.add_host("cdn")  # legacy 1500 B world
    gateway = PXGateway(topo.sim, "pxgw",
                        config=GatewayConfig(elephant_threshold_packets=4))
    topo.add_node(gateway)
    topo.link(viewer, gateway, mtu=9000, bandwidth_bps=10e9, delay=100e-6)
    topo.link(gateway, cdn, mtu=1500, bandwidth_bps=10e9, delay=2e-3)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])

    # A caravan-aware receiver: the modified host stack of §4.1.
    wire_packets = []
    media_frames = []

    def on_media(packet, host):
        wire_packets.append(packet)
        for datagram in decode_caravan(packet):
            media_frames.append(datagram.payload)

    viewer.on_udp(4433, on_media)

    # The CDN streams fixed-size datagrams (QUIC-like pacing).
    for sequence in range(DATAGRAMS):
        payload = sequence.to_bytes(4, "big") + b"\x00" * (DATAGRAM_SIZE - 4)
        cdn.send_udp(viewer.ip, 4433, 4433, payload)
    topo.run(until=2.0)

    caravans = sum(1 for packet in wire_packets if is_caravan(packet))
    print(f"datagrams sent by the CDN      : {DATAGRAMS}")
    print(f"packets that crossed the b-net : {len(wire_packets)} "
          f"({caravans} caravans, {len(wire_packets) - caravans} loose)")
    print(f"media frames after unbundling  : {len(media_frames)}")

    in_order = all(
        int.from_bytes(frame[:4], "big") == index
        for index, frame in enumerate(media_frames)
    )
    print(f"every frame intact and in order: {in_order}")
    print(f"mean datagrams per caravan     : "
          f"{DATAGRAMS / len(wire_packets):.1f}")

    # ------------------------------------------------------------------
    # What did the viewer's CPU save?  Price both arrival streams.
    # ------------------------------------------------------------------
    loose_model = ReceiverModel(ReceiverConfig(udp_gro=True, busy_polling=True))
    loose_model.process(
        decoded for packet in wire_packets for decoded in decode_caravan(packet)
    )
    caravan_model = ReceiverModel(ReceiverConfig(udp_gro=True, busy_polling=True))
    caravan_model.process(iter(wire_packets))

    loose = loose_model.account.sustainable_goodput_bps(XEON_5512U, cores=1)
    bundled = caravan_model.account.sustainable_goodput_bps(XEON_5512U, cores=1)
    print("\nreceiver capacity on one core:")
    print(f"  loose 1200 B datagrams : {loose / 1e9:5.1f} Gbps")
    print(f"  PX-caravan bundles     : {bundled / 1e9:5.1f} Gbps "
          f"({bundled / loose:.1f}x — the paper's §5.2 UDP case measured 2.4x)")


if __name__ == "__main__":
    main()
