#!/usr/bin/env python3
"""Why middleboxes crave large MTUs: a 5G UPF under packet-rate load.

The UPF (the 5G user plane's workhorse) does per-packet work — GTP-U
decap/encap and PDR/FAR/QER rule lookups — and almost no per-byte work,
so its throughput is packet-rate-bound: at a fixed packet rate, a 6x
larger MTU carries ~6x the bits.  This script pushes the same downlink
workload through the OMEC-style UPF pipeline at several MTUs and prints
the single-core throughput curve behind Figure 1a.

Run:  python examples/upf_acceleration.py
"""

from repro.cpu import XEON_6554S
from repro.packet import GTPUHeader, Packet, build_udp, str_to_ip
from repro.upf import Upf

N3 = str_to_ip("10.100.0.1")
GNB = str_to_ip("10.100.0.2")
UE_BASE = str_to_ip("172.16.0.1")
DN = str_to_ip("93.184.216.34")

FLOWS = 800
SAMPLE_PACKETS = 3000


def build_upf() -> Upf:
    upf = Upf(n3_address=N3)
    for index in range(FLOWS):
        upf.sessions.create_session(
            seid=index,
            ue_ip=UE_BASE + index,
            uplink_teid=10_000 + index,
            gnb_teid=20_000 + index,
            gnb_ip=GNB,
        )
    return upf


def downlink_throughput(mtu: int) -> "tuple[float, float]":
    """(single-core throughput bps, cycles per packet) at *mtu*."""
    upf = build_upf()
    payload_len = mtu - 28
    for index in range(SAMPLE_PACKETS):
        packet = build_udp(DN, UE_BASE + (index % FLOWS), 80, 4000,
                           payload=b"\0" * payload_len)
        upf.process(packet)
    tput = upf.account.sustainable_goodput_bps(XEON_6554S, cores=1)
    return tput, upf.account.cycles_per_packet()


def main():
    print(f"OMEC-style UPF, {FLOWS} sessions, one {XEON_6554S.name} core")
    print(f"{'MTU':>6} {'throughput':>14} {'pps (million)':>14} {'cycles/pkt':>11}")
    print("-" * 50)
    results = {}
    for mtu in (1500, 3000, 6000, 9000):
        tput, cycles = downlink_throughput(mtu)
        results[mtu] = tput
        pps = tput / 8 / (mtu - 28)
        print(f"{mtu:>6} {tput / 1e9:>10.1f} Gbps {pps / 1e6:>14.2f} {cycles:>11.0f}")

    print(f"\nspeedup 9000 B over 1500 B: {results[9000] / results[1500]:.2f}x "
          "(paper: 5.6x, 208 Gbps at 9 KB)")
    print("\nthe packet rate barely moves across the sweep — the rule-table")
    print("lookups dominate — so throughput scales almost linearly with MTU.")

    # Show the round trip through the pipeline for one packet.
    upf = build_upf()
    request = build_udp(UE_BASE, DN, 4000, 80, payload=b"GET /")
    inner_bytes = request.to_bytes()
    gtpu_payload = GTPUHeader(teid=10_000).pack(payload_len=len(inner_bytes)) + inner_bytes
    uplink = build_udp(GNB, N3, 2152, 2152, payload=gtpu_payload)
    [decapped] = upf.process(uplink)
    print(f"\nuplink sanity check: GTP-U decapsulated to "
          f"{decapped.payload!r} toward the data network")
    [encapped] = upf.process(build_udp(DN, UE_BASE, 80, 4000, payload=b"200 OK"))
    gtpu = GTPUHeader.unpack(encapped.payload)
    print(f"downlink sanity check: response re-encapsulated toward the gNB "
          f"(TEID {gtpu.teid})")


if __name__ == "__main__":
    main()
