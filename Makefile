# Developer conveniences. The library itself has no build step.

.PHONY: test bench bench-paper docs examples lint ops

test:
	pytest tests/ -q

ops:  ## canary/incident suite + corpus verdicts with determinism diff
	pytest tests/ops -q
	python -m repro canary --corpus
	python -m repro canary --corpus --json --out /tmp/repro_corpus_a.json
	python -m repro canary --corpus --json --out /tmp/repro_corpus_b.json
	cmp /tmp/repro_corpus_a.json /tmp/repro_corpus_b.json

bench:
	pytest benchmarks/ --benchmark-only

bench-paper:  ## only the per-figure/table reproductions (no extensions)
	pytest benchmarks/test_fig*.py benchmarks/test_table*.py benchmarks/test_s5*.py --benchmark-only

docs:
	python tools/gen_api_docs.py

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex > /dev/null || exit 1; done

lint:
	python -m compileall -q src tests benchmarks examples tools
