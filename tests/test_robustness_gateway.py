"""Failure injection: PXGW correctness under reordering and burst loss.

The merge engine only splices *in-order* bytes; these tests verify that
reordered or bursty-lossy paths degrade gracefully (flush + restart)
without ever corrupting the byte stream, and that fragments coexist
with the gateway.
"""

import pytest

from repro.core import GatewayConfig, PXGateway
from repro.net import Topology
from repro.packet import build_udp, fragment_packet
from repro.sim import GilbertElliott, Netem
from repro.tcpstack import TCPConnection, TCPListener


def gateway_topology(netem_external=None, merge_timeout=200e-6, seed=31):
    topo = Topology(seed=seed)
    inside = topo.add_host("inside")
    outside = topo.add_host("outside")
    gateway = PXGateway(topo.sim, "pxgw",
                        config=GatewayConfig(merge_timeout=merge_timeout,
                                             elephant_threshold_packets=2))
    topo.add_node(gateway)
    topo.link(inside, gateway, mtu=9000, bandwidth_bps=10e9, delay=50e-6,
              queue_bytes=1 << 24)
    topo.link(gateway, outside, mtu=1500, bandwidth_bps=10e9, delay=1e-3,
              netem=netem_external, queue_bytes=1 << 24)
    topo.build_routes()
    gateway.mark_internal(gateway.interfaces[0])
    return topo, inside, outside, gateway


def transfer(topo, inside, outside, nbytes=800_000, deadline=30.0):
    listener = TCPListener(outside, 80, mss=1460)
    conn = TCPConnection(inside, 40000, outside.ip, 80, mss=8960)
    conn.connect()
    topo.run(until=1.0)
    server = listener.connections[0]
    server.send_bulk(nbytes)  # download: merge path under stress
    conn.send_bulk(nbytes)  # upload: split path under stress
    topo.run(until=deadline)
    return conn, server


class TestReordering:
    def test_download_survives_reordering(self):
        netem = Netem(reorder=0.05, reorder_extra=0.002)
        topo, inside, outside, gateway = gateway_topology(netem_external=netem)
        conn, server = transfer(topo, inside, outside)
        assert conn.bytes_delivered == 800_000
        assert server.bytes_delivered == 800_000
        # Reordering happened and the merge engine coped (flushes of
        # spliced partials rather than corrupted output).
        assert gateway.stats.merged_packets > 0

    def test_heavy_reordering_still_correct(self):
        netem = Netem(reorder=0.3, reorder_extra=0.004)
        topo, inside, outside, gateway = gateway_topology(netem_external=netem)
        conn, server = transfer(topo, inside, outside, nbytes=300_000, deadline=60.0)
        assert conn.bytes_delivered == 300_000
        assert server.bytes_delivered == 300_000


class TestBurstLoss:
    def test_transfer_completes_through_bursty_wan(self):
        netem = Netem(delay=2e-3,
                      burst_loss=GilbertElliott(p_good_to_bad=0.002,
                                                p_bad_to_good=0.3,
                                                loss_bad=0.5))
        topo, inside, outside, gateway = gateway_topology(netem_external=netem)
        conn, server = transfer(topo, inside, outside, nbytes=400_000, deadline=120.0)
        assert conn.bytes_delivered == 400_000
        assert server.bytes_delivered == 400_000
        assert conn.retransmits > 0  # bursts really hit the flow

    def test_reordering_plus_loss_combined(self):
        netem = Netem(delay=1e-3, loss=0.002, reorder=0.05, reorder_extra=0.002)
        topo, inside, outside, gateway = gateway_topology(netem_external=netem)
        conn, server = transfer(topo, inside, outside, nbytes=300_000, deadline=120.0)
        assert conn.bytes_delivered == 300_000
        assert server.bytes_delivered == 300_000


class TestFragmentsThroughGateway:
    def test_fragmented_udp_passes_outbound(self):
        topo, inside, outside, gateway = gateway_topology()
        received = []
        outside.on_udp(9, lambda packet, host: received.append(packet))
        # An inside host emits a pre-fragmented datagram (e.g. from an
        # app that bypassed PMTU); the gateway forwards fragments as-is.
        packet = build_udp(inside.ip, outside.ip, 1, 9, payload=b"f" * 4000)
        for fragment in fragment_packet(packet, 1400):
            inside.send(fragment)
        topo.run(until=1.0)
        assert len(received) == 1
        assert received[0].payload == b"f" * 4000

    def test_oversized_udp_outbound_fragmented_by_gateway(self):
        topo, inside, outside, gateway = gateway_topology()
        received = []
        outside.on_udp(9, lambda packet, host: received.append(packet))
        inside.send_udp(outside.ip, 1, 9, b"big" * 2000)  # 6 kB datagram
        topo.run(until=1.0)
        # The gateway's router layer fragments it for the 1500 B side.
        assert len(received) == 1
        assert received[0].payload == b"big" * 2000
