"""Tests for the multi-core gateway datapath (worker + RSS dispatch)."""

import random

import pytest

from repro.core import Bound, GatewayConfig, GatewayDatapath, GatewayWorker
from repro.cpu import XEON_6554S
from repro.packet import TCPFlags, build_tcp
from repro.workload import interleave, make_tcp_sources


def bidirectional_stream(total, seed=1, mean_run=24.0, flows=50):
    down = make_tcp_sources(flows, 1448, tag=Bound.INBOUND)
    up = make_tcp_sources(flows, 8948, tag=Bound.OUTBOUND, base_port=30000,
                          client_net="10.1.0", server_net="198.51.100")
    return interleave(down * 6 + up, total, random.Random(seed), mean_run)


class TestGatewayWorker:
    def test_syn_takes_slow_path_and_clamps(self):
        worker = GatewayWorker(GatewayConfig())
        syn = build_tcp("9.9.9.9", "10.1.0.1", 1, 80, flags=TCPFlags.SYN, mss=1460)
        [out] = worker.process(syn, Bound.INBOUND)
        assert out.tcp.mss_option == 8960
        assert worker.stats.mss_rewrites == 1

    def test_mouse_flow_hairpinned(self):
        worker = GatewayWorker(GatewayConfig())
        packet = build_tcp("9.9.9.9", "10.1.0.1", 1, 80, payload=b"x" * 100)
        outs = worker.process(packet, Bound.INBOUND)
        assert outs == [packet]
        assert worker.stats.hairpinned == 1
        assert worker.account.breakdown.get("merge") is None

    def test_elephant_promoted_then_merged(self):
        worker = GatewayWorker(GatewayConfig(elephant_threshold_packets=2))
        source = make_tcp_sources(1, 1448)[0]
        outputs = []
        for index in range(20):
            outputs.extend(worker.process(source.next_packet(), Bound.INBOUND,
                                          now=index * 1e-6))
        spliced = [p for p in outputs if p.meta.get("spliced")]
        assert spliced
        assert all(p.total_len == 9000 for p in spliced)

    def test_outbound_jumbo_split(self):
        worker = GatewayWorker(GatewayConfig(hairpin_small_flows=False))
        packet = build_tcp("10.1.0.1", "9.9.9.9", 80, 1, payload=b"y" * 8948)
        outs = worker.process(packet, Bound.OUTBOUND)
        assert len(outs) == 7
        assert all(p.total_len <= 1500 for p in outs)

    def test_header_only_dma_reduces_mem_traffic(self):
        def mem_for(config):
            worker = GatewayWorker(config)
            packet = build_tcp("10.1.0.1", "9.9.9.9", 80, 1, payload=b"z" * 8948)
            worker.process(packet, Bound.OUTBOUND)
            return worker.account.mem_bytes

        full = mem_for(GatewayConfig(hairpin_small_flows=False))
        hdo = mem_for(GatewayConfig(hairpin_small_flows=False, header_only_dma=True))
        assert hdo < full / 5

    def test_baseline_charges_software_gro(self):
        worker = GatewayWorker(GatewayConfig(baseline_gro=True, hairpin_small_flows=False,
                                             delayed_merge=False))
        source = make_tcp_sources(1, 1448)[0]
        for _ in range(10):
            worker.process(source.next_packet(), Bound.INBOUND)
        assert worker.account.breakdown["gro-sw"] == pytest.approx(10 * 2500.0)


class TestGatewayDatapath:
    def test_flow_affinity_to_workers(self):
        dp = GatewayDatapath(GatewayConfig())
        source = make_tcp_sources(1, 1448)[0]
        first = dp.worker_for(source.next_packet())
        for _ in range(10):
            assert dp.worker_for(source.next_packet()) is first

    def test_flows_spread_over_workers(self):
        dp = GatewayDatapath(GatewayConfig(workers=8))
        sources = make_tcp_sources(200, 1448)
        used = {dp.worker_for(s.next_packet()).index for s in sources}
        assert len(used) == 8

    def test_stream_processing_yield_and_throughput(self):
        dp = GatewayDatapath(GatewayConfig())
        dp.process_stream(bidirectional_stream(20000), final_flush=False)
        dp.reset_measurement()
        dp.process_stream(bidirectional_stream(30000, seed=2), final_flush=False)
        assert dp.conversion_yield > 0.85
        tput = dp.sustainable_throughput_bps(XEON_6554S)
        assert 500e9 < tput < 2e12

    def test_px_beats_baseline_on_both_axes(self):
        def run(config):
            dp = GatewayDatapath(config)
            dp.process_stream(bidirectional_stream(15000), final_flush=False)
            dp.reset_measurement()
            dp.process_stream(bidirectional_stream(25000, seed=3), final_flush=False)
            return dp.sustainable_throughput_bps(XEON_6554S), dp.conversion_yield

        px_tput, px_yield = run(GatewayConfig())
        base_tput, base_yield = run(
            GatewayConfig(baseline_gro=True, delayed_merge=False,
                          hairpin_small_flows=False)
        )
        assert px_tput > 3 * base_tput
        assert px_yield > base_yield

    def test_header_only_dma_raises_throughput(self):
        # At scale PX is memory-bandwidth bound; header-only DMA lifts
        # that bound (Figure 5a's 1.09 -> 1.45 Tbps step).
        def run(config):
            dp = GatewayDatapath(config)
            dp.process_stream(bidirectional_stream(15000, flows=200),
                              final_flush=False)
            dp.reset_measurement()
            dp.process_stream(bidirectional_stream(30000, seed=5, flows=200),
                              final_flush=False)
            return dp.sustainable_throughput_bps(XEON_6554S)

        assert run(GatewayConfig(header_only_dma=True)) > 1.1 * run(GatewayConfig())

    def test_reset_measurement_keeps_merge_state(self):
        dp = GatewayDatapath(GatewayConfig())
        dp.process_stream(bidirectional_stream(5000), final_flush=False)
        pending_before = sum(w.merge.pending_bytes() for w in dp.workers)
        dp.reset_measurement()
        assert dp.combined_account().cycles == 0
        assert sum(w.merge.pending_bytes() for w in dp.workers) == pending_before

    def test_delayed_merge_improves_yield(self):
        def run(delayed):
            config = GatewayConfig(delayed_merge=delayed, hairpin_small_flows=False)
            dp = GatewayDatapath(config)
            dp.process_stream(bidirectional_stream(15000), final_flush=False)
            dp.reset_measurement()
            dp.process_stream(bidirectional_stream(25000, seed=4), final_flush=False)
            return dp.conversion_yield

        assert run(True) > run(False) + 0.1
