"""Tests for the flow table, classifier, MSS clamp, config, and stats."""

import pytest

from repro.core import (
    Bound,
    FlowClassifier,
    FlowTable,
    GatewayConfig,
    GatewayStats,
    MssClamp,
)
from repro.packet import FlowKey, IPProto, TCPFlags, build_tcp, build_udp


class TestFlowTable:
    def key(self, i=0):
        return FlowKey(IPProto.TCP, 100 + i, 1, 200, 2)

    def test_lookup_creates_once(self):
        table = FlowTable()
        a = table.lookup(self.key(), now=1.0)
        b = table.lookup(self.key(), now=2.0)
        assert a is b
        assert table.misses == 1
        assert table.lookups == 2

    def test_lru_eviction(self):
        evicted = []
        table = FlowTable(capacity=2, on_evict=evicted.append)
        table.lookup(self.key(0))
        table.lookup(self.key(1))
        table.lookup(self.key(0))  # refresh 0
        table.lookup(self.key(2))  # evicts 1
        assert table.evictions == 1
        assert evicted[0].key == self.key(1)
        assert self.key(0) in table

    def test_expire_idle(self):
        table = FlowTable()
        state = table.lookup(self.key(), now=0.0)
        state.touch(100, now=0.0)
        assert table.expire_idle(now=100.0, idle_timeout=30.0) == 1
        assert len(table) == 0

    def test_peek_does_not_create(self):
        table = FlowTable()
        assert table.peek(self.key()) is None
        assert len(table) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FlowTable(capacity=0)


class TestClassifier:
    def packet(self, flow=0):
        return build_udp("1.0.0.1", "2.0.0.2", 1000 + flow, 80, payload=b"x" * 100)

    def test_promotion_after_threshold(self):
        table = FlowTable()
        classifier = FlowClassifier(table, threshold_packets=4, window=1.0)
        verdicts = [
            classifier.observe(self.packet(), now=0.001 * i).is_elephant
            for i in range(5)
        ]
        assert verdicts == [False, False, False, True, True]
        assert classifier.promotions == 1

    def test_sporadic_flow_stays_mouse(self):
        table = FlowTable()
        classifier = FlowClassifier(table, threshold_packets=4, window=0.01)
        # One packet every 100 ms: the window resets between arrivals.
        for i in range(20):
            state = classifier.observe(self.packet(), now=0.1 * i)
        assert not state.is_elephant

    def test_promotion_is_sticky(self):
        table = FlowTable()
        classifier = FlowClassifier(table, threshold_packets=2, window=0.01)
        classifier.observe(self.packet(), now=0.0)
        state = classifier.observe(self.packet(), now=0.001)
        assert state.is_elephant
        # Quiet period, then one packet: still an elephant.
        state = classifier.observe(self.packet(), now=5.0)
        assert state.is_elephant


class TestMssClamp:
    def syn(self, mss, flags=TCPFlags.SYN):
        return build_tcp("1.1.1.1", "2.2.2.2", 1, 2, flags=flags, mss=mss)

    def test_inbound_raises_mss(self):
        clamp = MssClamp(GatewayConfig(imtu=9000, emtu=1500))
        packet = self.syn(1460)
        assert clamp.process(packet, Bound.INBOUND)
        assert packet.tcp.mss_option == 8960
        assert packet.meta["mss_raised_from"] == 1460

    def test_inbound_leaves_larger_mss(self):
        clamp = MssClamp(GatewayConfig(imtu=9000, emtu=1500))
        packet = self.syn(9200)
        assert not clamp.process(packet, Bound.INBOUND)
        assert packet.tcp.mss_option == 9200

    def test_outbound_caps_mss(self):
        clamp = MssClamp(GatewayConfig(imtu=9000, emtu=1500))
        packet = self.syn(8960)
        assert clamp.process(packet, Bound.OUTBOUND)
        assert packet.tcp.mss_option == 1460

    def test_synack_also_rewritten(self):
        clamp = MssClamp(GatewayConfig())
        packet = self.syn(1460, flags=TCPFlags.SYN | TCPFlags.ACK)
        assert clamp.process(packet, Bound.INBOUND)

    def test_data_packets_untouched(self):
        clamp = MssClamp(GatewayConfig())
        packet = build_tcp("1.1.1.1", "2.2.2.2", 1, 2, payload=b"data", mss=1460)
        assert not clamp.process(packet, Bound.INBOUND)

    def test_syn_without_mss_untouched(self):
        clamp = MssClamp(GatewayConfig())
        packet = build_tcp("1.1.1.1", "2.2.2.2", 1, 2, flags=TCPFlags.SYN)
        assert not clamp.process(packet, Bound.INBOUND)


class TestGatewayConfig:
    def test_defaults_are_paper_px(self):
        config = GatewayConfig()
        assert config.imtu == 9000 and config.emtu == 1500
        assert config.delayed_merge and config.mss_clamp
        assert not config.header_only_dma and not config.baseline_gro

    def test_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(imtu=1500, emtu=1500)
        with pytest.raises(ValueError):
            GatewayConfig(imtu=9000, emtu=500)

    def test_payload_budgets(self):
        config = GatewayConfig(imtu=9000, emtu=1500)
        assert config.imtu_tcp_payload == 8960
        assert config.emtu_tcp_payload == 1460
        assert config.imtu_udp_payload == 8972


class TestGatewayStats:
    def test_conversion_yield(self):
        stats = GatewayStats()
        for _ in range(9):
            stats.note_inbound_data_packet(9000, imtu=9000)
        stats.note_inbound_data_packet(1500, imtu=9000)
        assert stats.conversion_yield == pytest.approx(0.9)
        assert stats.conversion_yield_bytes == pytest.approx(81000 / 82500)

    def test_slack_tolerance(self):
        stats = GatewayStats()
        stats.note_inbound_data_packet(8950, imtu=9000, slack=64)
        assert stats.conversion_yield == 1.0

    def test_empty_yield_zero(self):
        assert GatewayStats().conversion_yield == 0.0

    def test_merge_aggregates(self):
        a, b = GatewayStats(), GatewayStats()
        a.note_inbound_data_packet(9000, imtu=9000)
        b.note_inbound_data_packet(1500, imtu=9000)
        b.rx_packets = 7
        a.merge(b)
        assert a.inbound_data_packets == 2
        assert a.conversion_yield == 0.5
        assert a.rx_packets == 7
        assert a.inbound_size_histogram == {9000: 1, 1500: 1}
